"""WorkerAgent: claims, executes, and reports sweep points over TCP.

The agent is deliberately stateless about the grid: it claims one
assignment at a time, executes it with the sweep engine's own point
runner (per-point ``SIGALRM`` timeout, local retries for *retryable*
errors with :class:`~repro.transport.resilience.RetryPolicy` backoff),
streams the pickled (value, telemetry snapshot) result back, and claims
again. Everything that makes the system fault-tolerant lives in how the
agent fails:

* **heartbeats** — a background thread renews the current lease every
  ``lease_seconds * heartbeat_fraction``; if the agent dies (SIGKILL,
  OOM), renewals stop and the coordinator reclaims the point;
* **reconnect with backoff + jitter** — every connection failure goes
  through the shared :class:`RetryPolicy` (seeded jitter desynchronises
  a fleet restarting together) gated by a :class:`CircuitBreaker`; the
  agent only gives up after ``reconnect_budget`` seconds without
  managing to reach the coordinator, which is what lets it ride out a
  coordinator restart or the gap between two grids of a multi-stage
  sweep;
* **result durability** — a computed result is resent across reconnects
  until acknowledged; a ``DUPLICATE`` ack (someone stole and finished
  the point while we were partitioned) is a success, not an error. Every
  submission names its grid signature, and the agent checks the grid the
  coordinator advertises after each reconnect — a result computed for a
  *previous* grid on the same address is dropped (``STALE``), never
  recorded into the wrong grid. An ``-ERR`` rejection discards the point
  and the agent claims again; only a rejected HELLO is fatal;
* **graceful drain** — SIGTERM (see :meth:`install_signal_handlers`)
  finishes and reports the in-flight point, then exits the claim loop.

Observability (passive, never on the failure-handling path):

* every executed point becomes a wall-clock **fleet span** carrying the
  assignment's ``trace_id``/``span_id``; finished spans ship back on the
  ``SPANS`` command *fire-and-forget* — one attempt on the live
  connection, no reconnects, no retries, because a worker must never
  burn its reconnect budget (or stall its claim loop) on telemetry;
* a **flight recorder** rings recent protocol events and dumps a
  postmortem JSON on crash, drain, or exit when a dump path is set;
* **structured logs** (``repro.sweep.worker``) narrate claims, results,
  and reconnects when logging is configured.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import socket
import sys
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import BackendUnavailableError, SweepError, TransportError
from repro.sweep.dist.protocol import (
    DRAINED,
    MULTI_GRID,
    STALE,
    Assignment,
    FailureRecord,
    dump_spans,
    parse_busy,
    parse_hostport,
)
from repro.sweep.point import derive_seed
from repro.telemetry.flight import FlightRecorder, maybe_dump
from repro.telemetry.log import get_logger
from repro.transport.redis_backend import MiniRedisConnection
from repro.transport.resilience import CircuitBreaker, RetryPolicy
from repro.transport.resp import ServerReplyError
from repro.version import __version__

_AGENT_COUNTER = itertools.count()

_log = get_logger("sweep.worker")


def _default_policy() -> RetryPolicy:
    return RetryPolicy(
        max_attempts=6, base_delay=0.2, multiplier=2.0, max_delay=3.0, jitter=0.25
    )


@dataclass
class WorkerOptions:
    """How one agent connects, retries, and paces itself."""

    policy: RetryPolicy = field(default_factory=_default_policy)
    #: Seconds without reaching the coordinator before the agent exits.
    reconnect_budget: float = 30.0
    #: Idle wait between claims when the queue is empty or drained.
    poll: float = 0.25
    #: Lease renewals happen every ``lease_seconds * heartbeat_fraction``.
    heartbeat_fraction: float = 1.0 / 3.0
    breaker_threshold: int = 3
    breaker_reset: float = 1.0
    #: Stop after completing/failing this many points (tests, canaries).
    max_points: Optional[int] = None
    #: Root seed for backoff jitter (derived per worker id).
    seed: int = 0
    #: Request-scoped socket timeout for every RESP exchange. A
    #: coordinator that accepts the connection but never answers (a
    #: one-way partition, a trickling chaos proxy) converts into a
    #: retryable :class:`~repro.errors.BackendUnavailableError` at this
    #: deadline instead of hanging the claim loop forever.
    op_timeout: float = 30.0
    #: Where :func:`run_worker_process` dumps the flight recorder
    #: (postmortem on crash, drain record on SIGTERM, always on exit
    #: when set). None disables dumping; the ring still records.
    flight_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.reconnect_budget <= 0:
            raise SweepError("reconnect_budget must be positive")
        if self.poll <= 0:
            raise SweepError("poll must be positive")
        if not 0.0 < self.heartbeat_fraction < 1.0:
            raise SweepError("heartbeat_fraction must be in (0, 1)")
        if self.op_timeout <= 0:
            raise SweepError("op_timeout must be positive")


@dataclass
class WorkerReport:
    """What one agent did before exiting its claim loop."""

    worker_id: str = ""
    completed: int = 0
    failed: int = 0
    duplicates: int = 0  # results the coordinator had already (stolen points)
    reconnects: int = 0
    renews: int = 0
    lease_losses: int = 0  # renewals answered "lease lost" mid-execution
    local_retries: int = 0
    stale_grid: int = 0  # results dropped: the grid changed under us
    rejected: int = 0  # submissions/claims the coordinator answered -ERR
    busy: int = 0  # -BUSY shed/overload replies absorbed (paced retries)
    spans_shipped: int = 0  # fleet spans the coordinator accepted
    spans_dropped: int = 0  # fleet spans lost to fire-and-forget shipping
    drained: bool = False  # exited via SIGTERM / request_drain
    gave_up: bool = False  # reconnect budget exhausted

    def summary(self) -> str:
        parts = [
            f"{self.completed} completed",
            f"{self.failed} failed",
            f"{self.reconnects} reconnects",
        ]
        if self.duplicates:
            parts.append(f"{self.duplicates} duplicates")
        if self.lease_losses:
            parts.append(f"{self.lease_losses} lease losses")
        if self.stale_grid:
            parts.append(f"{self.stale_grid} stale-grid drops")
        if self.rejected:
            parts.append(f"{self.rejected} rejected")
        if self.busy:
            parts.append(f"{self.busy} busy")
        how = "drained" if self.drained else ("gave up" if self.gave_up else "done")
        return f"worker {self.worker_id}: " + ", ".join(parts) + f" ({how})"


class WorkerAgent:
    """One claim-execute-report loop against one coordinator address.

    Thread-safety: the run loop owns the agent, with two narrow
    exceptions — the heartbeat thread shares ``self._conn`` (dropped
    only via :meth:`_drop_conn_if`, so neither thread closes a fresh
    connection the other just opened), and :meth:`request_drain` is
    async-signal-safe (it only sets an event; all I/O and locking
    happens on the run loop). Everything else is single-threaded.

    Durability: none here by design — the coordinator/service owns the
    durable record and a worker is disposable. SIGKILLing a worker
    costs at most one lease interval: the point is reclaimed at expiry
    and stolen by the next claim, and a stale completion arriving later
    is absorbed as an idempotent duplicate.
    """

    def __init__(
        self,
        address: str,
        options: Optional[WorkerOptions] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        self.host, self.port = parse_hostport(address)
        self.options = options or WorkerOptions()
        self.worker_id = worker_id or (
            f"{socket.gethostname()}:{os.getpid()}:{next(_AGENT_COUNTER)}"
        )
        self.report = WorkerReport(worker_id=self.worker_id)
        self._rng = np.random.default_rng(
            derive_seed(self.options.seed, "dist-worker", self.worker_id)
        )
        self._breaker = CircuitBreaker(
            failure_threshold=self.options.breaker_threshold,
            reset_timeout=self.options.breaker_reset,
            name=f"worker:{self.worker_id}",
        )
        self._conn: Optional[MiniRedisConnection] = None
        self._drain = threading.Event()
        self._last_contact = time.monotonic()
        self.grid_info: Optional[dict] = None
        self.flight = FlightRecorder(component=f"worker:{self.worker_id}")
        self._spans: list[dict] = []  # finished fleet spans awaiting SPANS

    # -- lifecycle ----------------------------------------------------------
    def request_drain(self) -> None:
        """Finish the in-flight point (if any), then exit the claim loop.

        Runs from the SIGTERM handler, so it only sets the event — no
        locks (the flight recorder's, a log handler's) may be taken here
        or a signal landing mid-``record`` would self-deadlock. The run
        loop notices the flag and writes the drain records itself.
        """
        self._drain.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM -> graceful drain. Call from a dedicated worker process."""
        signal.signal(signal.SIGTERM, lambda signum, frame: self.request_drain())

    # -- connection management ----------------------------------------------
    def _touch(self) -> None:
        self._last_contact = time.monotonic()

    def _drop_conn(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def _drop_conn_if(self, conn) -> None:
        """Drop the shared connection iff it is still ``conn``.

        The heartbeat thread and the main loop share ``self._conn``; a
        thread that saw an error on its copy must not close a *fresh*
        connection the other thread just established.
        """
        if self._conn is conn:
            self._drop_conn()
        else:
            try:
                conn.close()
            except OSError:
                pass

    def _connect_once(self) -> MiniRedisConnection:
        conn = MiniRedisConnection(self.host, self.port, timeout=self.options.op_timeout)
        caps = json.dumps(
            {
                "version": __version__,
                "host": socket.gethostname(),
                "pid": os.getpid(),
                "python": sys.version.split()[0],
            }
        )
        try:
            reply = conn.command("HELLO", self.worker_id, caps)
        except BaseException:
            conn.close()  # a rejected HELLO (version mismatch) is fatal
            raise
        self.grid_info = json.loads(reply) if reply else {}
        return conn

    def _ensure_connection(self) -> Optional[MiniRedisConnection]:
        """(Re)connect under the retry policy; None = budget exhausted.

        The budget is measured from the last successful exchange, so a
        healthy agent that loses the coordinator has the full window to
        wait out a restart.
        """
        if self._conn is not None:
            return self._conn
        attempt = 0
        while not self._drain.is_set():
            if time.monotonic() - self._last_contact > self.options.reconnect_budget:
                return None
            if not self._breaker.allow():
                time.sleep(min(self.options.breaker_reset, self.options.poll))
                continue
            try:
                self._conn = self._connect_once()
            except BackendUnavailableError:
                self._breaker.record_failure()
                attempt += 1
                delay = self.options.policy.delay(
                    min(attempt, self.options.policy.max_attempts - 1) or 1, self._rng
                )
                time.sleep(delay)
            except ServerReplyError as exc:
                busy = parse_busy(str(exc))
                if busy is None:
                    raise  # e.g. a version-mismatch HELLO: genuinely fatal
                # Typed overload refusal (connection cap): the service is
                # shedding, not rejecting us — pace with its hint and
                # retry under the same reconnect budget.
                self.report.busy += 1
                self._breaker.record_failure()
                attempt += 1
                hint = busy.get("retry_after_s")
                delay = (
                    float(hint)
                    if hint is not None
                    else self.options.policy.delay(
                        min(attempt, self.options.policy.max_attempts - 1) or 1,
                        self._rng,
                    )
                )
                time.sleep(delay)
            else:
                self._breaker.record_success()
                self._touch()
                if attempt:
                    self.report.reconnects += 1
                    self.flight.record("reconnect", attempts=attempt)
                    _log.info("reconnect", worker=self.worker_id, attempts=attempt)
                return self._conn
        return None

    # -- execution ----------------------------------------------------------
    def _execute(self, assignment: Assignment):
        """Run the point with local retries; returns (value, snap, failure)."""
        from repro.sweep.engine import _worker  # late: engine imports dist lazily

        attempts = assignment.retries + 1
        local_retries = 0
        while True:
            attempts -= 1
            try:
                value, snapshot = _worker(
                    assignment.point, assignment.capture, assignment.timeout
                )
                return value, snapshot, None
            except Exception as exc:
                retryable = bool(getattr(exc, "retryable", False))
                if attempts > 0 and retryable and not self._drain.is_set():
                    local_retries += 1
                    self.report.local_retries += 1
                    time.sleep(
                        self.options.policy.delay(
                            min(local_retries, self.options.policy.max_attempts - 1)
                            or 1,
                            self._rng,
                        )
                    )
                    continue
                failure = FailureRecord(
                    worker=self.worker_id,
                    error=f"{type(exc).__name__}: {exc}",
                    traceback=traceback.format_exc(),
                    retries=local_retries,
                )
                return None, None, failure

    def _heartbeat(self, assignment: Assignment, stop: threading.Event) -> None:
        interval = max(
            assignment.lease_seconds * self.options.heartbeat_fraction, 0.05
        )
        while not stop.wait(interval):
            conn = self._conn
            if conn is None:
                # While the point executes, the main thread is blocked in
                # _execute — this thread is the only one that can bring
                # the connection back so renewals resume within the
                # lease window after a transient outage.
                if not self._breaker.allow():
                    continue
                try:
                    conn = self._conn = self._connect_once()
                except (TransportError, OSError):
                    self._breaker.record_failure()
                    continue
                self._breaker.record_success()
                self._touch()
            try:
                # v4 arity: name the grid — under a multi-tenant service
                # an index alone does not identify a lease.
                held = conn.command(
                    "RENEW", self.worker_id, str(assignment.index), assignment.grid
                )
            except (TransportError, OSError):
                # Broken (or rejecting) connection: drop it so the next
                # beat reconnects instead of failing silently forever.
                self._drop_conn_if(conn)
                continue
            self._touch()
            self.report.renews += 1
            if not held:
                # The lease expired and may be running elsewhere too; we
                # still finish and submit — the coordinator deduplicates.
                self.report.lease_losses += 1

    def _submit(
        self, command: str, assignment: Assignment, payload: bytes | str
    ) -> Optional[str]:
        """Send DONE/FAIL across reconnects until acked (None = discarded)."""
        while True:
            conn = self._ensure_connection()
            if conn is None:
                return None
            served = (self.grid_info or {}).get("grid")
            if (
                assignment.grid
                and served
                and served != MULTI_GRID  # a service serves *many* grids
                and served != assignment.grid
            ):
                # We reconnected into a *different* grid on the same
                # address (a multi-stage sweep moved on): this result is
                # not part of it — drop it without submitting.
                self.report.stale_grid += 1
                return STALE
            try:
                reply = conn.command(
                    command,
                    self.worker_id,
                    str(assignment.index),
                    assignment.grid,
                    payload,
                )
            except BackendUnavailableError:
                self._drop_conn_if(conn)
                continue
            except TransportError as exc:
                busy = parse_busy(str(exc))
                if busy is not None:
                    # Overload shed, not a rejection: never discard a
                    # finished result over transient pressure — pace with
                    # the server's hint and resubmit (DONE is idempotent).
                    self.report.busy += 1
                    self._touch()
                    hint = busy.get("retry_after_s")
                    self._drain.wait(
                        float(hint) if hint is not None else self.options.poll
                    )
                    continue
                # An -ERR reply (unknown index, draining coordinator,
                # malformed payload): the submission was *rejected*, not
                # lost. Discard the point and go claim again rather than
                # crashing the whole agent. Only HELLO errors are fatal.
                self.report.rejected += 1
                self._touch()
                return None
            self._touch()
            reply = str(reply)
            if reply == STALE:
                # The coordinator (not our local check) spotted the
                # cross-grid submission; same verdict, same counter.
                self.report.stale_grid += 1
            return reply

    def _record_span(
        self, assignment: Assignment, start: float, end: float, outcome: str
    ) -> None:
        """Queue one finished execution span for the next SPANS flush."""
        self._spans.append(
            {
                "name": f"p{assignment.index}",
                "category": "point",
                "start": start,
                "end": end,
                "tid": 0,
                "args": {
                    "index": assignment.index,
                    "worker": self.worker_id,
                    "outcome": outcome,
                    "trace_id": assignment.trace_id,
                    "span_id": assignment.span_id,
                },
            }
        )

    def _flush_spans(self) -> None:
        """Ship queued fleet spans — one attempt, never a reconnect.

        Observability is expendable: a broken connection drops the batch
        (counted in ``spans_dropped``) rather than burning the reconnect
        budget, and an ``-ERR`` reply discards it without protest.
        """
        if not self._spans:
            return
        batch, self._spans = self._spans, []
        conn = self._conn
        if conn is None:
            self.report.spans_dropped += len(batch)
            return
        try:
            accepted = conn.command("SPANS", self.worker_id, dump_spans(batch))
        except BackendUnavailableError:
            self._drop_conn_if(conn)  # the socket is dead; claims need a new one
            self.report.spans_dropped += len(batch)
            return
        except TransportError:
            self.report.spans_dropped += len(batch)
            return
        self._touch()
        self.report.spans_shipped += int(accepted or 0)

    def _process(self, assignment: Assignment) -> None:
        from repro.sweep.dist.protocol import dump_result

        self.flight.record(
            "claim", index=assignment.index, span_id=assignment.span_id
        )
        _log.debug(
            "claim",
            worker=self.worker_id,
            index=assignment.index,
            trace_id=assignment.trace_id,
            span_id=assignment.span_id,
        )
        stop = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat,
            args=(assignment, stop),
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        started = time.time()  # wall clock: fleet spans merge across hosts
        try:
            value, snapshot, failure = self._execute(assignment)
        finally:
            stop.set()
            heartbeat.join(timeout=2.0)
        outcome = "done" if failure is None else "fail"
        self._record_span(assignment, started, time.time(), outcome)
        self.flight.record(outcome, index=assignment.index)
        if failure is None:
            reply = self._submit(
                "DONE", assignment, dump_result(value, snapshot)
            )
            if reply in ("OK", "DUPLICATE"):
                self.report.completed += 1
                if reply == "DUPLICATE":
                    self.report.duplicates += 1
            _log.info(
                "point.done",
                worker=self.worker_id,
                index=assignment.index,
                ack=str(reply),
            )
            self._flush_spans()
        else:
            self._submit(
                "FAIL", assignment, json.dumps(failure.as_dict())
            )
            self.report.failed += 1
            _log.warning(
                "point.fail",
                worker=self.worker_id,
                index=assignment.index,
                error=failure.error,
            )
            self._flush_spans()
            # Back off before claiming again: the re-queued point should
            # go to a *different* worker if one is polling (the poison
            # verdict needs distinct workers), not back to this one in
            # the same breath.
            self._drain.wait(self.options.poll)

    # -- main loop -----------------------------------------------------------
    def _budget_spent(self) -> bool:
        limit = self.options.max_points
        return limit is not None and (self.report.completed + self.report.failed) >= limit

    def run(self) -> WorkerReport:
        """Claim and execute until drained, budget-spent, or cut off."""
        try:
            while not self._drain.is_set() and not self._budget_spent():
                conn = self._ensure_connection()
                if conn is None:
                    # Either the reconnect budget ran out or a drain was
                    # requested mid-reconnect; only the former is giving up.
                    if not self._drain.is_set():
                        self.report.gave_up = True
                    break
                try:
                    reply = conn.command("CLAIM", self.worker_id)
                except BackendUnavailableError:
                    self._drop_conn()
                    continue
                except TransportError as exc:
                    busy = parse_busy(str(exc))
                    if busy is not None:
                        # Overload shed: keep the connection (the server
                        # chose to answer, not to cut us) and pace with
                        # its retry hint before claiming again.
                        self.report.busy += 1
                        self._touch()
                        hint = busy.get("retry_after_s")
                        self._drain.wait(
                            float(hint) if hint is not None else self.options.poll
                        )
                        continue
                    # -ERR reply: the coordinator refused the claim. Drop
                    # the connection (a fresh HELLO re-validates us) and
                    # retry under the reconnect budget instead of dying.
                    self.report.rejected += 1
                    self._drop_conn()
                    self._drain.wait(self.options.poll)
                    continue
                self._touch()
                if reply == DRAINED:
                    # This grid is finished — but a multi-stage sweep may
                    # serve another one on the same address shortly.
                    self._drop_conn()
                    self._drain.wait(self.options.poll)
                    continue
                if reply is None:
                    self._drain.wait(self.options.poll)
                    continue
                self._process(Assignment.from_bytes(reply))
        finally:
            self._flush_spans()  # last chance before the socket goes away
            self._drop_conn()
        self.report.drained = self._drain.is_set()
        if self.report.drained:
            self.flight.record("drained", completed=self.report.completed)
            _log.info("drained", worker=self.worker_id, completed=self.report.completed)
        elif self.report.gave_up:
            self.flight.record("gave_up", completed=self.report.completed)
            _log.error("gave_up", worker=self.worker_id, completed=self.report.completed)
        return self.report


def run_worker_process(
    address: str,
    seed: int = 0,
    reconnect_budget: float = 30.0,
    poll: float = 0.25,
    max_points: Optional[int] = None,
    quiet: bool = False,
    flight_path: Optional[str] = None,
    op_timeout: float = 30.0,
) -> int:
    """Entry point for a dedicated worker process (CLI ``--connect``).

    Installs the SIGTERM drain handler, runs one agent to completion,
    and prints its report to stderr. Returns a process exit code: 0 for
    a clean exit (including a SIGTERM drain), nonzero when the agent
    gave up (reconnect budget exhausted with the grid unfinished),
    failed every point it touched, or was refused at the handshake —
    so fleet managers taking ``max(exitcode)`` can tell a failed fleet
    from a successful drain.
    """
    options = WorkerOptions(
        reconnect_budget=reconnect_budget,
        poll=poll,
        max_points=max_points,
        seed=seed,
        flight_path=flight_path,
        op_timeout=op_timeout,
    )
    agent = WorkerAgent(address, options)
    agent.install_signal_handlers()
    try:
        report = agent.run()
    except TransportError as exc:
        # Fatal handshake failure (HELLO version mismatch): misjoining
        # this fleet would silently compute a different grid.
        maybe_dump(agent.flight, options.flight_path, "fatal")
        print(f"worker {agent.worker_id}: fatal: {exc}", file=sys.stderr)
        return 1
    except BaseException:
        maybe_dump(agent.flight, options.flight_path, "crash")
        raise
    reason = "drain" if report.drained else "gave_up" if report.gave_up else "completed"
    maybe_dump(agent.flight, options.flight_path, reason)
    if not quiet:
        print(report.summary(), file=sys.stderr)
    if report.gave_up or (report.failed and not report.completed):
        return 1
    return 0


def worker_process_main(**kwargs) -> None:
    """Multiprocessing entry: turn the return value into the exit code.

    ``multiprocessing.Process`` ignores its target's return value, so a
    fleet manager taking ``max(proc.exitcode)`` would read every worker
    as 0 without this shim (module-level so spawn contexts can pickle it).
    """
    sys.exit(run_worker_process(**kwargs))


__all__ = [
    "WorkerAgent",
    "WorkerOptions",
    "WorkerReport",
    "run_worker_process",
    "worker_process_main",
]
