"""SweepCoordinator: serves a point grid to workers over TCP.

The coordinator is the grid's single source of truth. It is a
:class:`~repro.transport.server.RespTcpServer` (the same threaded RESP
substrate as the mini-Redis backend), so every command handler runs
under the server's execution lock and the :class:`LeaseTable` needs no
locking of its own.

Correctness under failure:

* **Worker crash / partition** — the worker stops renewing; its lease
  expires and the point is reclaimed and handed to the next claimer
  (work stealing). A stale worker that finishes anyway gets a
  ``DUPLICATE`` ack — results are deterministic, first writer wins.
* **Cross-grid staleness** — DONE/FAIL submissions carry the grid
  signature of the assignment they answer; a worker that rode out a
  coordinator swap into a *different* grid on the same HOST:PORT (the
  multi-stage sweep case the reconnect budget exists for) gets a
  ``STALE`` ack and its submission is discarded, never recorded.
* **Coordinator crash** — every completed point was fsync'd to the
  journal *before* its worker was acknowledged, so a restarted
  coordinator (same journal directory, same grid) replays its ``done``
  records and serves only the remainder. Previously *poisoned* points
  are re-queued on restart: quarantine is a per-session verdict, the
  journal keeps the audit trail.
* **Poison points** — a point that fails terminally on
  ``poison_workers`` distinct workers (or ``poison_failures`` times in
  total, which bounds the single-worker case) is quarantined with its
  tracebacks. The grid still drains; :meth:`serve` then raises
  :class:`~repro.errors.SweepPoisonedError` naming the toxic cells.

Observability (all passive — the healthy-path result stream is
bit-identical with every layer enabled):

* a **fleet tracer** records every lease's lifetime as a wall-clock
  span on the ``coordinator`` track (one lane per worker) plus
  steal/quarantine/replay instants, and files worker-shipped ``SPANS``
  under per-worker pid tracks named from their HELLO ``hostname:pid``
  identity — :meth:`write_fleet_trace` merges it all into one Chrome
  trace;
* per-worker **EWMA completion rates** and lease ages surface in
  ``STATUS`` (the ``rates`` section) and as a Prometheus text scrape
  via the ``METRICS`` command;
* a **flight recorder** rings the last protocol events and dumps a
  postmortem JSON on poison, crash, or stop-requested drain;
* **structured logs** (``repro.sweep.coordinator``) narrate the same
  transitions as JSONL when logging is configured.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.errors import SweepError, SweepPoisonedError, TransportError
from repro.sweep.dist.fleetmetrics import EwmaRate, prometheus_exposition
from repro.sweep.dist.journal import SweepJournal
from repro.sweep.dist.lease import LeaseTable, PointRecord, PointState
from repro.sweep.dist.protocol import (
    DRAINED,
    STALE,
    Assignment,
    FailureRecord,
    GridInfo,
    dump_result,
    grid_signature,
    load_result,
    load_spans,
)
from repro.sweep.point import SweepPoint
from repro.telemetry.chrome_trace import write_chrome_trace
from repro.telemetry.flight import FlightRecorder, maybe_dump
from repro.telemetry.log import get_logger
from repro.telemetry.tracing import Tracer
from repro.transport import resp
from repro.transport.server import RespTcpServer
from repro.version import __version__

_log = get_logger("sweep.coordinator")

#: Progress callback: (event, index, worker) where event is one of
#: "replay", "lease", "done", "requeue", "reclaim", "poison".
DistProgressFn = Callable[[str, int, Optional[str]], None]


@dataclass
class DistOutcome:
    """What one :meth:`SweepCoordinator.serve` session produced.

    Plain data, not internally locked: it is mutated under the
    coordinator's dispatch lock while serving and safe to read freely
    once :meth:`SweepCoordinator.serve` has returned.
    """

    #: index -> (value, snapshot); covers replayed *and* executed points.
    results: dict[int, tuple[Any, Any]] = field(default_factory=dict)
    executed: int = 0  # completed by workers this session
    replayed: int = 0  # restored from the journal before serving
    requeues: int = 0  # terminal worker failures that were re-queued
    reclaims: int = 0  # leases stolen back from expired workers
    duplicates: int = 0  # stale completions acknowledged and discarded
    stale_grid: int = 0  # submissions that belonged to a different grid
    #: [{"index", "label", "failures": [...]}] for quarantined points.
    poisoned: list[dict] = field(default_factory=list)
    #: worker_id -> {"claimed", "completed", "failed", "capabilities"}.
    workers: dict[str, dict] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return self.executed + self.replayed


class SweepCoordinator(RespTcpServer):
    """Work-stealing grid server with leases, journal, and poison control.

    Thread-safety: request handling runs on per-connection threads, but
    every command body executes under the inherited
    :class:`~repro.transport.server.RespTcpServer` dispatch lock, and
    :meth:`serve`'s periodic reclaim tick takes the same lock — so the
    lease table, journal, outcome, and tracer are only ever touched by
    one thread at a time and need no locking of their own. Public
    methods (:meth:`status`, :meth:`write_fleet_trace`) take the lock
    themselves; :meth:`request_stop` only sets a flag and is safe from
    any thread or signal handler.

    Durability: in-memory by default — a crashed coordinator loses
    unreported progress. With ``journal_dir`` every DONE/POISONED is
    fsynced to the grid's append-only journal *before* the worker's ack
    is sent, so a restarted coordinator with the same journal replays
    every acknowledged result and serves only the remainder (the
    durable-service variant, :class:`~repro.sweep.dist.service.SweepService`,
    upgrades this contract to an SQLite store).
    """

    def __init__(
        self,
        work: Sequence[tuple[int, SweepPoint]],
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 5.0,
        poison_workers: int = 2,
        poison_failures: int = 4,
        timeout: Optional[float] = None,
        retries: int = 1,
        capture: bool = True,
        journal_dir: Optional[str | Path] = None,
        progress: Optional[DistProgressFn] = None,
        clock: Callable[[], float] = time.monotonic,
        flight_path: Optional[str | Path] = None,
        wall: Callable[[], float] = time.time,
    ) -> None:
        super().__init__(host=host, port=port, name="sweep-coordinator")
        work = list(work)
        if not work:
            raise SweepError("coordinator needs at least one point")
        self.points: dict[int, SweepPoint] = dict(work)
        if len(self.points) != len(work):
            raise SweepError("duplicate point indices in work list")
        self.signature = grid_signature(work)
        self.trace_id = self.signature[:16]
        self.timeout = timeout
        self.retries = retries
        self.capture = capture
        self.progress = progress
        self.outcome = DistOutcome()
        # Fleet observability: wall-clock tracer (worker spans arrive in
        # wall time, so lease spans must share the clock to merge),
        # per-worker EWMA rates on the lease clock, and the flight ring.
        self.wall = wall
        self.fleet = Tracer(clock=wall)
        self.flight = FlightRecorder(component="coordinator", clock=wall)
        self.flight_path = Path(flight_path) if flight_path is not None else None
        self._rates: dict[str, EwmaRate] = {}
        self._worker_lanes: dict[str, int] = {}  # worker -> coordinator-track tid
        self._lease_open: dict[int, tuple[str, float, str]] = {}
        self._spans_accepted = 0
        self.table = LeaseTable(
            (index for index, _ in work),
            lease_seconds=lease_seconds,
            poison_workers=poison_workers,
            poison_failures=poison_failures,
            clock=clock,
            observer=self._on_transition,
        )
        self._stop_serving = False
        self._journal: Optional[SweepJournal] = None
        if journal_dir is not None:
            self._journal = SweepJournal(journal_dir, self.signature, len(work))
            self._replay_journal()
            self._journal.open_session()
        _log.info(
            "grid.open",
            grid=self.trace_id,
            n_points=len(self.points),
            replayed=self.outcome.replayed,
            address=f"{self.host}:{self.port}",
        )

    # -- journal replay ----------------------------------------------------
    def _replay_journal(self) -> None:
        assert self._journal is not None
        state = self._journal.replay()
        for index, (value, snapshot) in state.done.items():
            if index not in self.points:
                continue  # journal knows more than this sub-grid (cache hit)
            self.table.preload_done(index)
            self.outcome.results[index] = (value, snapshot)
            self.outcome.replayed += 1
            self.fleet.instant(
                "replay", category="journal", pid="coordinator", index=index
            )
            self._emit("replay", index, None)
        # Previously poisoned points stay queued: a new session gets a
        # fresh quarantine verdict (their history lives in the journal).

    # -- transition plumbing ------------------------------------------------
    def _emit(self, event: str, index: int, worker: Optional[str]) -> None:
        if self.progress is not None:
            self.progress(event, index, worker)

    def _on_transition(self, event: str, record: PointRecord) -> None:
        """LeaseTable observer: journal the audit trail, forward progress."""
        if (
            self._journal is not None
            and self._journal.is_open  # late commands may outlive the session
            and event in ("lease", "reclaim", "requeue")
        ):
            self._journal.record_transition(event, record.index, record.worker)
        if event == "reclaim":
            self.outcome.reclaims += 1
        self._observe_transition(event, record)
        if event in ("lease", "reclaim", "requeue", "poison"):
            self._emit(event, record.index, record.worker)

    def _worker_lane(self, worker: str) -> int:
        """Stable per-worker tid on the coordinator track (lane 0 = self)."""
        return self._worker_lanes.setdefault(worker, len(self._worker_lanes) + 1)

    def _observe_transition(self, event: str, record: PointRecord) -> None:
        """Fleet tracer + flight recorder + logs for one lease transition.

        Strictly passive: nothing here touches the lease table, journal,
        or outcome, so the healthy-path result stream is unchanged.
        """
        index, worker = record.index, record.worker
        self.flight.record(event, index=index, worker=worker, leases=record.leases)
        if event == "lease":
            self._lease_open[index] = (
                worker or "?",
                self.wall(),
                f"{index}/{record.leases}",
            )
            _log.debug("lease.grant", index=index, worker=worker, generation=record.leases)
            return
        if event == "renew":
            _log.debug("lease.renew", index=index, worker=worker)
            return
        opened = self._lease_open.pop(index, None)
        if opened is not None:
            holder, started, span_id = opened
            self.fleet.add_span(
                f"lease p{index}",
                started,
                max(0.0, self.wall() - started),
                category="lease",
                pid="coordinator",
                tid=self._worker_lane(holder),
                index=index,
                worker=holder,
                outcome=event,
                trace_id=self.trace_id,
                span_id=span_id,
            )
        if event == "reclaim":
            self.fleet.instant(
                "steal",
                category="lease",
                pid="coordinator",
                tid=self._worker_lane(worker or "?"),
                index=index,
                worker=worker,
            )
            _log.warning("lease.reclaim", index=index, worker=worker)
        elif event == "requeue":
            _log.warning("lease.requeue", index=index, worker=worker)
        elif event == "poison":
            self.fleet.instant(
                "quarantine",
                category="poison",
                pid="coordinator",
                index=index,
                failures=len(record.failures),
            )
            _log.error("point.poisoned", index=index, failures=len(record.failures))
        elif event == "done":
            _log.debug("point.done", index=index, worker=worker)

    # -- command dispatch ---------------------------------------------------
    def _dispatch(self, name: str, args: list) -> bytes:
        if name == "PING":
            return resp.encode_simple("PONG")
        if name == "HELLO":
            self._need(args, 2, "HELLO")
            return self._handle_hello(_text(args[0]), _text(args[1]))
        if name == "CLAIM":
            self._need(args, 1, "CLAIM")
            return self._handle_claim(_text(args[0]))
        if name == "RENEW":
            # v4 workers name the grid they are renewing in (a service
            # needs it to route); a single-grid coordinator validates it.
            if len(args) not in (2, 3):
                raise TransportError("wrong number of arguments for 'RENEW'")
            grid = _text(args[2]) if len(args) == 3 else None
            return self._handle_renew(_text(args[0]), _index(args[1]), grid)
        if name == "DONE":
            self._need(args, 4, "DONE")
            return self._handle_done(
                _text(args[0]), _index(args[1]), _text(args[2]), bytes(args[3])
            )
        if name == "FAIL":
            self._need(args, 4, "FAIL")
            return self._handle_fail(
                _text(args[0]), _index(args[1]), _text(args[2]), _text(args[3])
            )
        if name == "STATUS":
            return resp.encode_bulk(json.dumps(self.status(), sort_keys=True).encode())
        if name == "METRICS":
            return resp.encode_bulk(prometheus_exposition(self.status()).encode())
        if name == "SPANS":
            self._need(args, 2, "SPANS")
            return self._handle_spans(_text(args[0]), _text(args[1]))
        raise TransportError(f"unknown command '{name}'")

    def _worker_entry(self, worker: str) -> dict:
        return self.outcome.workers.setdefault(
            worker,
            {
                "claimed": 0,
                "completed": 0,
                "failed": 0,
                "capabilities": {},
                "track": f"worker {worker}",
            },
        )

    def _worker_track(self, worker: str) -> str:
        """Fleet-trace pid track for a worker (``worker HOST:PID``)."""
        entry = self.outcome.workers.get(worker)
        if entry is None:
            return f"worker {worker}"
        return entry.get("track") or f"worker {worker}"

    def _handle_hello(self, worker: str, caps_json: str) -> bytes:
        try:
            caps = json.loads(caps_json) if caps_json else {}
        except ValueError:
            raise TransportError("HELLO capabilities must be JSON") from None
        version = str(caps.get("version", ""))
        if version and version != __version__:
            # Point fingerprints embed the version; mixing versions would
            # silently compute different grids.
            raise TransportError(
                f"version mismatch: coordinator {__version__}, worker {version}"
            )
        entry = self._worker_entry(worker)
        entry["capabilities"] = caps
        host = caps.get("host")
        pid = caps.get("pid")
        if host is not None and pid is not None:
            # Name the worker's fleet-trace track from its HELLO identity
            # rather than the worker_id (which carries an agent counter).
            entry["track"] = f"worker {host}:{pid}"
        self.flight.record("hello", worker=worker, host=host, pid=pid)
        _log.info("worker.hello", worker=worker, host=host, pid=pid)
        info = GridInfo(
            grid=self.signature,
            n_points=len(self.points),
            lease_seconds=self.table.lease_seconds,
            version=__version__,
            remaining=self.table.remaining(),
        )
        return resp.encode_bulk(json.dumps(info.as_dict(), sort_keys=True).encode())

    def _handle_claim(self, worker: str) -> bytes:
        if self._stop_serving or self.table.done():
            # A stopping coordinator hands out no new work — its session
            # is over even if some points never reached a terminal state.
            return resp.encode_simple(DRAINED)
        index = self.table.claim(worker)
        if index is None:
            return resp.encode_bulk(None)
        self._worker_entry(worker)["claimed"] += 1
        self._rates.setdefault(worker, EwmaRate()).mark_active(self.table.clock())
        assignment = Assignment(
            index=index,
            point=self.points[index],
            lease_seconds=self.table.lease_seconds,
            timeout=self.timeout,
            retries=self.retries,
            capture=self.capture,
            grid=self.signature,
            trace_id=self.trace_id,
            span_id=f"{index}/{self.table.records[index].leases}",
        )
        return resp.encode_bulk(assignment.to_bytes())

    def _handle_renew(
        self, worker: str, index: int, grid: Optional[str] = None
    ) -> bytes:
        if grid is not None and grid != self.signature:
            # Renewing a lease from another grid on this address: that
            # lease does not exist here; answer "lost" so the worker
            # finishes and lets the DONE-side grid check sort it out.
            return resp.encode_integer(0)
        return resp.encode_integer(int(self.table.renew(worker, index)))

    def _handle_done(self, worker: str, index: int, grid: str, blob: bytes) -> bytes:
        if grid != self.signature:
            # A worker that claimed from a previous grid on this address:
            # its indices overlap ours (grids are 0-based) but the value
            # is another grid's. Acknowledge so the worker moves on.
            self.outcome.stale_grid += 1
            return resp.encode_simple(STALE)
        if index not in self.points:
            raise TransportError(f"unknown point index {index}")
        record = self.table.records[index]
        if record.state in (PointState.DONE, PointState.POISONED):
            self.outcome.duplicates += 1
            return resp.encode_simple("DUPLICATE")
        if self._journal is not None and not self._journal.is_open:
            # Durability can no longer be promised (serve() closed the
            # journal on drain/stop); reject rather than silently accept.
            raise TransportError(
                f"coordinator is shutting down; cannot accept point {index}"
            )
        try:
            value, snapshot = load_result(blob)
        except Exception as exc:
            raise TransportError(f"unreadable result for point {index}: {exc}") from None
        # Durability before acknowledgment: once the worker sees +OK the
        # result must survive a coordinator crash.
        if self._journal is not None:
            self._journal.record_done(index, value, snapshot)
        self.table.complete(worker, index)
        self.outcome.results[index] = (value, snapshot)
        self.outcome.executed += 1
        self._worker_entry(worker)["completed"] += 1
        self._rates.setdefault(worker, EwmaRate()).observe(self.table.clock())
        self._emit("done", index, worker)
        return resp.encode_simple("OK")

    def _handle_fail(self, worker: str, index: int, grid: str, info_json: str) -> bytes:
        if grid != self.signature:
            # Never let another grid's failure count toward this grid's
            # poison verdict (see _handle_done).
            self.outcome.stale_grid += 1
            return resp.encode_simple(STALE)
        if index not in self.points:
            raise TransportError(f"unknown point index {index}")
        record = self.table.records[index]
        if record.state in (PointState.DONE, PointState.POISONED):
            # Stale failure for a point that already reached a terminal
            # state: ignore it (and do not re-journal the poison record).
            self.outcome.duplicates += 1
            return resp.encode_simple("DUPLICATE")
        try:
            info = json.loads(info_json) if info_json else {}
        except ValueError:
            raise TransportError("FAIL payload must be JSON") from None
        failure = FailureRecord.from_dict({**info, "worker": worker})
        self.flight.record("fail", index=index, worker=worker, error=failure.error)
        _log.warning("worker.fail", index=index, worker=worker, error=failure.error)
        state = self.table.fail(worker, index, failure)
        self._worker_entry(worker)["failed"] += 1
        if state is PointState.POISONED:
            failures = [f.as_dict() for f in self.table.records[index].failures]
            if self._journal is not None and self._journal.is_open:
                self._journal.record_poisoned(index, failures)
            return resp.encode_simple("POISONED")
        if state is PointState.QUEUED:
            self.outcome.requeues += 1
        return resp.encode_simple("REQUEUED")

    def _handle_spans(self, worker: str, spans_json: str) -> bytes:
        """File worker-shipped spans under the worker's fleet track.

        Best effort by design: entries that fail validation are dropped
        (see :func:`~repro.sweep.dist.protocol.load_spans`) and nothing
        here can fail the grid — observability must observe, not perturb.
        """
        spans = load_spans(spans_json)
        track = self._worker_track(worker)
        for span in spans:
            self.fleet.add_span(
                span["name"],
                span["start"],
                span["end"] - span["start"],
                category=span["category"],
                pid=track,
                tid=span["tid"],
                **span["args"],
            )
        self._spans_accepted += len(spans)
        self.flight.record("spans", worker=worker, accepted=len(spans))
        _log.debug("worker.spans", worker=worker, accepted=len(spans))
        return resp.encode_integer(len(spans))

    # -- serving ------------------------------------------------------------
    def status(self) -> dict:
        """Plain-dict coordinator state (also the STATUS reply)."""
        now = self.table.clock()
        lease_age: dict[str, float] = {}
        for record in self.table.records.values():
            if record.state is PointState.LEASED and record.worker is not None:
                age = max(0.0, self.table.lease_seconds - (record.deadline - now))
                lease_age[record.worker] = max(lease_age.get(record.worker, 0.0), age)
        rates = {
            worker: {
                "points_per_second": rate.current(now),
                "lease_age_seconds": lease_age.get(worker),
            }
            for worker, rate in self._rates.items()
        }
        return {
            "grid": self.signature,
            "n_points": len(self.points),
            "remaining": self.table.remaining(),
            "counts": self.table.counts(),
            "reclaims": self.table.reclaims,
            "requeues": self.outcome.requeues,
            "executed": self.outcome.executed,
            "replayed": self.outcome.replayed,
            "poisoned_points": sorted(r.index for r in self.table.poisoned()),
            "workers": {
                w: {k: v for k, v in entry.items() if k != "capabilities"}
                for w, entry in self.outcome.workers.items()
            },
            "rates": rates,
        }

    def request_stop(self) -> None:
        """Abort :meth:`serve` at its next poll (tests, signal handlers)."""
        self._stop_serving = True

    def serve(self, poll: float = 0.1) -> DistOutcome:
        """Block until the grid drains (or :meth:`request_stop`).

        Periodically reclaims expired leases even when no worker is
        polling, so the journal's audit trail reflects expiry promptly.
        Raises :class:`~repro.errors.SweepPoisonedError` after the drain
        if any point was quarantined.
        """
        if not self.is_running:
            self.start()
        try:
            while not self._stop_serving:
                with self._exec_lock:
                    self.table.reclaim_expired()
                    if self.table.done():
                        break
                time.sleep(poll)
        except BaseException:
            maybe_dump(self.flight, self.flight_path, "crash")
            raise
        finally:
            if self._journal is not None:
                self._journal.close()
        poisoned = [
            {
                "index": record.index,
                "label": self.points[record.index].label,
                "failures": [f.as_dict() for f in record.failures],
            }
            for record in self.table.poisoned()
        ]
        self.outcome.poisoned = poisoned
        reason = (
            "poison" if poisoned else "drain" if self._stop_serving else "completed"
        )
        maybe_dump(self.flight, self.flight_path, reason)
        _log.info(
            "grid.closed",
            grid=self.trace_id,
            reason=reason,
            executed=self.outcome.executed,
            replayed=self.outcome.replayed,
            reclaims=self.outcome.reclaims,
            spans=self._spans_accepted,
        )
        if poisoned and not self._stop_serving:
            raise SweepPoisonedError(poisoned)
        return self.outcome

    def write_fleet_trace(self, path: str | Path) -> int:
        """Merge coordinator lease spans + worker spans into one trace.

        Any lease still open (stop-requested drains leave unfinished
        points) is closed at "now" so the trace stays structurally valid.
        Returns the number of trace events written.
        """
        with self._exec_lock:
            for index in sorted(self._lease_open):
                holder, started, span_id = self._lease_open.pop(index)
                self.fleet.add_span(
                    f"lease p{index}",
                    started,
                    max(0.0, self.wall() - started),
                    category="lease",
                    pid="coordinator",
                    tid=self._worker_lane(holder),
                    index=index,
                    worker=holder,
                    outcome="open",
                    trace_id=self.trace_id,
                    span_id=span_id,
                )
            return write_chrome_trace(path, tracer=self.fleet)

    def stop(self) -> None:
        self.request_stop()
        super().stop()
        if self._journal is not None:
            self._journal.close()


def _text(arg: Any) -> str:
    if isinstance(arg, (bytes, bytearray)):
        return bytes(arg).decode("utf-8", "replace")
    return str(arg)


def _index(arg: Any) -> int:
    try:
        return int(_text(arg))
    except ValueError:
        raise TransportError(f"bad point index {arg!r}") from None


__all__ = ["DistOutcome", "DistProgressFn", "SweepCoordinator", "dump_result"]
