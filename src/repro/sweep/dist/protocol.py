"""Wire protocol of the distributed sweep: RESP commands + payloads.

The coordinator is a :class:`~repro.transport.server.RespTcpServer`
subclass, so every exchange is a RESP command array from the worker and
a single RESP reply from the coordinator — the same substrate (and the
same :class:`~repro.transport.redis_backend.MiniRedisConnection` client
framing) as the mini-Redis backend. The full vocabulary:

=========  =============================================  =======================
command    arguments                                      reply
=========  =============================================  =======================
PING       —                                              ``+PONG``
HELLO      worker_id, capabilities-JSON                   bulk JSON grid info
CLAIM      worker_id                                      bulk assignment pickle,
                                                          null (nothing claimable
                                                          right now), or
                                                          ``+DRAINED``
RENEW      worker_id, index                               ``:1`` (lease held) /
                                                          ``:0`` (lease lost)
DONE       worker_id, index, grid, result pickle          ``+OK`` / ``+DUPLICATE``
                                                          / ``+STALE``
FAIL       worker_id, index, grid, failure-JSON           ``+REQUEUED`` /
                                                          ``+POISONED`` /
                                                          ``+DUPLICATE`` /
                                                          ``+STALE``
STATUS     —                                              bulk JSON state counts
                                                          + per-worker ``rates``
METRICS    —                                              bulk Prometheus-style
                                                          text exposition
SPANS      worker_id, spans-JSON                          ``:n`` (spans accepted)
=========  =============================================  =======================

Wire-format history (``WIRE_FORMAT`` gates the pickled payload shape;
HELLO's version check keeps mixed fleets out entirely):

* **v1** — PING/HELLO/CLAIM/RENEW/DONE/FAIL/STATUS, results keyed by
  point index alone.
* **v2** — **grid-signature binding**: ``DONE``/``FAIL`` carry the grid
  signature of the assignment they answer. A coordinator on the same
  HOST:PORT may be serving a different grid by the time a slow worker
  reports back (multi-stage sweeps reuse the address; the worker's
  reconnect budget is designed to ride out the gap between grids), and
  point indices always collide because every grid is 0-based — the
  signature is what keeps grid A's value out of grid B's results. A
  mismatched submission is acknowledged with ``+STALE`` and discarded.
* **v3** — **observability**: assignments carry a trace context
  (``trace_id`` identifying the sweep, ``span_id`` identifying this
  lease) so worker-side spans parent correctly in the merged fleet
  trace; the ``SPANS`` command ships those finished spans back (JSON
  list of ``{name, category, start, end, tid, args}`` with wall-clock
  seconds — the coordinator files them under a pid track named from the
  worker's HELLO ``hostname:pid`` identity); ``METRICS`` returns a
  Prometheus-style text scrape of grid state and per-worker rates.
  ``SPANS`` is fire-and-forget best effort: a worker never retries it
  across reconnects and the coordinator never fails a grid over it —
  observability must observe, never perturb.

Assignments and results are pickled: workers are trusted peers running
the *same* ``repro`` version against the same grid (HELLO rejects a
version mismatch, because cache keys and point fingerprints embed the
version). This is a cluster-internal tool, not an internet-facing one —
never expose the coordinator port to untrusted networks.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import SweepError
from repro.sweep.cache import point_key
from repro.sweep.point import SweepPoint

#: Bumped when the assignment/result wire shape changes.
WIRE_FORMAT = "repro-dist-sweep-v3"

#: CLAIM reply meaning "every point is done or poisoned; nothing left".
DRAINED = "DRAINED"

#: DONE/FAIL ack meaning "your submission belongs to a different grid".
STALE = "STALE"


def parse_hostport(text: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (IPv4/hostname) into its parts."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep or not host:
        raise SweepError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SweepError(f"bad port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise SweepError(f"port out of range in {text!r}")
    return host, port


def grid_signature(points: Sequence[tuple[int, SweepPoint]]) -> str:
    """Content identity of one (sub)grid: SHA-256 over its point keys.

    Embeds each point's function path, canonical kwargs fingerprint, and
    the package version (via :func:`~repro.sweep.cache.point_key`), plus
    the grid *indices* — so a journal written for one grid can never be
    replayed into a different one, a reordered grid, or another code
    version.
    """
    digest = hashlib.sha256()
    for index, point in points:
        digest.update(f"{index}:{point_key(point.func_path, dict(point.kwargs))}\n".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class Assignment:
    """One leased unit of work, shipped coordinator -> worker."""

    index: int
    point: SweepPoint
    lease_seconds: float
    #: Per-point wall-clock timeout (None = unlimited), enforced worker-side.
    timeout: Optional[float] = None
    #: Additional local attempts the worker grants retryable failures.
    retries: int = 1
    #: Whether the worker must capture a telemetry snapshot.
    capture: bool = True
    #: Signature of the grid this assignment belongs to; echoed back in
    #: DONE/FAIL so a result can never land in a different grid's table.
    grid: str = ""
    #: Trace context stamped by the coordinator: ``trace_id`` identifies
    #: the sweep (grid-signature prefix), ``span_id`` this specific
    #: lease (``index/lease-generation``). Worker-side spans carry both
    #: so the merged fleet trace links every execution to its lease.
    trace_id: str = ""
    span_id: str = ""

    def to_bytes(self) -> bytes:
        return pickle.dumps(
            {"format": WIRE_FORMAT, "assignment": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Assignment":
        payload = pickle.loads(blob)
        if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
            raise SweepError("malformed assignment payload")
        assignment = payload["assignment"]
        if not isinstance(assignment, cls):
            raise SweepError("malformed assignment payload")
        return assignment


def dump_result(value: Any, snapshot: Any) -> bytes:
    """Encode one completed point's (value, telemetry snapshot)."""
    return pickle.dumps(
        {"format": WIRE_FORMAT, "value": value, "snapshot": snapshot},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_result(blob: bytes) -> tuple[Any, Any]:
    payload = pickle.loads(blob)
    if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
        raise SweepError("malformed result payload")
    return payload["value"], payload["snapshot"]


def dump_spans(spans: Sequence[dict]) -> str:
    """Encode fleet spans for the SPANS command (JSON, wall-clock secs)."""
    return json.dumps(list(spans), sort_keys=True)


def load_spans(text: str) -> list[dict]:
    """Decode and sanity-check a SPANS payload.

    Malformed *entries* are dropped rather than failing the whole batch
    (a fleet trace with a hole beats a worker burning its claim loop on
    rejected observability), but a payload that is not a JSON list at
    all is a protocol error.
    """
    try:
        payload = json.loads(text) if text else []
    except ValueError:
        raise SweepError("SPANS payload must be JSON") from None
    if not isinstance(payload, list):
        raise SweepError("SPANS payload must be a JSON list")
    spans: list[dict] = []
    for record in payload:
        if not isinstance(record, dict):
            continue
        try:
            start = float(record["start"])
            end = float(record["end"])
        except (KeyError, TypeError, ValueError):
            continue
        if end < start or not record.get("name"):
            continue
        args = record.get("args")
        spans.append(
            {
                "name": str(record["name"]),
                "category": str(record.get("category", "point")),
                "start": start,
                "end": end,
                "tid": int(record.get("tid", 0)),
                "args": dict(args) if isinstance(args, dict) else {},
            }
        )
    return spans


@dataclass
class FailureRecord:
    """One terminal worker-side failure of one point (FAIL payload)."""

    worker: str
    error: str
    traceback: str = ""
    retries: int = 0  # local re-attempts the worker burned before giving up

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "error": self.error,
            "traceback": self.traceback,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            worker=str(data.get("worker", "?")),
            error=str(data.get("error", "?")),
            traceback=str(data.get("traceback", "")),
            retries=int(data.get("retries", 0)),
        )


@dataclass
class GridInfo:
    """HELLO reply: what the coordinator is serving."""

    grid: str
    n_points: int
    lease_seconds: float
    version: str
    remaining: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "grid": self.grid,
            "n_points": self.n_points,
            "lease_seconds": self.lease_seconds,
            "version": self.version,
            "remaining": self.remaining,
            **self.extra,
        }
