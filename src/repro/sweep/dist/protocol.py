"""Wire protocol of the distributed sweep: RESP commands + payloads.

The coordinator is a :class:`~repro.transport.server.RespTcpServer`
subclass, so every exchange is a RESP command array from the worker and
a single RESP reply from the coordinator — the same substrate (and the
same :class:`~repro.transport.redis_backend.MiniRedisConnection` client
framing) as the mini-Redis backend. The full vocabulary:

=========  =============================================  =======================
command    arguments                                      reply
=========  =============================================  =======================
PING       —                                              ``+PONG``
HELLO      worker_id, capabilities-JSON                   bulk JSON grid info
CLAIM      worker_id                                      bulk assignment pickle,
                                                          null (nothing claimable
                                                          right now), or
                                                          ``+DRAINED``
RENEW      worker_id, index [, grid]                      ``:1`` (lease held) /
                                                          ``:0`` (lease lost)
DONE       worker_id, index, grid, result pickle          ``+OK`` / ``+DUPLICATE``
                                                          / ``+STALE``
FAIL       worker_id, index, grid, failure-JSON           ``+REQUEUED`` /
                                                          ``+POISONED`` /
                                                          ``+DUPLICATE`` /
                                                          ``+STALE``
STATUS     [grid]                                         bulk JSON state counts
                                                          + per-worker ``rates``
METRICS    —                                              bulk Prometheus-style
                                                          text exposition
SPANS      worker_id, spans-JSON                          ``:n`` (spans accepted)
=========  =============================================  =======================

The multi-tenant **sweep service** (:mod:`repro.sweep.dist.service`)
speaks the same vocabulary towards workers (so :class:`WorkerAgent` is
oblivious to which it joined) plus tenant lifecycle commands:

=========  =============================================  =======================
command    arguments                                      reply
=========  =============================================  =======================
SUBMIT     submission pickle                              bulk JSON {grid,
                                                          created, state, ...}
JOBS       —                                              bulk JSON job rows
CANCEL     grid                                           ``+CANCELLED`` /
                                                          ``+TERMINAL`` (already
                                                          done/poisoned)
RESULTS    grid                                           bulk results pickle
                                                          ({index: payload}
                                                          + job state)
QUERY      [spec-JSON]                                    bulk JSON result rows
                                                          (+ divergence report)
USAGE      [spec-JSON]                                    bulk JSON per-tenant
                                                          per-day accounting
GC         [policy-JSON]                                  bulk JSON retention
                                                          report (planned /
                                                          collected / refused)
HEALTH     —                                              bulk JSON readiness
                                                          document (store /
                                                          queues / quotas /
                                                          brownout state)
=========  =============================================  =======================

Any command may additionally be answered with a typed ``-BUSY`` error
line carrying a JSON refusal document (see :func:`dump_busy` /
:func:`parse_busy`): the request was *valid* but the service is shedding
load — tenant quota exhausted, dispatch queue full, or brownout. The
document's ``retry_after_s`` is a seeded-jittered pacing hint clients
honor instead of their own fixed backoff.

Wire-format history (``WIRE_FORMAT`` gates the pickled payload shape;
HELLO's version check keeps mixed fleets out entirely):

* **v1** — PING/HELLO/CLAIM/RENEW/DONE/FAIL/STATUS, results keyed by
  point index alone.
* **v2** — **grid-signature binding**: ``DONE``/``FAIL`` carry the grid
  signature of the assignment they answer. A coordinator on the same
  HOST:PORT may be serving a different grid by the time a slow worker
  reports back (multi-stage sweeps reuse the address; the worker's
  reconnect budget is designed to ride out the gap between grids), and
  point indices always collide because every grid is 0-based — the
  signature is what keeps grid A's value out of grid B's results. A
  mismatched submission is acknowledged with ``+STALE`` and discarded.
* **v3** — **observability**: assignments carry a trace context
  (``trace_id`` identifying the sweep, ``span_id`` identifying this
  lease) so worker-side spans parent correctly in the merged fleet
  trace; the ``SPANS`` command ships those finished spans back (JSON
  list of ``{name, category, start, end, tid, args}`` with wall-clock
  seconds — the coordinator files them under a pid track named from the
  worker's HELLO ``hostname:pid`` identity); ``METRICS`` returns a
  Prometheus-style text scrape of grid state and per-worker rates.
  ``SPANS`` is fire-and-forget best effort: a worker never retries it
  across reconnects and the coordinator never fails a grid over it —
  observability must observe, never perturb.
* **v4** — **multi-tenancy**: the sweep service accepts many named
  grids concurrently (``SUBMIT``/``JOBS``/``CANCEL``/``RESULTS``), so
  the single-grid assumptions of v3 are loosened in three places.
  (1) HELLO from a service advertises :data:`MULTI_GRID` (``"*"``)
  instead of one signature — a worker treats it as "any grid I claim
  here is current" and skips its reconnect-time stale-grid check (each
  *assignment* still carries its own signature, and DONE/FAIL still
  echo it, so results route to the right job). (2) ``RENEW`` grows an
  optional third ``grid`` argument: under one grid an index identifies
  a lease, under many it does not. v3 coordinators accept both arities
  (the grid, when present, is validated); v3 workers talking to a v4
  service would renew ambiguously — which is why ``WIRE_FORMAT`` is
  bumped and HELLO's version gate keeps mixed fleets out. (3)
  ``STATUS`` accepts an optional grid argument; without one a service
  answers an *aggregate* document shaped exactly like a coordinator's
  (so ``--watch`` works unchanged against either). Submission is
  idempotent by grid content signature, results are persisted in an
  SQLite store before acknowledgement, and a SIGKILLed service
  restarted on the same store drains every in-flight job to
  byte-identical results (see ``repro.sweep.dist.store``).
* **v5** — **read commands over the durable store**: ``QUERY`` (all
  recorded results for a point-fingerprint/job-name/tenant filter,
  across jobs and code versions, with optional version-divergence
  detection), ``USAGE`` (per-tenant per-day accounting aggregated from
  the event audit trail and cache history), and ``GC`` (the
  retention/policy engine: age- and count-based collection of terminal
  jobs, dry-run planning, tombstoned grids still short-circuit
  re-submission). All three take one optional JSON argument and answer
  bulk JSON; on the service they are answered from a *read-only
  connection pool* beside the store's single writer (GC's deletions
  alone go through the writer), so heavy queries never sit between a
  worker's DONE and its fsync — see ``repro.sweep.dist.query``. The
  store schema moves to v2 (indexed per-point fingerprints, tombstone
  rows, usage views; v1 stores migrate in place on open). The *result*
  payload shape is unchanged — ``load_result`` accepts persisted v4
  payloads so pre-v5 stores keep replaying byte-identical results —
  while live-wire payloads (assignments, submissions) require v5
  exactly, as before.
* **v6** — **overload protection**: admission control and graceful
  degradation become part of the wire contract. ``SUBMIT`` may be
  refused with a typed ``-BUSY`` line (per-tenant quota exhausted, or
  the service is in declared *brownout*: new work refused, CLAIM/DONE
  still served so the backlog drains); so may read commands shed from a
  full dispatch queue — durability acks (``DONE``/``FAIL``) are never
  shed. The refusal payload is JSON (``reason``, ``retry_after_s``,
  quota context) and the hint is seeded-jittered server-side so a
  refused fleet does not retry in lockstep. ``HEALTH`` answers a
  readiness document (store writability and write latency, reader-pool
  liveness, queue depths and shed counters, per-tenant quota headroom,
  brownout state) off the lock-free fast path, so the probe stays
  responsive under exactly the overload it exists to report. Result
  payloads from v4/v5 stores keep decoding byte-identical, as before.

Assignments and results are pickled: workers are trusted peers running
the *same* ``repro`` version against the same grid (HELLO rejects a
version mismatch, because cache keys and point fingerprints embed the
version). This is a cluster-internal tool, not an internet-facing one —
never expose the coordinator port to untrusted networks.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.errors import SweepError
from repro.sweep.cache import point_key
from repro.sweep.point import SweepPoint

#: Bumped when the assignment/result wire shape changes.
WIRE_FORMAT = "repro-dist-sweep-v6"

#: Result-payload formats :func:`load_result` accepts. Result payloads
#: outlive connections — the store persists the exact bytes a worker
#: shipped, and replaying them byte-identical across restarts (and now
#: across *code upgrades*) is the service's core promise. The v4 result
#: shape is unchanged through v6, so payloads recorded by pre-v6 stores
#: must keep decoding; live-wire payloads (assignments, submissions)
#: stay strictly current-format because nothing persists them.
_RESULT_FORMATS = frozenset(
    {"repro-dist-sweep-v4", "repro-dist-sweep-v5", WIRE_FORMAT}
)

#: Marker word of a typed overload refusal; the RESP line is
#: ``-BUSY <json>`` and clients see a message starting with this word.
BUSY = "BUSY"

#: CLAIM reply meaning "every point is done or poisoned; nothing left".
DRAINED = "DRAINED"

#: DONE/FAIL ack meaning "your submission belongs to a different grid".
STALE = "STALE"

#: HELLO ``grid`` value advertised by the multi-tenant service: "no one
#: grid is current here" — workers must not stale-drop against it.
MULTI_GRID = "*"

#: CANCEL ack meaning "the job was already done or poisoned" (terminal
#: states are immutable; their results stay queryable).
TERMINAL = "TERMINAL"

#: CANCEL ack meaning "the job is cancelled; its leases are revoked".
CANCELLED = "CANCELLED"


def dump_busy(
    reason: str, retry_after_s: Optional[float] = None, **extra: Any
) -> str:
    """The text after ``-BUSY``: a sorted-key JSON refusal document.

    ``reason`` is a stable machine-readable slug (``tenant-live-jobs``,
    ``tenant-queued-points``, ``tenant-store-bytes``, ``brownout``,
    ``draining``, ``dispatch-queue``); ``retry_after_s`` is the server's
    seeded-jittered pacing hint. Extra keys carry quota context (limit,
    usage) for operators reading a ``-BUSY`` storm out of client logs.
    """
    doc: dict[str, Any] = {"reason": str(reason)}
    if retry_after_s is not None:
        doc["retry_after_s"] = round(float(retry_after_s), 4)
    doc.update(extra)
    return json.dumps(doc, sort_keys=True)


def parse_busy(message: str) -> Optional[dict]:
    """Decode a client-side error message into its BUSY document.

    Returns None when the message is not a ``-BUSY`` refusal at all (an
    ordinary ``-ERR``); a dict (possibly just ``{"reason": "busy"}`` for
    a bare/unparseable BUSY line) otherwise — so callers can use the
    None/dict split as the retryable/fatal classification.
    """
    text = str(message)
    if text != BUSY and not text.startswith(BUSY + " "):
        return None
    rest = text[len(BUSY):].strip()
    if rest:
        try:
            doc = json.loads(rest)
            if isinstance(doc, dict):
                doc.setdefault("reason", "busy")
                return doc
        except ValueError:
            pass
        return {"reason": "busy", "detail": rest}
    return {"reason": "busy"}


def parse_hostport(text: str) -> tuple[str, int]:
    """Split ``HOST:PORT`` (IPv4/hostname) into its parts."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep or not host:
        raise SweepError(f"expected HOST:PORT, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise SweepError(f"bad port in {text!r}") from None
    if not 0 <= port <= 65535:
        raise SweepError(f"port out of range in {text!r}")
    return host, port


def grid_signature(points: Sequence[tuple[int, SweepPoint]]) -> str:
    """Content identity of one (sub)grid: SHA-256 over its point keys.

    Embeds each point's function path, canonical kwargs fingerprint, and
    the package version (via :func:`~repro.sweep.cache.point_key`), plus
    the grid *indices* — so a journal written for one grid can never be
    replayed into a different one, a reordered grid, or another code
    version.
    """
    digest = hashlib.sha256()
    for index, point in points:
        digest.update(f"{index}:{point_key(point.func_path, dict(point.kwargs))}\n".encode())
    return digest.hexdigest()


@dataclass(frozen=True)
class Assignment:
    """One leased unit of work, shipped coordinator -> worker."""

    index: int
    point: SweepPoint
    lease_seconds: float
    #: Per-point wall-clock timeout (None = unlimited), enforced worker-side.
    timeout: Optional[float] = None
    #: Additional local attempts the worker grants retryable failures.
    retries: int = 1
    #: Whether the worker must capture a telemetry snapshot.
    capture: bool = True
    #: Signature of the grid this assignment belongs to; echoed back in
    #: DONE/FAIL so a result can never land in a different grid's table.
    grid: str = ""
    #: Trace context stamped by the coordinator: ``trace_id`` identifies
    #: the sweep (grid-signature prefix), ``span_id`` this specific
    #: lease (``index/lease-generation``). Worker-side spans carry both
    #: so the merged fleet trace links every execution to its lease.
    trace_id: str = ""
    span_id: str = ""

    def to_bytes(self) -> bytes:
        return pickle.dumps(
            {"format": WIRE_FORMAT, "assignment": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Assignment":
        payload = pickle.loads(blob)
        if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
            raise SweepError("malformed assignment payload")
        assignment = payload["assignment"]
        if not isinstance(assignment, cls):
            raise SweepError("malformed assignment payload")
        return assignment


def dump_result(value: Any, snapshot: Any) -> bytes:
    """Encode one completed point's (value, telemetry snapshot)."""
    return pickle.dumps(
        {"format": WIRE_FORMAT, "value": value, "snapshot": snapshot},
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_result(blob: bytes) -> tuple[Any, Any]:
    """Decode one result payload (current wire format or persisted v4)."""
    payload = pickle.loads(blob)
    if not isinstance(payload, dict) or payload.get("format") not in _RESULT_FORMATS:
        raise SweepError("malformed result payload")
    return payload["value"], payload["snapshot"]


def dump_submission(
    name: str,
    points: Sequence[tuple[int, SweepPoint]],
    tenant: str = "",
    timeout: Optional[float] = None,
    retries: int = 1,
    capture: bool = True,
) -> bytes:
    """Encode one SUBMIT payload (a named grid + its execution options).

    The grid signature is *not* shipped — the service recomputes it from
    the points, so a tenant can never claim one grid's identity for
    another grid's content.
    """
    return pickle.dumps(
        {
            "format": WIRE_FORMAT,
            "name": str(name),
            "tenant": str(tenant),
            "points": [(int(i), p) for i, p in points],
            "timeout": timeout,
            "retries": int(retries),
            "capture": bool(capture),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_submission(blob: bytes) -> dict:
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise SweepError(f"unreadable SUBMIT payload: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
        raise SweepError("malformed SUBMIT payload")
    points = payload.get("points")
    if not isinstance(points, list) or not points:
        raise SweepError("SUBMIT payload has no points")
    for item in points:
        if not (
            isinstance(item, (tuple, list))
            and len(item) == 2
            and isinstance(item[1], SweepPoint)
        ):
            raise SweepError("SUBMIT payload points must be (index, SweepPoint)")
    return payload


def dump_results_reply(
    state: str, payloads: dict[int, bytes], poisoned: Optional[dict] = None
) -> bytes:
    """Encode one RESULTS reply: raw per-point wire payloads + job state.

    Payloads are shipped exactly as the store recorded them (the bytes
    the worker produced with :func:`dump_result`) — no decode/re-encode
    round trip, which is what makes restart results byte-identical.
    """
    return pickle.dumps(
        {
            "format": WIRE_FORMAT,
            "state": str(state),
            "payloads": {int(i): bytes(b) for i, b in payloads.items()},
            "poisoned": dict(poisoned or {}),
        },
        protocol=pickle.HIGHEST_PROTOCOL,
    )


def load_results_reply(blob: bytes) -> dict:
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise SweepError(f"unreadable RESULTS payload: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != WIRE_FORMAT:
        raise SweepError("malformed RESULTS payload")
    return payload


def dump_spans(spans: Sequence[dict]) -> str:
    """Encode fleet spans for the SPANS command (JSON, wall-clock secs)."""
    return json.dumps(list(spans), sort_keys=True)


def load_spans(text: str) -> list[dict]:
    """Decode and sanity-check a SPANS payload.

    Malformed *entries* are dropped rather than failing the whole batch
    (a fleet trace with a hole beats a worker burning its claim loop on
    rejected observability), but a payload that is not a JSON list at
    all is a protocol error.
    """
    try:
        payload = json.loads(text) if text else []
    except ValueError:
        raise SweepError("SPANS payload must be JSON") from None
    if not isinstance(payload, list):
        raise SweepError("SPANS payload must be a JSON list")
    spans: list[dict] = []
    for record in payload:
        if not isinstance(record, dict):
            continue
        try:
            start = float(record["start"])
            end = float(record["end"])
        except (KeyError, TypeError, ValueError):
            continue
        if end < start or not record.get("name"):
            continue
        args = record.get("args")
        spans.append(
            {
                "name": str(record["name"]),
                "category": str(record.get("category", "point")),
                "start": start,
                "end": end,
                "tid": int(record.get("tid", 0)),
                "args": dict(args) if isinstance(args, dict) else {},
            }
        )
    return spans


@dataclass
class FailureRecord:
    """One terminal worker-side failure of one point (FAIL payload)."""

    worker: str
    error: str
    traceback: str = ""
    retries: int = 0  # local re-attempts the worker burned before giving up

    def as_dict(self) -> dict:
        return {
            "worker": self.worker,
            "error": self.error,
            "traceback": self.traceback,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FailureRecord":
        return cls(
            worker=str(data.get("worker", "?")),
            error=str(data.get("error", "?")),
            traceback=str(data.get("traceback", "")),
            retries=int(data.get("retries", 0)),
        )


@dataclass
class GridInfo:
    """HELLO reply: what the coordinator is serving."""

    grid: str
    n_points: int
    lease_seconds: float
    version: str
    remaining: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "grid": self.grid,
            "n_points": self.n_points,
            "lease_seconds": self.lease_seconds,
            "version": self.version,
            "remaining": self.remaining,
            **self.extra,
        }
