"""Admission control + brownout state machine for the sweep service.

The overload-protection policy brain, kept separate from the service's
wire plumbing so its decisions are unit-testable without a socket:

* :class:`TenantQuota` — the per-tenant admission limits checked at
  SUBMIT (max live jobs, max queued points, max store bytes). ``None``
  means unlimited, so a default-constructed quota admits everything and
  existing deployments are unaffected.
* :class:`AdmissionController` — stateful: refusal counters, the
  seeded-jittered ``retry_after_s`` hints, a store-write-latency EWMA,
  and the two-state brownout machine (``ready`` ⇄ ``brownout``) with
  hysteresis so the service does not flap at the threshold.

Determinism: every retry hint is drawn from one RNG seeded via
:func:`~repro.sweep.point.derive_seed`, and the service serializes
command dispatch, so a fixed sequence of refusals yields a fixed
sequence of hints — tests and the CI overload drill can assert exact
shedding behavior.

The brownout rule (graceful degradation under resource pressure, per
the "Twelve quick tips" workflow-design guidance): when the dispatch
backlog or the store's write latency crosses its threshold the service
*declares* brownout — new SUBMITs are refused with a typed ``-BUSY``
while CLAIM/DONE keep flowing, so the backlog drains instead of
growing until the process dies. Recovery requires dropping below
``recovery_fraction`` of the threshold (hysteresis).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from repro.sweep.point import derive_seed

#: Brownout state names (also the ``state`` field of HEALTH documents).
READY = "ready"
BROWNOUT = "brownout"
DRAINING = "draining"

#: Smoothing factor of the store-write-latency EWMA (weight of the
#: newest observation). High enough that a stall shows within a few
#: writes, low enough that one slow fsync does not trip brownout.
_LATENCY_ALPHA = 0.2


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits; ``None`` = unlimited.

    * ``max_live_jobs`` — non-terminal jobs a tenant may have at once.
    * ``max_queued_points`` — outstanding (not done/poisoned) points
      across the tenant's live jobs, including the submission being
      admitted.
    * ``max_store_bytes`` — live bytes in the shared store
      (:meth:`~repro.sweep.dist.store.SweepStore.used_bytes`); a global
      backstop checked per submission, and the one that recovers after
      GC collects terminal jobs.
    """

    max_live_jobs: Optional[int] = None
    max_queued_points: Optional[int] = None
    max_store_bytes: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return (
            self.max_live_jobs is None
            and self.max_queued_points is None
            and self.max_store_bytes is None
        )

    def as_dict(self) -> dict:
        return {
            "max_live_jobs": self.max_live_jobs,
            "max_queued_points": self.max_queued_points,
            "max_store_bytes": self.max_store_bytes,
        }

    def headroom(
        self, live_jobs: int, queued_points: int, store_bytes: Optional[int]
    ) -> dict:
        """Remaining capacity per axis (``None`` = unlimited axis)."""
        return {
            "live_jobs": (
                None
                if self.max_live_jobs is None
                else max(0, self.max_live_jobs - live_jobs)
            ),
            "queued_points": (
                None
                if self.max_queued_points is None
                else max(0, self.max_queued_points - queued_points)
            ),
            "store_bytes": (
                None
                if self.max_store_bytes is None or store_bytes is None
                else max(0, self.max_store_bytes - store_bytes)
            ),
        }


class AdmissionController:
    """Quota checks, refusal bookkeeping, and the brownout machine."""

    def __init__(
        self,
        quota: Optional[TenantQuota] = None,
        brownout_backlog: Optional[int] = None,
        brownout_store_latency_s: Optional[float] = 1.0,
        recovery_fraction: float = 0.5,
        busy_retry_s: float = 1.0,
        seed: int = 0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.quota = quota if quota is not None else TenantQuota()
        self.brownout_backlog = brownout_backlog
        self.brownout_store_latency_s = brownout_store_latency_s
        self.recovery_fraction = float(recovery_fraction)
        self.busy_retry_s = float(busy_retry_s)
        self.clock = clock
        self._rng = np.random.default_rng(derive_seed(seed, "admission"))
        self.state = READY
        self.brownouts = 0  # transitions into brownout
        self.busy_refusals = 0
        self.refusals_by_reason: dict[str, int] = {}
        self.store_write_latency_s = 0.0
        self._brownout_cause: Optional[str] = None
        self._brownout_since: Optional[float] = None

    # -- refusal plumbing ----------------------------------------------------
    def retry_hint(self, scale: float = 1.0) -> float:
        """A seeded-jittered ``retry_after_s``: refused peers spread out.

        Uniform in ``[0.5, 1.5) * busy_retry_s * scale`` — the same
        half-to-three-halves window the client's own backoff uses, but
        drawn server-side from one seeded stream so a synchronized
        thundering herd is de-synchronized deterministically.
        """
        base = self.busy_retry_s * float(scale)
        return base * (0.5 + float(self._rng.random()))

    def refuse(
        self, reason: str, scale: float = 1.0, **extra: Any
    ) -> dict:
        """Record one refusal; returns the ``-BUSY`` document fields."""
        self.busy_refusals += 1
        self.refusals_by_reason[reason] = (
            self.refusals_by_reason.get(reason, 0) + 1
        )
        doc = {"reason": reason, "retry_after_s": self.retry_hint(scale)}
        doc.update(extra)
        return doc

    # -- quota checks --------------------------------------------------------
    def check_submit(
        self,
        tenant: str,
        live_jobs: int,
        queued_points: int,
        n_points: int,
        store_bytes: Optional[int],
    ) -> Optional[dict]:
        """None to admit; a refusal document otherwise.

        Checked *after* the idempotency short-circuits: a resubmission
        of a known grid adds no load and is never refused. ``live_jobs``
        and ``queued_points`` count the tenant's state before this
        submission; the submission itself (1 job, ``n_points`` points)
        must also fit.
        """
        if self.state == BROWNOUT:
            return self.refuse(
                "brownout", scale=4.0, cause=self._brownout_cause, tenant=tenant
            )
        q = self.quota
        if q.max_live_jobs is not None and live_jobs + 1 > q.max_live_jobs:
            return self.refuse(
                "tenant-live-jobs",
                tenant=tenant,
                limit=q.max_live_jobs,
                live_jobs=live_jobs,
            )
        if (
            q.max_queued_points is not None
            and queued_points + n_points > q.max_queued_points
        ):
            return self.refuse(
                "tenant-queued-points",
                tenant=tenant,
                limit=q.max_queued_points,
                queued_points=queued_points,
                n_points=n_points,
            )
        if (
            q.max_store_bytes is not None
            and store_bytes is not None
            and store_bytes >= q.max_store_bytes
        ):
            return self.refuse(
                "tenant-store-bytes",
                scale=2.0,
                tenant=tenant,
                limit=q.max_store_bytes,
                store_bytes=store_bytes,
            )
        return None

    # -- brownout machine ----------------------------------------------------
    def observe_store_write(self, seconds: float) -> None:
        """Feed one store-write duration into the latency EWMA."""
        self.store_write_latency_s = (
            (1.0 - _LATENCY_ALPHA) * self.store_write_latency_s
            + _LATENCY_ALPHA * float(seconds)
        )

    def _pressure(self, backlog: int) -> Optional[str]:
        """Which signal (if any) is past its brownout threshold."""
        if (
            self.brownout_backlog is not None
            and backlog >= self.brownout_backlog
        ):
            return "dispatch-backlog"
        if (
            self.brownout_store_latency_s is not None
            and self.store_write_latency_s >= self.brownout_store_latency_s
        ):
            return "store-latency"
        return None

    def _recovered(self, backlog: int) -> bool:
        """All signals below ``recovery_fraction`` of their thresholds."""
        if self.brownout_backlog is not None and backlog > (
            self.recovery_fraction * self.brownout_backlog
        ):
            return False
        if (
            self.brownout_store_latency_s is not None
            and self.store_write_latency_s
            > self.recovery_fraction * self.brownout_store_latency_s
        ):
            return False
        return True

    def evaluate(self, backlog: int) -> Optional[str]:
        """Advance the state machine; returns "enter"/"exit" on transition."""
        if self.state == READY:
            cause = self._pressure(backlog)
            if cause is not None:
                self.state = BROWNOUT
                self.brownouts += 1
                self._brownout_cause = cause
                self._brownout_since = self.clock()
                return "enter"
            return None
        if self._recovered(backlog):
            self.state = READY
            self._brownout_cause = None
            self._brownout_since = None
            return "exit"
        return None

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict:
        """The ``admission`` section of a HEALTH document."""
        doc = {
            "state": self.state,
            "quota": self.quota.as_dict(),
            "busy_refusals": self.busy_refusals,
            "refusals": dict(sorted(self.refusals_by_reason.items())),
            "brownouts": self.brownouts,
            "store_write_latency_s": round(self.store_write_latency_s, 6),
            "thresholds": {
                "backlog": self.brownout_backlog,
                "store_latency_s": self.brownout_store_latency_s,
                "recovery_fraction": self.recovery_fraction,
            },
        }
        if self.state == BROWNOUT:
            doc["brownout_cause"] = self._brownout_cause
            if self._brownout_since is not None:
                doc["brownout_age_s"] = round(
                    max(0.0, self.clock() - self._brownout_since), 3
                )
        return doc


__all__ = [
    "AdmissionController",
    "BROWNOUT",
    "DRAINING",
    "READY",
    "TenantQuota",
]
