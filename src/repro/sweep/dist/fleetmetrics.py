"""Live fleet metrics: per-worker EWMA rates + Prometheus exposition.

The coordinator's :class:`~repro.sweep.dist.lease.LeaseTable` knows the
state machine; this module knows the *speeds*. One :class:`EwmaRate` per
worker tracks its points-per-second as an exponentially-weighted moving
average of inter-completion intervals — cheap (O(1) per completion),
smooth under jitter, and bounded-stale: :meth:`EwmaRate.current` caps
the reported rate by the worker's silence gap, so a worker that stopped
completing decays toward zero instead of advertising its last burst
forever.

:func:`prometheus_exposition` renders the coordinator's ``status()``
document (counts, per-worker tallies, rates, lease ages) in the
Prometheus text format, served verbatim as the ``METRICS`` reply —
scrape it with ``redis-cli``-style tooling, CI smoke jobs, or an actual
Prometheus ``textfile`` collector.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SweepError

#: Default EWMA smoothing factor: ~63% of the estimate comes from the
#: last three completions.
DEFAULT_ALPHA = 0.3


class EwmaRate:
    """Exponentially-weighted points-per-second of one worker.

    Not internally locked: the coordinator/service mutates and reads it
    under their dispatch lock, like every other per-worker structure.
    Pure bookkeeping — nothing here is durable or needs to be.
    """

    def __init__(self, alpha: float = DEFAULT_ALPHA) -> None:
        if not 0.0 < alpha <= 1.0:
            raise SweepError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self._rate: Optional[float] = None
        self._last: Optional[float] = None  # last completion (or activity start)

    def mark_active(self, now: float) -> None:
        """Start the first measurement window (first claim)."""
        if self._last is None:
            self._last = float(now)

    def observe(self, now: float) -> None:
        """Record one completion at time ``now``."""
        now = float(now)
        if self._last is None:
            # No claim was seen (journal replay paths): anchor here and
            # let the next completion produce the first interval.
            self._last = now
            return
        interval = now - self._last
        self._last = now
        if interval <= 0.0:
            # Clock did not advance between completions (quantized test
            # clocks): treat as "at least as fast as before".
            return
        instant = 1.0 / interval
        if self._rate is None:
            self._rate = instant
        else:
            self._rate += self.alpha * (instant - self._rate)

    def current(self, now: float) -> float:
        """Rate estimate at ``now``, decayed by the silence gap.

        A worker silent for ``g`` seconds cannot currently be faster
        than ``1/g`` points/sec, whatever its history — the cap keeps a
        stalled worker's advertised rate honest without extra state.
        """
        if self._rate is None:
            return 0.0
        gap = float(now) - (self._last if self._last is not None else now)
        if gap > 0.0:
            return min(self._rate, 1.0 / gap)
        return self._rate


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _family(
    lines: list[str], name: str, kind: str, help_text: str,
    samples: list[tuple[dict, float]],
) -> None:
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        if labels:
            inner = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
            )
            lines.append(f"{name}{{{inner}}} {value:g}")
        else:
            lines.append(f"{name} {value:g}")


def prometheus_exposition(status: dict) -> str:
    """Render a coordinator ``status()`` dict as Prometheus text.

    Families: grid point states, session counters (reclaims, requeues,
    executed, replayed), and per-worker counters/rates/lease ages from
    the ``workers``/``rates`` sections.
    """
    lines: list[str] = []
    counts = status.get("counts", {})
    _family(
        lines,
        "repro_sweep_points",
        "gauge",
        "Grid points by lease state.",
        [({"state": state}, float(n)) for state, n in sorted(counts.items())],
    )
    _family(
        lines,
        "repro_sweep_points_total",
        "gauge",
        "Total points in the served grid.",
        [({}, float(status.get("n_points", 0)))],
    )
    for name, help_text in (
        ("reclaims", "Leases stolen back from expired workers."),
        ("requeues", "Terminal worker failures re-queued to other workers."),
        ("executed", "Points completed by workers this session."),
        ("replayed", "Points restored from the crash-recovery journal."),
    ):
        _family(
            lines,
            f"repro_sweep_{name}_total",
            "counter",
            help_text,
            [({}, float(status.get(name, 0)))],
        )
    workers = status.get("workers", {})
    for counter in ("claimed", "completed", "failed"):
        _family(
            lines,
            f"repro_sweep_worker_{counter}_total",
            "counter",
            f"Points {counter} per worker.",
            [
                ({"worker": worker}, float(entry.get(counter, 0)))
                for worker, entry in sorted(workers.items())
            ],
        )
    rates = status.get("rates", {})
    _family(
        lines,
        "repro_sweep_worker_rate_points_per_second",
        "gauge",
        "EWMA completion rate per worker, decayed by silence.",
        [
            ({"worker": worker}, float(entry.get("points_per_second", 0.0)))
            for worker, entry in sorted(rates.items())
        ],
    )
    _family(
        lines,
        "repro_sweep_worker_lease_age_seconds",
        "gauge",
        "Age of the worker's current lease (0 when idle).",
        [
            ({"worker": worker}, float(entry.get("lease_age_seconds") or 0.0))
            for worker, entry in sorted(rates.items())
        ],
    )
    return "\n".join(lines) + "\n"


__all__ = ["DEFAULT_ALPHA", "EwmaRate", "prometheus_exposition"]
