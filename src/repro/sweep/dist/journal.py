"""Append-only crash-recovery journal for the sweep coordinator.

One JSONL file per grid, named by the grid signature, so a coordinator
restarted with the same ``--journal`` directory finds exactly its own
log and a different grid (or code version) can never replay a stale one.

Record stream::

    {"type": "header", "format": ..., "grid": ..., "n_points": N, ...}
    {"type": "lease",    "index": i, "worker": w}
    {"type": "renew",    "index": i, "worker": w}          # optional noise
    {"type": "reclaim",  "index": i}
    {"type": "requeue",  "index": i, "error": ...}
    {"type": "done",     "index": i, "payload": base64(pickle)}
    {"type": "poisoned", "index": i, "failures": [...]}

Only ``done``/``poisoned`` matter for recovery — the lease-lifecycle
records are an audit trail of state transitions. Replay is tolerant of a
torn tail (the coordinator may die mid-append): a final partial line is
ignored, but corruption *before* the tail raises
:class:`~repro.errors.SweepJournalError` since silently dropping
completed work would re-run points. ``done`` payloads are fsync'd before
the coordinator acknowledges the worker, so an acknowledged result is
never lost to a coordinator crash.

A restarted coordinator appends a fresh ``header`` (same grid signature)
so sessions are visible in the audit trail; replay validates every
header it meets.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.errors import SweepJournalError
from repro.version import __version__

JOURNAL_FORMAT = "repro-sweep-journal-v1"


@dataclass
class ReplayState:
    """What a journal already knows about its grid."""

    #: index -> (value, snapshot) for completed points.
    done: dict[int, tuple[Any, Any]] = field(default_factory=dict)
    #: index -> failure dicts for quarantined points.
    poisoned: dict[int, list[dict]] = field(default_factory=dict)
    sessions: int = 0  # header count (coordinator [re]starts)
    records: int = 0


class SweepJournal:
    """One grid's append-only recovery log inside a journal directory.

    Durability contract: :meth:`record_done` and :meth:`record_poisoned`
    flush **and fsync** before returning — the coordinator calls them
    before acknowledging the worker, so an acknowledged result survives
    any crash. :meth:`record_transition` audit records are flushed but
    not fsynced (losing them costs observability, not correctness). A
    torn tail (writer killed mid-append) is tolerated on
    :meth:`replay`; mid-file corruption or a header from a different
    grid is an error, never a silent partial replay.

    Thread-safety: none — one open session, one writer. The coordinator
    only appends from under its dispatch lock.
    """

    def __init__(self, directory: str | Path, signature: str, n_points: int) -> None:
        self.directory = Path(directory)
        self.signature = signature
        self.n_points = n_points
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / f"{signature[:24]}.jsonl"
        self._handle = None

    # -- replay ------------------------------------------------------------
    def replay(self) -> ReplayState:
        """Read every prior record; validates headers against this grid."""
        state = ReplayState()
        if not self.path.exists():
            return state
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # A torn tail is normal after a crash: the final chunk either is
        # empty (file ended in a clean newline) or is a partial record.
        tail = lines.pop() if lines else b""
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise SweepJournalError(
                    f"{self.path}:{lineno}: corrupt journal record: {exc}"
                ) from exc
            self._apply(record, state, lineno)
        if tail.strip():
            try:
                record = json.loads(tail)
            except ValueError:
                pass  # torn final append — the worker will redo that point
            else:
                self._apply(record, state, len(lines) + 1)
        return state

    def _apply(self, record: dict, state: ReplayState, lineno: int) -> None:
        state.records += 1
        kind = record.get("type")
        if kind == "header":
            if record.get("format") != JOURNAL_FORMAT:
                raise SweepJournalError(
                    f"{self.path}:{lineno}: unknown journal format "
                    f"{record.get('format')!r}"
                )
            if record.get("grid") != self.signature:
                raise SweepJournalError(
                    f"{self.path}:{lineno}: journal belongs to grid "
                    f"{record.get('grid')!r}, not {self.signature!r} — stale "
                    "journal directory?"
                )
            state.sessions += 1
        elif kind == "done":
            index = int(record["index"])
            try:
                payload = pickle.loads(base64.b64decode(record["payload"]))
            except Exception as exc:
                raise SweepJournalError(
                    f"{self.path}:{lineno}: unreadable done-payload for point "
                    f"{index}: {exc}"
                ) from exc
            state.done[index] = (payload["value"], payload["snapshot"])
            state.poisoned.pop(index, None)
        elif kind == "poisoned":
            index = int(record["index"])
            if index not in state.done:
                state.poisoned[index] = list(record.get("failures", []))
        # lease/renew/reclaim/requeue are audit-only.

    # -- append ------------------------------------------------------------
    @property
    def is_open(self) -> bool:
        """Whether an append session is active (False once closed)."""
        return self._handle is not None

    def open_session(self) -> None:
        """Open for appending and stamp a session header."""
        if self._handle is not None:
            return
        self._handle = open(self.path, "a", encoding="utf-8")
        self._append(
            {
                "type": "header",
                "format": JOURNAL_FORMAT,
                "grid": self.signature,
                "n_points": self.n_points,
                "version": __version__,
                "time": time.time(),
            },
            durable=True,
        )

    def _append(self, record: dict, durable: bool = False) -> None:
        if self._handle is None:
            raise SweepJournalError("journal session is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        if durable:
            os.fsync(self._handle.fileno())

    def record_transition(self, event: str, index: int, worker: Optional[str]) -> None:
        """Audit-trail lease lifecycle events (not needed for recovery)."""
        self._append({"type": event, "index": index, "worker": worker})

    def record_done(self, index: int, value: Any, snapshot: Any) -> None:
        """Durably persist one completed point (fsync before returning)."""
        payload = base64.b64encode(
            pickle.dumps(
                {"value": value, "snapshot": snapshot},
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        ).decode("ascii")
        self._append({"type": "done", "index": index, "payload": payload}, durable=True)

    def record_poisoned(self, index: int, failures: list[dict]) -> None:
        self._append(
            {"type": "poisoned", "index": index, "failures": failures}, durable=True
        )

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None
