"""Fault-tolerant distributed sweep: coordinator, workers, leases, journal.

A :class:`SweepCoordinator` serves a point grid over TCP (the RESP
substrate shared with the mini-Redis backend); :class:`WorkerAgent`\\ s
claim points under time-bounded leases, renew them via heartbeats, and
stream results back. Expired leases are reclaimed and re-queued (work
stealing), points that fail on multiple distinct workers are quarantined
as poison, and an append-only journal lets a restarted coordinator
resume a half-finished grid without re-running completed points.

The *durable service* (:class:`SweepService` + :class:`SweepStore`)
generalises the single-grid coordinator into a long-lived multi-tenant
endpoint: many named grids at once, fair-share leasing across tenants,
and an SQLite store instead of the journal, so a SIGKILLed service
restarts against the same database with every acknowledged result
intact. Tenants drive it with :class:`ServiceClient` (or ``repro sweep
--submit``).

See ``ARCHITECTURE.md`` for the lease/job state machines and failure
matrix.
"""

from repro.sweep.dist.admission import AdmissionController, TenantQuota
from repro.sweep.dist.coordinator import DistOutcome, DistProgressFn, SweepCoordinator
from repro.sweep.dist.loadgen import LoadSpec, run_load
from repro.sweep.dist.fleetmetrics import EwmaRate, prometheus_exposition
from repro.sweep.dist.journal import SweepJournal
from repro.sweep.dist.lease import LeaseTable, PointRecord, PointState
from repro.sweep.dist.protocol import (
    Assignment,
    FailureRecord,
    GridInfo,
    grid_signature,
    parse_hostport,
)
from repro.sweep.dist.service import (
    ServiceClient,
    SweepService,
    run_service_process,
)
from repro.sweep.dist.store import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_POISONED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JOB_TERMINAL,
    SweepStore,
    migrate_cache_dir,
)
from repro.sweep.dist.watch import fetch_status, render_status, watch
from repro.sweep.dist.worker import (
    WorkerAgent,
    WorkerOptions,
    WorkerReport,
    run_worker_process,
)

__all__ = [
    "AdmissionController",
    "Assignment",
    "DistOutcome",
    "DistProgressFn",
    "EwmaRate",
    "FailureRecord",
    "GridInfo",
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_POISONED",
    "JOB_RUNNING",
    "JOB_SUBMITTED",
    "JOB_TERMINAL",
    "LeaseTable",
    "LoadSpec",
    "PointRecord",
    "PointState",
    "ServiceClient",
    "SweepCoordinator",
    "SweepJournal",
    "SweepService",
    "SweepStore",
    "TenantQuota",
    "WorkerAgent",
    "WorkerOptions",
    "WorkerReport",
    "fetch_status",
    "grid_signature",
    "migrate_cache_dir",
    "parse_hostport",
    "prometheus_exposition",
    "render_status",
    "run_load",
    "run_service_process",
    "run_worker_process",
    "watch",
]
