"""Fault-tolerant distributed sweep: coordinator, workers, leases, journal.

A :class:`SweepCoordinator` serves a point grid over TCP (the RESP
substrate shared with the mini-Redis backend); :class:`WorkerAgent`\\ s
claim points under time-bounded leases, renew them via heartbeats, and
stream results back. Expired leases are reclaimed and re-queued (work
stealing), points that fail on multiple distinct workers are quarantined
as poison, and an append-only journal lets a restarted coordinator
resume a half-finished grid without re-running completed points.

See ``ARCHITECTURE.md`` for the lease state machine and failure matrix.
"""

from repro.sweep.dist.coordinator import DistOutcome, DistProgressFn, SweepCoordinator
from repro.sweep.dist.fleetmetrics import EwmaRate, prometheus_exposition
from repro.sweep.dist.journal import SweepJournal
from repro.sweep.dist.lease import LeaseTable, PointRecord, PointState
from repro.sweep.dist.protocol import (
    Assignment,
    FailureRecord,
    GridInfo,
    grid_signature,
    parse_hostport,
)
from repro.sweep.dist.watch import fetch_status, render_status, watch
from repro.sweep.dist.worker import (
    WorkerAgent,
    WorkerOptions,
    WorkerReport,
    run_worker_process,
)

__all__ = [
    "Assignment",
    "DistOutcome",
    "DistProgressFn",
    "EwmaRate",
    "FailureRecord",
    "GridInfo",
    "LeaseTable",
    "PointRecord",
    "PointState",
    "SweepCoordinator",
    "SweepJournal",
    "WorkerAgent",
    "WorkerOptions",
    "WorkerReport",
    "fetch_status",
    "grid_signature",
    "parse_hostport",
    "prometheus_exposition",
    "render_status",
    "run_worker_process",
    "watch",
]
