"""Live fleet console: render a coordinator's STATUS as refreshing text.

``repro sweep --watch HOST:PORT`` attaches to a *running* coordinator
(local or remote) as a read-only observer: it polls the ``STATUS``
command, renders a grid progress bar, the per-worker rate table (from
the ``rates`` section the coordinator computes with
:class:`~repro.sweep.dist.fleetmetrics.EwmaRate`), and the quarantine
list, then repaints in place with ANSI cursor control. It claims
nothing, renews nothing, and submits nothing — watching a sweep cannot
perturb it.

Rendering is a pure function of the status document
(:func:`render_status`), so tests exercise the exact strings without a
socket; :func:`watch` owns only the poll/clear/exit loop.
"""

from __future__ import annotations

import json
import sys
import time
from typing import Callable, Optional, TextIO

import numpy as np

from repro.errors import BackendUnavailableError, SweepError, TransportError
from repro.sweep.dist.protocol import parse_hostport
from repro.sweep.point import derive_seed
from repro.transport.redis_backend import MiniRedisConnection
from repro.transport.resp import ServerReplyError

#: Progress-bar width in cells.
BAR_WIDTH = 30

#: Default cumulative reconnect allowance after losing a coordinator we
#: had reached (seconds of *requested* sleep, so injected test clocks
#: still exhaust it deterministically).
RECONNECT_BUDGET = 30.0

#: ANSI: move the cursor home and wipe the rest of the screen.
_CLEAR = "\x1b[H\x1b[J"


def fetch_status(address: str, timeout: float = 5.0) -> dict:
    """One STATUS round-trip to the coordinator at ``HOST:PORT``.

    Opens and closes its own connection per call — stateless, safe from
    any thread, and strictly read-only on the coordinator side.
    """
    host, port = parse_hostport(address)
    conn = MiniRedisConnection(host, port, timeout=timeout)
    try:
        reply = conn.command("STATUS")
    finally:
        conn.close()
    try:
        status = json.loads(reply) if reply else None
    except ValueError:
        status = None
    if not isinstance(status, dict):
        raise SweepError(f"malformed STATUS reply from {address}")
    return status


def fetch_health(address: str, timeout: float = 5.0) -> Optional[dict]:
    """One HEALTH round-trip; None when the peer has no HEALTH command.

    A v5-or-older coordinator answers ``-ERR unknown command`` — the
    console degrades to status-only rendering instead of failing, so
    ``--watch`` attaches to either vintage. Connection-level failures
    propagate (the caller's reconnect loop owns those).
    """
    host, port = parse_hostport(address)
    conn = MiniRedisConnection(host, port, timeout=timeout)
    try:
        reply = conn.command("HEALTH")
    except ServerReplyError:
        return None  # -ERR unknown command: pre-v6 peer
    finally:
        conn.close()
    try:
        doc = json.loads(reply) if reply else None
    except ValueError:
        doc = None
    return doc if isinstance(doc, dict) else None


def progress_bar(done: int, total: int, width: int = BAR_WIDTH) -> str:
    """``[#####....] done/total`` with a guaranteed-bounded fill."""
    total = max(total, 1)
    filled = min(width, max(0, round(width * done / total)))
    return f"[{'#' * filled}{'.' * (width - filled)}] {done}/{total}"


def _fmt_rate(entry: dict) -> str:
    rate = float(entry.get("points_per_second") or 0.0)
    return f"{rate:7.2f}/s"


def _fmt_age(entry: dict) -> str:
    age = entry.get("lease_age_seconds")
    return "idle" if age is None else f"{float(age):5.1f}s"


def drained(status: dict) -> bool:
    """True when every point reached a terminal state (done/poisoned)."""
    counts = status.get("counts", {})
    total = int(status.get("n_points", 0))
    terminal = int(counts.get("done", 0)) + int(counts.get("poisoned", 0))
    return total > 0 and terminal >= total


def render_health(health: dict) -> list[str]:
    """Banner lines for a HEALTH document; empty when all is well."""
    state = str(health.get("state", "ready"))
    admission = health.get("admission", {})
    queues = health.get("queues", {})
    lines: list[str] = []
    if state != "ready":
        cause = admission.get("brownout_cause")
        detail = f" ({cause})" if cause else ""
        lines.append(
            f"  !! service {state.upper()}{detail} — new submissions refused, "
            "claims/acks still served"
        )
    refusals = int(admission.get("busy_refusals", 0))
    shed = int(queues.get("shed_commands", 0))
    if refusals or shed:
        lines.append(
            f"  overload: {refusals} busy refusals, {shed} shed commands, "
            f"{queues.get('refused_connections', 0)} refused connections, "
            f"backlog {queues.get('dispatch_waiting', 0)}"
            f"/{queues.get('dispatch_limit', '-')}"
        )
    return lines


def render_status(status: dict, health: Optional[dict] = None) -> str:
    """Pure text rendering of one STATUS document (no ANSI codes).

    With a HEALTH document the overload banner (brownout state, refusal
    and shed counters) is prepended — absent or healthy, the rendering
    is byte-identical to the status-only form.
    """
    counts = status.get("counts", {})
    total = int(status.get("n_points", 0))
    done = int(counts.get("done", 0))
    lines = (render_health(health) if health else []) + [
        f"sweep {str(status.get('grid', '?'))[:16]}  "
        f"{progress_bar(done, total)}",
        (
            f"  queued {counts.get('queued', 0)}  "
            f"leased {counts.get('leased', 0)}  "
            f"poisoned {counts.get('poisoned', 0)}  |  "
            f"executed {status.get('executed', 0)}  "
            f"replayed {status.get('replayed', 0)}  "
            f"reclaims {status.get('reclaims', 0)}  "
            f"requeues {status.get('requeues', 0)}"
        ),
    ]
    workers = status.get("workers", {})
    rates = status.get("rates", {})
    if workers:
        lines.append("")
        lines.append(
            f"  {'worker':<28} {'claimed':>7} {'done':>5} {'failed':>6}"
            f" {'rate':>9} {'lease':>7}"
        )
        for worker in sorted(workers):
            entry = workers[worker]
            rate_entry = rates.get(worker, {})
            lines.append(
                f"  {worker:<28} {entry.get('claimed', 0):>7}"
                f" {entry.get('completed', 0):>5} {entry.get('failed', 0):>6}"
                f" {_fmt_rate(rate_entry):>9} {_fmt_age(rate_entry):>7}"
            )
    poisoned = status.get("poisoned_points", [])
    if poisoned:
        lines.append("")
        lines.append("  quarantined points: " + ", ".join(str(i) for i in poisoned))
    if drained(status):
        lines.append("")
        lines.append("  grid drained.")
    return "\n".join(lines)


def watch(
    address: str,
    interval: float = 1.0,
    stream: Optional[TextIO] = None,
    max_refreshes: Optional[int] = None,
    fetch: Callable[[str], dict] = fetch_status,
    fetch_health_fn: Optional[Callable[[str], Optional[dict]]] = fetch_health,
    sleep: Callable[[float], None] = time.sleep,
    reconnect_budget: float = RECONNECT_BUDGET,
    seed: int = 0,
) -> int:
    """Poll-and-repaint until the grid drains; returns an exit code.

    Losing a coordinator we had reached starts a seeded-backoff
    reconnect loop bounded by ``reconnect_budget`` cumulative seconds —
    a coordinator restarting against the same store (the durable
    service) comes back mid-budget and the console re-attaches where it
    left off. The budget is accounted in *requested* sleep seconds, not
    wall time, so an injected no-op ``sleep`` exhausts it all the same.

    Exit 0 when the watched grid drained, or when a coordinator we had
    reached stays gone past the budget — a serve-mode coordinator only
    exits once its grid resolves (drain, poison, or stop), and the poll
    usually misses the sub-second window between the last completion
    and the process exiting, so "gone after contact" is the *normal*
    end of a watched run, not a failure. Exit 1 only when the
    coordinator was never reachable at all.
    """
    if interval <= 0:
        raise SweepError(f"watch interval must be positive, got {interval}")
    if reconnect_budget < 0:
        raise SweepError(
            f"reconnect budget must be >= 0, got {reconnect_budget}"
        )
    out = stream if stream is not None else sys.stdout
    use_ansi = stream is None and sys.stdout.isatty()
    rng = np.random.default_rng(derive_seed(seed, "watch-reconnect", address))
    refreshes = 0
    last: Optional[dict] = None
    budget_left = reconnect_budget
    attempt = 0
    health_supported = fetch_health_fn is not None
    while max_refreshes is None or refreshes < max_refreshes:
        try:
            status = fetch(address)
            health = None
            if health_supported:
                # Best-effort: only STATUS drives the reconnect loop; a
                # health probe failing (pre-v6 peer, injected fetch in
                # tests) just degrades the console to status-only.
                try:
                    health = fetch_health_fn(address)
                except (BackendUnavailableError, TransportError, OSError):
                    health = None
                if health is None:
                    health_supported = False
        except (BackendUnavailableError, TransportError, OSError):
            if last is None:
                print(f"coordinator at {address} is unreachable", file=out)
                return 1
            if budget_left <= 0:
                if not drained(last):
                    counts = last.get("counts", {})
                    print(
                        f"coordinator at {address} closed "
                        f"({counts.get('done', 0)}/{last.get('n_points', 0)} "
                        "done at last poll)",
                        file=out,
                    )
                return 0
            delay = min(interval * 2 ** min(attempt, 4), 10.0)
            delay = max(0.05, delay * (0.5 + float(rng.random())))
            delay = min(delay, budget_left)
            print(
                f"RECONNECTING to {address} "
                f"({budget_left:.1f}s left in budget)",
                file=out,
            )
            out.flush()
            sleep(delay)
            budget_left -= delay
            attempt += 1
            continue
        if attempt:
            print(f"reconnected to {address}", file=out)
        budget_left = reconnect_budget
        attempt = 0
        refreshes += 1
        if use_ansi:
            out.write(_CLEAR)
        print(render_status(status, health), file=out)
        out.flush()
        last = status
        if drained(status):
            return 0
        sleep(interval)
    return 0


__all__ = [
    "BAR_WIDTH",
    "RECONNECT_BUDGET",
    "drained",
    "fetch_health",
    "fetch_status",
    "progress_bar",
    "render_health",
    "render_status",
    "watch",
]
