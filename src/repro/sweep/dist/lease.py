"""Lease table: the coordinator's point state machine.

Every grid point moves through::

            claim                    complete
    QUEUED --------> LEASED --------------------> DONE
      ^                |  \\
      |     expiry     |   \\  terminal failure
      +--- (reclaim) --+    \\
      ^                      v
      +---- requeue ---- [failed] ----> POISONED
                         (below the      (>= poison_workers distinct
                          thresholds)     workers, or >= poison_failures
                                          total failures)

DONE and POISONED are terminal. Leases are **time-bounded**: a worker
that stops renewing (crash, partition, SIGKILL) loses the point at its
deadline and the next claimer steals it — that is the whole
fault-tolerance story, there is no worker liveness bookkeeping beyond
the leases themselves. Completion is **idempotent and first-writer-wins**:
a stale worker finishing a point that was already reclaimed and finished
elsewhere gets a duplicate-ack, never an error, because points are
deterministic functions of their kwargs (any result is *the* result).

The table is not itself thread-safe; the coordinator serializes access
under its command-execution lock (see
:class:`~repro.transport.server.RespTcpServer`). Time is injected
(``clock``) so expiry ordering is unit-testable without sleeping.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Iterable, Optional

from repro.errors import SweepError
from repro.sweep.dist.protocol import FailureRecord


class PointState(str, Enum):
    """Lifecycle of one grid point on the coordinator."""

    QUEUED = "queued"
    LEASED = "leased"
    DONE = "done"
    POISONED = "poisoned"


@dataclass
class PointRecord:
    """Everything the coordinator tracks about one point."""

    index: int
    state: PointState = PointState.QUEUED
    worker: Optional[str] = None
    deadline: float = 0.0
    leases: int = 0  # how many times this point has been handed out
    failures: list[FailureRecord] = field(default_factory=list)

    @property
    def failed_workers(self) -> set[str]:
        return {f.worker for f in self.failures}


class LeaseTable:
    """Queued/leased/done/poisoned bookkeeping with time-bounded leases.

    ``observer(event, record)`` is called on every state transition
    (``lease``, ``renew``, ``reclaim``, ``done``, ``requeue``,
    ``poison``) — the coordinator hangs its journal and progress
    reporting off it.

    The ready queue is a deque of ``(index, generation)`` entries plus a
    liveness map ``index -> generation``: removing a point just drops it
    from the map (O(1)) and the stale deque entry is skipped when it
    surfaces, instead of ``deque.remove``'s O(n) scan-and-shift per
    claim/complete/fail. Generations make re-queued points unambiguous —
    a point that is lazily discarded and later re-queued gets a fresh
    generation, so its abandoned earlier entry can never resurrect it
    out of order. Live entries keep the exact order the eager-removal
    implementation produced (lowest-index-first reclaim at the front,
    requeues at the back).

    Thread-safety: none of its own — the table assumes the caller
    serializes every call (the coordinator and service both drive it
    from under their RESP dispatch lock; the engine's serve path is
    single-threaded). Durability: none — this is the *in-memory* half
    of the state machine; the journal
    (:class:`~repro.sweep.dist.journal.SweepJournal`) or store
    (:class:`~repro.sweep.dist.store.SweepStore`) is the durable record,
    written by the observer callback / caller before acks go out.
    """

    def __init__(
        self,
        indices: Iterable[int],
        lease_seconds: float = 5.0,
        poison_workers: int = 2,
        poison_failures: int = 4,
        clock: Callable[[], float] = time.monotonic,
        observer: Optional[Callable[[str, PointRecord], None]] = None,
    ) -> None:
        if lease_seconds <= 0:
            raise SweepError(f"lease_seconds must be positive, got {lease_seconds}")
        if min(poison_workers, poison_failures) < 1:
            raise SweepError("poison thresholds must be >= 1")
        self.lease_seconds = lease_seconds
        self.poison_workers = poison_workers
        self.poison_failures = poison_failures
        self.clock = clock
        self.observer = observer
        self.records: dict[int, PointRecord] = {}
        self._queue: deque[tuple[int, int]] = deque()
        self._live: dict[int, int] = {}  # index -> generation of its live entry
        self._generation = 0
        for index in indices:
            if index in self.records:
                raise SweepError(f"duplicate point index {index}")
            self.records[index] = PointRecord(index)
            self._queue_append(index)
        self.reclaims = 0  # leases stolen back from expired workers

    # -- helpers -----------------------------------------------------------
    def _notify(self, event: str, record: PointRecord) -> None:
        if self.observer is not None:
            self.observer(event, record)

    def _queue_append(self, index: int, left: bool = False) -> None:
        self._generation += 1
        generation = self._generation
        self._live[index] = generation
        if left:
            self._queue.appendleft((index, generation))
        else:
            self._queue.append((index, generation))

    def _queue_discard(self, index: int) -> None:
        """O(1) removal: kill the liveness entry; the deque entry dies lazily."""
        self._live.pop(index, None)

    def _queue_compact(self) -> None:
        """Drop dead entries off the queue head so peeking sees live work."""
        queue = self._queue
        live = self._live
        while queue:
            index, generation = queue[0]
            if live.get(index) == generation:
                break
            queue.popleft()

    def _terminal(self, record: PointRecord) -> bool:
        return record.state in (PointState.DONE, PointState.POISONED)

    # -- queries -----------------------------------------------------------
    def done(self) -> bool:
        """Every point reached a terminal state (DONE or POISONED)."""
        return all(self._terminal(r) for r in self.records.values())

    def counts(self) -> dict[str, int]:
        out = {state.value: 0 for state in PointState}
        for record in self.records.values():
            out[record.state.value] += 1
        return out

    def remaining(self) -> int:
        return sum(1 for r in self.records.values() if not self._terminal(r))

    def poisoned(self) -> list[PointRecord]:
        return [
            self.records[i]
            for i in sorted(self.records)
            if self.records[i].state is PointState.POISONED
        ]

    # -- transitions -------------------------------------------------------
    def reclaim_expired(self) -> list[int]:
        """Steal back every expired lease, in index order.

        Reclaimed points go to the *front* of the queue (they are the
        oldest outstanding work), lowest index first, so recovery from a
        dead worker re-issues its points before fresh ones.
        """
        now = self.clock()
        expired = sorted(
            record.index
            for record in self.records.values()
            if record.state is PointState.LEASED and record.deadline <= now
        )
        for index in reversed(expired):  # appendleft reverses again
            record = self.records[index]
            record.state = PointState.QUEUED
            record.worker = None
            record.deadline = 0.0
            self._queue_append(index, left=True)
            self.reclaims += 1
            self._notify("reclaim", record)
        return expired

    def claim(self, worker: str) -> Optional[int]:
        """Lease the next claimable point to ``worker`` (None = nothing now).

        Prefers points that have *not* already failed on this worker
        (work-stealing another worker's poison draft does nobody any
        good); hands an already-failed one out only when nothing else is
        queued, relying on the total-failure poison cap to terminate.
        """
        self.reclaim_expired()
        self._queue_compact()
        live = self._live
        chosen: Optional[int] = None
        first_live: Optional[int] = None
        for index, generation in self._queue:
            if live.get(index) != generation:
                continue  # lazily-discarded entry
            if first_live is None:
                first_live = index
            if worker not in self.records[index].failed_workers:
                chosen = index
                break
        if chosen is None:
            chosen = first_live
        if chosen is None:
            return None
        self._queue_discard(chosen)
        record = self.records[chosen]
        record.state = PointState.LEASED
        record.worker = worker
        record.deadline = self.clock() + self.lease_seconds
        record.leases += 1
        self._notify("lease", record)
        return chosen

    def renew(self, worker: str, index: int) -> bool:
        """Heartbeat: extend the lease iff ``worker`` still holds it."""
        record = self.records.get(index)
        if record is None or record.state is not PointState.LEASED:
            return False
        if record.worker != worker:
            return False
        record.deadline = self.clock() + self.lease_seconds
        self._notify("renew", record)
        return True

    def complete(self, worker: str, index: int) -> bool:
        """Mark ``index`` DONE; False means a duplicate (already terminal).

        Accepts results from stale leases (expired, reclaimed, even
        currently re-leased to someone else): the computation is
        deterministic, so the first finisher's result stands and later
        ones are acknowledged and discarded.
        """
        record = self.records.get(index)
        if record is None:
            raise SweepError(f"unknown point index {index}")
        if self._terminal(record):
            return False
        if record.state is PointState.QUEUED:
            self._queue_discard(index)
        record.state = PointState.DONE
        record.worker = worker
        record.deadline = 0.0
        self._notify("done", record)
        return True

    def fail(self, worker: str, index: int, failure: FailureRecord) -> PointState:
        """Record a terminal worker-side failure; requeue or poison.

        Returns the point's resulting state (QUEUED = requeued for
        another worker, POISONED = quarantined). Failures reported for
        already-terminal points are ignored (stale workers).
        """
        record = self.records.get(index)
        if record is None:
            raise SweepError(f"unknown point index {index}")
        if self._terminal(record):
            return record.state
        record.failures.append(failure)
        record.worker = None
        record.deadline = 0.0
        if record.state is PointState.QUEUED:
            self._queue_discard(index)
        if (
            len(record.failed_workers) >= self.poison_workers
            or len(record.failures) >= self.poison_failures
        ):
            record.state = PointState.POISONED
            self._notify("poison", record)
        else:
            record.state = PointState.QUEUED
            self._queue_append(index)
            self._notify("requeue", record)
        return record.state

    def preload_done(self, index: int) -> None:
        """Mark a point DONE before serving (journal replay / cache hit)."""
        record = self.records.get(index)
        if record is None:
            raise SweepError(f"unknown point index {index}")
        if record.state is not PointState.QUEUED:
            raise SweepError(f"point {index} already {record.state.value}")
        self._queue_discard(index)
        record.state = PointState.DONE
        record.worker = "journal"
