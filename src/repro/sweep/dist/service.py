"""SweepService: a durable multi-tenant grid server + its client.

Where :class:`~repro.sweep.dist.coordinator.SweepCoordinator` serves
exactly one grid and exits when it drains, the service is long-lived
middleware (the "heavy traffic from many users" pattern of the coupled
AI-simulation workflows): tenants ``SUBMIT`` named grids over the same
RESP substrate workers already speak, the service leases points from
*all* active jobs fair-share, and every completed point is committed to
an SQLite store (:class:`~repro.sweep.dist.store.SweepStore`) **before**
its worker is acknowledged. The consequences:

* **SIGKILL-proof** — a service killed mid-multi-tenant-workload and
  restarted on the same store reloads every non-terminal job (point
  specs are persisted at submission), preloads the done points, and
  drains the remainder; acknowledged results are byte-identical across
  the crash because RESULTS replays the exact wire payloads recorded.
* **Idempotent submission** — jobs are keyed by grid content signature
  (:func:`~repro.sweep.dist.protocol.grid_signature`), so a tenant
  retrying SUBMIT across a service restart (or a duplicate SUBMIT from
  a confused script) lands on the existing job instead of forking it.
* **Fair-share leasing** — CLAIM rotates through active jobs round-robin
  so one tenant's thousand-point grid cannot starve another's ten-point
  grid; within a job the :class:`~repro.sweep.dist.lease.LeaseTable`
  rules are unchanged (time-bounded leases, work stealing, poison
  quarantine).
* **Tenant isolation** — CANCEL of grid A flips only A's job: its
  leases stop renewing (``:0``) and its in-flight DONEs are answered
  ``+STALE``; grid B's leases, results, and lifecycle are untouched.

* **Overload protection** (protocol v6) — SUBMIT passes admission
  control (per-tenant quotas via
  :class:`~repro.sweep.dist.admission.TenantQuota`) and may be refused
  with a typed ``-BUSY`` reply carrying a seeded-jittered
  ``retry_after_s``; the RESP substrate is bounded (connection cap,
  idle/write deadlines, a dispatch queue that sheds reads but never
  DONE acks); ``HEALTH`` reports readiness off the lock-free fast
  path; and under queue or store-latency pressure the service declares
  *brownout* — new SUBMITs refused, CLAIM/DONE still served to drain.

Workers are oblivious: the service speaks the coordinator's exact
command vocabulary towards them (HELLO advertises the
:data:`~repro.sweep.dist.protocol.MULTI_GRID` sentinel), so
``repro sweep --connect`` joins either interchangeably.

The job lifecycle is ``SUBMITTED -> RUNNING -> {DONE, CANCELLED,
POISONED}`` (see ARCHITECTURE.md for the full state machine); terminal
states are immutable and stay queryable forever.
"""

from __future__ import annotations

import json
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import (
    BackendUnavailableError,
    ServiceBusyError,
    SweepError,
    SweepStoreError,
    TransportError,
)
from repro.sweep.dist.admission import (
    DRAINING,
    AdmissionController,
    TenantQuota,
)
from repro.sweep.dist.fleetmetrics import EwmaRate, prometheus_exposition
from repro.sweep.dist.lease import LeaseTable, PointRecord, PointState
from repro.sweep.dist.protocol import (
    CANCELLED,
    DRAINED,
    MULTI_GRID,
    STALE,
    TERMINAL,
    Assignment,
    FailureRecord,
    GridInfo,
    dump_busy,
    dump_results_reply,
    dump_submission,
    grid_signature,
    load_result,
    load_results_reply,
    load_spans,
    load_submission,
    parse_busy,
    parse_hostport,
)
from repro.sweep.cache import point_fingerprint
from repro.sweep.dist.query import (
    ReaderPool,
    RetentionPolicy,
    divergences,
    query_fingerprint,
    run_gc,
    usage,
)
from repro.sweep.dist.store import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_POISONED,
    JOB_RUNNING,
    JOB_SUBMITTED,
    JOB_TERMINAL,
    SweepStore,
)
from repro.sweep.point import SweepPoint, derive_seed
from repro.telemetry.flight import FlightRecorder, maybe_dump
from repro.telemetry.log import get_logger
from repro.telemetry.tracing import Tracer
from repro.transport import resp
from repro.transport.redis_backend import MiniRedisConnection
from repro.transport.server import RespTcpServer
from repro.version import __version__

_log = get_logger("sweep.service")


@dataclass
class ServiceJob:
    """One live (non-terminal) job: its points + lease table + options."""

    grid: str
    name: str
    tenant: str
    points: dict[int, SweepPoint]
    table: LeaseTable
    state: str = JOB_SUBMITTED
    timeout: Optional[float] = None
    retries: int = 1
    capture: bool = True
    executed: int = 0
    replayed: int = 0
    requeues: int = 0

    @property
    def trace_id(self) -> str:
        return self.grid[:16]


class SweepService(RespTcpServer):
    """Multi-tenant, store-backed grid server on the RESP substrate."""

    #: Read-only commands the bounded dispatch queue may shed under
    #: pressure. Durability acks (DONE/FAIL), leasing (CLAIM/RENEW),
    #: lifecycle (SUBMIT/CANCEL/GC), and liveness (PING/HELLO) are never
    #: shed; SUBMIT overload is handled by admission control instead.
    SHEDDABLE = frozenset(
        {"STATUS", "METRICS", "QUERY", "USAGE", "JOBS", "SPANS", "RESULTS"}
    )

    def __init__(
        self,
        store: SweepStore | str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_seconds: float = 5.0,
        poison_workers: int = 2,
        poison_failures: int = 4,
        clock: Callable[[], float] = time.monotonic,
        wall: Callable[[], float] = time.time,
        flight_path: Optional[str | Path] = None,
        max_frame_bytes: Optional[int] = None,
        quota: Optional[TenantQuota] = None,
        max_connections: Optional[int] = 256,
        idle_timeout: Optional[float] = 300.0,
        write_timeout: Optional[float] = 30.0,
        dispatch_queue_limit: Optional[int] = 128,
        brownout_backlog: Optional[int] = None,
        brownout_store_latency_s: Optional[float] = 1.0,
        busy_retry_s: float = 1.0,
        seed: int = 0,
    ) -> None:
        if brownout_backlog is None and dispatch_queue_limit is not None:
            # Brown out before the queue is hard-full, so shedding reads
            # and refusing submissions kick in together, not after the
            # queue already drops everything sheddable.
            brownout_backlog = max(4, (3 * dispatch_queue_limit) // 4)
        super().__init__(
            host=host,
            port=port,
            name="sweep-service",
            max_frame_bytes=max_frame_bytes,
            max_connections=max_connections,
            idle_timeout=idle_timeout,
            write_timeout=write_timeout,
            dispatch_queue_limit=dispatch_queue_limit,
        )
        self.admission = AdmissionController(
            quota=quota,
            brownout_backlog=brownout_backlog,
            brownout_store_latency_s=brownout_store_latency_s,
            busy_retry_s=busy_retry_s,
            seed=seed,
            clock=clock,
        )
        if isinstance(store, (str, Path)):
            store = SweepStore(store, wall=wall)
            self._owns_store = True
        else:
            self._owns_store = False
        self.store = store
        self.lease_seconds = lease_seconds
        self.poison_workers = poison_workers
        self.poison_failures = poison_failures
        self.clock = clock
        self.wall = wall
        self.jobs: dict[str, ServiceJob] = {}
        #: Fair-share rotation order over *active* job signatures.
        self._ring: deque[str] = deque()
        self._stop_serving = False
        self.fleet = Tracer(clock=wall)
        self.flight = FlightRecorder(component="service", clock=wall)
        self.flight_path = Path(flight_path) if flight_path is not None else None
        self._rates: dict[str, EwmaRate] = {}
        self.workers: dict[str, dict] = {}
        self._spans_accepted = 0
        self.stale_grid = 0
        self.duplicates = 0
        #: Read-only connections beside the single writer: QUERY/USAGE
        #: (and GC's planning pass) answer from here, so an expensive
        #: query never queues between a worker's DONE and its fsync.
        self.reader = ReaderPool(self.store.path)
        self._restore()
        _log.info(
            "service.open",
            address=f"{self.host}:{self.port}",
            jobs=len(self.jobs),
            store=str(self.store.path),
        )

    # -- restart recovery ---------------------------------------------------
    def _restore(self) -> None:
        """Reload every non-terminal job from the store (crash restart)."""
        for row in self.store.resumable_jobs():
            grid = row["grid"]
            specs = self.store.load_specs(grid)
            points: dict[int, SweepPoint] = {}
            try:
                for idx, blob in specs:
                    if blob is not None:
                        points[idx] = pickle.loads(blob)
            except Exception as exc:
                _log.error("service.restore.unreadable", grid=grid[:16], error=str(exc))
                continue
            if len(points) != len(specs):
                continue  # journal-imported job without specs: not resumable
            job = self._activate(
                grid, row["name"], row.get("tenant", ""), points, state=row["state"]
            )
            for idx in self.store.done_payloads(grid):
                if idx in job.points:
                    job.table.preload_done(idx)
                    job.replayed += 1
            self.store.record_event(grid, None, "restore")
            self.flight.record("restore", grid=grid[:16], replayed=job.replayed)
            _log.info(
                "service.restore",
                grid=grid[:16],
                n_points=len(points),
                replayed=job.replayed,
            )
            self._maybe_finalize(job)

    def _activate(
        self,
        grid: str,
        name: str,
        tenant: str,
        points: dict[int, SweepPoint],
        state: str = JOB_SUBMITTED,
        timeout: Optional[float] = None,
        retries: int = 1,
        capture: bool = True,
    ) -> ServiceJob:
        job = ServiceJob(
            grid=grid,
            name=name,
            tenant=tenant,
            points=dict(points),
            table=LeaseTable(
                points.keys(),
                lease_seconds=self.lease_seconds,
                poison_workers=self.poison_workers,
                poison_failures=self.poison_failures,
                clock=self.clock,
                observer=lambda event, record, g=grid: self._on_transition(
                    g, event, record
                ),
            ),
            state=state,
            timeout=timeout,
            retries=retries,
            capture=capture,
        )
        self.jobs[grid] = job
        self._ring.append(grid)
        return job

    # -- lease-table plumbing ------------------------------------------------
    def _on_transition(self, grid: str, event: str, record: PointRecord) -> None:
        """Audit trail: lease transitions -> store events + flight ring."""
        if event in ("lease", "reclaim", "requeue"):
            self.store.record_event(grid, record.index, event, record.worker)
        self.flight.record(event, grid=grid[:16], index=record.index, worker=record.worker)
        if event == "reclaim":
            _log.warning("lease.reclaim", grid=grid[:16], index=record.index,
                         worker=record.worker)

    def _maybe_finalize(self, job: ServiceJob) -> None:
        """Move a drained job to its terminal state (immutable afterwards)."""
        if job.state in JOB_TERMINAL or not job.table.done():
            return
        poisoned = list(job.table.poisoned())
        job.state = JOB_POISONED if poisoned else JOB_DONE
        self.store.set_job_state(job.grid, job.state)
        try:
            self._ring.remove(job.grid)
        except ValueError:
            pass
        self.flight.record("job." + job.state, grid=job.grid[:16])
        _log.info(
            "job.terminal",
            grid=job.grid[:16],
            name=job.name,
            state=job.state,
            executed=job.executed,
            replayed=job.replayed,
        )

    def _mark_running(self, job: ServiceJob) -> None:
        if job.state == JOB_SUBMITTED:
            job.state = JOB_RUNNING
            self.store.set_job_state(job.grid, JOB_RUNNING)

    # -- tenant lifecycle ----------------------------------------------------
    def submit(
        self,
        name: str,
        points: Sequence[tuple[int, SweepPoint]],
        tenant: str = "",
        timeout: Optional[float] = None,
        retries: int = 1,
        capture: bool = True,
    ) -> dict:
        """Register one named grid; idempotent by content signature."""
        work = [(int(i), p) for i, p in points]
        if not work:
            raise SweepError("a submission needs at least one point")
        grid = grid_signature(work)
        existing = self.jobs.get(grid)
        if existing is not None:
            return {"grid": grid, "created": False, "state": existing.state,
                    "n_points": len(existing.points)}
        row = self.store.job(grid)
        if row is not None:
            # Known but not live: terminal, or restored-unresumable.
            return {"grid": grid, "created": False, "state": row["state"],
                    "n_points": row["n_points"]}
        tomb = self.store.tombstone(grid)
        if tomb is not None:
            # Collected by GC: the tombstone preserves idempotency, so a
            # retried SUBMIT short-circuits instead of re-running the grid.
            return {"grid": grid, "created": False, "state": "collected",
                    "n_points": tomb["n_points"]}
        # Admission control — only *new* work is gated; the idempotent
        # short-circuits above add no load and must stay refusal-free so
        # a tenant retrying across a refusal window converges.
        refusal = self._admission_check(tenant, len(work))
        if refusal is not None:
            _log.warning(
                "job.refused", tenant=tenant, name=name,
                reason=refusal["reason"], n_points=len(work),
            )
            self.flight.record(
                "submit.busy", tenant=tenant, reason=refusal["reason"]
            )
            raise ServiceBusyError(
                refusal["reason"], refusal.get("retry_after_s"), detail=refusal
            )
        specs = [
            (
                idx,
                pickle.dumps(point, protocol=pickle.HIGHEST_PROTOCOL),
                point_fingerprint(point.func_path, point.kwargs),
            )
            for idx, point in work
        ]
        t0 = time.perf_counter()
        self.store.submit_job(grid, name=name, points=specs, tenant=tenant)
        self.admission.observe_store_write(time.perf_counter() - t0)
        job = self._activate(
            grid, name, tenant, dict(work),
            timeout=timeout, retries=retries, capture=capture,
        )
        _log.info("job.submit", grid=grid[:16], name=name, tenant=tenant,
                  n_points=len(work))
        self.flight.record("submit", grid=grid[:16], name=name, n_points=len(work))
        return {"grid": grid, "created": True, "state": job.state,
                "n_points": len(work)}

    def cancel(self, grid: str) -> str:
        """Cancel one job; its leases are revoked, other jobs untouched."""
        job = self.jobs.get(grid)
        if job is None:
            row = self.store.job(grid)
            if row is None:
                raise TransportError(f"unknown grid {grid[:16]}")
            if row["state"] in (JOB_DONE, JOB_POISONED):
                return TERMINAL
            if row["state"] != JOB_CANCELLED:
                self.store.set_job_state(grid, JOB_CANCELLED)
            return CANCELLED
        if job.state in (JOB_DONE, JOB_POISONED):
            return TERMINAL
        if job.state != JOB_CANCELLED:
            job.state = JOB_CANCELLED
            self.store.set_job_state(grid, JOB_CANCELLED)
            try:
                self._ring.remove(grid)
            except ValueError:
                pass
            self.flight.record("cancel", grid=grid[:16], name=job.name)
            _log.info("job.cancel", grid=grid[:16], name=job.name)
        return CANCELLED

    # -- admission control ---------------------------------------------------
    def _tenant_usage(self, tenant: str) -> tuple[int, int]:
        """(live jobs, outstanding points) this tenant holds right now."""
        live_jobs = 0
        queued = 0
        for job in self.jobs.values():
            if job.tenant == tenant and job.state in (JOB_SUBMITTED, JOB_RUNNING):
                live_jobs += 1
                queued += job.table.remaining()
        return live_jobs, queued

    def _admission_check(self, tenant: str, n_points: int) -> Optional[dict]:
        """None to admit this submission; a ``-BUSY`` document otherwise."""
        if self._stop_serving:
            return self.admission.refuse("draining", scale=4.0, tenant=tenant)
        self._evaluate_brownout()
        live_jobs, queued = self._tenant_usage(tenant)
        store_bytes = None
        if self.admission.quota.max_store_bytes is not None:
            store_bytes = self.store.used_bytes()
        return self.admission.check_submit(
            tenant, live_jobs, queued, n_points, store_bytes
        )

    def _evaluate_brownout(self) -> None:
        """Advance the brownout machine; log+record transitions."""
        event = self.admission.evaluate(self.dispatch_backlog())
        if event == "enter":
            snap = self.admission.snapshot()
            _log.warning(
                "service.brownout.enter",
                cause=snap.get("brownout_cause"),
                backlog=self.dispatch_backlog(),
                store_latency_s=snap.get("store_write_latency_s"),
            )
            self.flight.record("brownout.enter", cause=snap.get("brownout_cause"))
        elif event == "exit":
            _log.info("service.brownout.exit")
            self.flight.record("brownout.exit")

    def _sheddable(self, name: str) -> bool:
        return name in self.SHEDDABLE

    def _busy_reply(self, name: str) -> bytes:
        doc = self.admission.refuse("dispatch-queue", command=name)
        return resp.encode_busy(dump_busy(**doc))

    # -- health --------------------------------------------------------------
    def _store_bytes_ro(self) -> Optional[int]:
        """Live store bytes via the reader pool (never queues on the writer)."""
        try:
            with self.reader.connection() as conn:
                page_size = conn.execute("PRAGMA page_size").fetchone()[0]
                page_count = conn.execute("PRAGMA page_count").fetchone()[0]
                freelist = conn.execute("PRAGMA freelist_count").fetchone()[0]
            return max(0, int(page_count) - int(freelist)) * int(page_size)
        except Exception:
            return None

    def health(self, lock_timeout: float = 0.05) -> dict:
        """The readiness document behind the ``HEALTH`` wire command.

        Deliberately answerable *without* the dispatch lock: counters and
        queue depths are read lock-free, and the per-tenant quota section
        is filled in only if the lock frees up within ``lock_timeout`` —
        under exactly the overload HEALTH exists to report, the probe
        still answers (marked ``"degraded": true``) instead of queueing
        behind the backlog it is trying to measure.
        """
        if self._stop_serving:
            state = DRAINING
        else:
            state = self.admission.state
        with self._conns_lock:
            connections = len(self._open_conns)
        store_bytes = self._store_bytes_ro()
        doc: dict[str, Any] = {
            "service": True,
            "state": state,
            "version": __version__,
            "store": {
                "path": str(self.store.path),
                "writable": self.store.is_open,
                "bytes": store_bytes,
                "write_latency_s": round(
                    self.admission.store_write_latency_s, 6
                ),
            },
            "reader_pool": {"live": not getattr(self.reader, "_closed", True)},
            "queues": {
                "dispatch_waiting": self.dispatch_backlog(),
                "dispatch_limit": self.dispatch_queue_limit,
                "shed_commands": self.shed_commands,
                "connections": connections,
                "max_connections": self.max_connections,
                "refused_connections": self.refused_connections,
                "idle_disconnects": self.idle_disconnects,
                "stalled_disconnects": self.stalled_disconnects,
            },
            "admission": self.admission.snapshot(),
        }
        locked = self._exec_lock.acquire(timeout=lock_timeout)
        if not locked:
            doc["degraded"] = True
            return doc
        try:
            quota = self.admission.quota
            tenants: dict[str, dict] = {}
            for job in self.jobs.values():
                if job.state not in (JOB_SUBMITTED, JOB_RUNNING):
                    continue
                entry = tenants.setdefault(
                    job.tenant, {"live_jobs": 0, "queued_points": 0}
                )
                entry["live_jobs"] += 1
                entry["queued_points"] += job.table.remaining()
            for entry in tenants.values():
                entry["headroom"] = quota.headroom(
                    entry["live_jobs"], entry["queued_points"], store_bytes
                )
            doc["tenants"] = dict(sorted(tenants.items()))
            doc["jobs"] = {
                "live": sum(
                    1
                    for j in self.jobs.values()
                    if j.state in (JOB_SUBMITTED, JOB_RUNNING)
                ),
                "known": len(self.jobs),
            }
        finally:
            self._exec_lock.release()
        return doc

    def _dispatch_unlocked(self, name: str, args: list) -> Optional[bytes]:
        if name != "HEALTH":
            return None
        if len(args) not in (0,):
            raise TransportError("wrong number of arguments for 'HEALTH'")
        return resp.encode_bulk(
            json.dumps(self.health(), sort_keys=True).encode()
        )

    # -- command dispatch ----------------------------------------------------
    def _dispatch(self, name: str, args: list) -> bytes:
        if name == "PING":
            return resp.encode_simple("PONG")
        if name == "HELLO":
            self._need(args, 2, "HELLO")
            return self._handle_hello(_text(args[0]), _text(args[1]))
        if name == "CLAIM":
            self._need(args, 1, "CLAIM")
            return self._handle_claim(_text(args[0]))
        if name == "RENEW":
            if len(args) not in (2, 3):
                raise TransportError("wrong number of arguments for 'RENEW'")
            grid = _text(args[2]) if len(args) == 3 else None
            return self._handle_renew(_text(args[0]), _index(args[1]), grid)
        if name == "DONE":
            self._need(args, 4, "DONE")
            return self._handle_done(
                _text(args[0]), _index(args[1]), _text(args[2]), bytes(args[3])
            )
        if name == "FAIL":
            self._need(args, 4, "FAIL")
            return self._handle_fail(
                _text(args[0]), _index(args[1]), _text(args[2]), _text(args[3])
            )
        if name == "SUBMIT":
            self._need(args, 1, "SUBMIT")
            return self._handle_submit(bytes(args[0]))
        if name == "CANCEL":
            self._need(args, 1, "CANCEL")
            return resp.encode_simple(self.cancel(_text(args[0])))
        if name == "RESULTS":
            self._need(args, 1, "RESULTS")
            return self._handle_results(_text(args[0]))
        if name == "JOBS":
            rows = [
                {k: v for k, v in row.items()}
                for row in self.store.jobs()
            ]
            return resp.encode_bulk(json.dumps(rows, sort_keys=True).encode())
        if name == "STATUS":
            if len(args) not in (0, 1):
                raise TransportError("wrong number of arguments for 'STATUS'")
            grid = _text(args[0]) if args else None
            return resp.encode_bulk(
                json.dumps(self.status(grid), sort_keys=True).encode()
            )
        if name == "METRICS":
            return resp.encode_bulk(prometheus_exposition(self.status()).encode())
        if name == "SPANS":
            self._need(args, 2, "SPANS")
            return self._handle_spans(_text(args[0]), _text(args[1]))
        if name == "QUERY":
            return self._handle_query(self._read_spec(args, "QUERY"))
        if name == "USAGE":
            return self._handle_usage(self._read_spec(args, "USAGE"))
        if name == "GC":
            return self._handle_gc(self._read_spec(args, "GC"))
        raise TransportError(f"unknown command '{name}'")

    # -- read commands (protocol v5) -----------------------------------------
    @staticmethod
    def _read_spec(args: list, command: str) -> dict:
        """The optional single-JSON-object argument of QUERY/USAGE/GC."""
        if len(args) not in (0, 1):
            raise TransportError(f"wrong number of arguments for '{command}'")
        if not args:
            return {}
        try:
            spec = json.loads(_text(args[0]) or "{}")
        except ValueError:
            raise TransportError(f"{command} spec must be JSON") from None
        if not isinstance(spec, dict):
            raise TransportError(f"{command} spec must be a JSON object")
        return spec

    def _handle_query(self, spec: dict) -> bytes:
        """Cross-job result lookup; reads only, answered from the pool."""
        rows = query_fingerprint(
            self.reader,
            fingerprint=spec.get("fingerprint"),
            name=spec.get("name"),
            tenant=spec.get("tenant"),
            limit=int(spec.get("limit", 1000)),
        )
        reply = {"rows": rows}
        if spec.get("divergences", True):
            reply["divergences"] = divergences(
                self.reader,
                fingerprint=spec.get("fingerprint"),
                name=spec.get("name"),
                tenant=spec.get("tenant"),
            )
        return resp.encode_bulk(json.dumps(reply, sort_keys=True).encode())

    def _handle_usage(self, spec: dict) -> bytes:
        report = usage(
            self.reader,
            tenant=spec.get("tenant"),
            since=spec.get("since"),
        )
        return resp.encode_bulk(json.dumps(report, sort_keys=True).encode())

    def _handle_gc(self, spec: dict) -> bytes:
        """Plan (always) and apply (unless dry_run) a retention pass.

        The apply path funnels through the store's single writer like
        every other mutation; afterwards any collected job is evicted
        from the in-memory job map and claim ring so workers stop
        seeing it immediately.
        """
        policy = RetentionPolicy(
            max_age_seconds=spec.get("max_age_seconds"),
            keep_latest=spec.get("keep_latest"),
            tenant=spec.get("tenant"),
            name=spec.get("name"),
            lease_grace=float(spec.get("lease_grace", 300.0)),
        )
        dry_run = bool(spec.get("dry_run", True))
        report = run_gc(
            self.store, policy, dry_run=dry_run, pool=self.reader,
            now=self.wall(),
        )
        for entry in report["collected"]:
            grid = entry["grid"]
            self.jobs.pop(grid, None)
            try:
                self._ring.remove(grid)
            except ValueError:
                pass
            self.flight.record("gc.collect", grid=grid[:16])
        if not dry_run:
            _log.info(
                "gc.pass",
                planned=len(report["planned"]),
                collected=len(report["collected"]),
                refused=len(report["refused"]),
            )
        return resp.encode_bulk(json.dumps(report, sort_keys=True).encode())

    def _handle_hello(self, worker: str, caps_json: str) -> bytes:
        try:
            caps = json.loads(caps_json) if caps_json else {}
        except ValueError:
            raise TransportError("HELLO capabilities must be JSON") from None
        version = str(caps.get("version", ""))
        if version and version != __version__:
            raise TransportError(
                f"version mismatch: service {__version__}, worker {version}"
            )
        entry = self.workers.setdefault(
            worker, {"claimed": 0, "completed": 0, "failed": 0, "track": f"worker {worker}"}
        )
        host, pid = caps.get("host"), caps.get("pid")
        if host is not None and pid is not None:
            entry["track"] = f"worker {host}:{pid}"
        remaining = sum(job.table.remaining() for job in self._active_jobs())
        info = GridInfo(
            grid=MULTI_GRID,
            n_points=sum(len(j.points) for j in self._active_jobs()),
            lease_seconds=self.lease_seconds,
            version=__version__,
            remaining=remaining,
            extra={"service": True, "jobs": len(list(self._active_jobs()))},
        )
        self.flight.record("hello", worker=worker, host=host, pid=pid)
        return resp.encode_bulk(json.dumps(info.as_dict(), sort_keys=True).encode())

    def _active_jobs(self):
        for grid in list(self._ring):
            job = self.jobs.get(grid)
            if job is not None and job.state in (JOB_SUBMITTED, JOB_RUNNING):
                yield job

    def _handle_claim(self, worker: str) -> bytes:
        if self._stop_serving:
            return resp.encode_simple(DRAINED)
        active = [j for j in self._active_jobs() if not j.table.done()]
        if not active:
            # Nothing claimable anywhere. DRAINED only when there are no
            # live jobs at all — a service with an empty moment is not
            # finished, so idle workers should poll, not leave.
            if not self.jobs or all(
                j.state in JOB_TERMINAL or j.state == JOB_CANCELLED
                for j in self.jobs.values()
            ):
                return resp.encode_simple(DRAINED)
            return resp.encode_bulk(None)
        # Fair share: try each active job once, starting at the ring head,
        # and rotate the ring so the *next* claim starts at the next tenant.
        for _ in range(len(self._ring)):
            grid = self._ring[0]
            self._ring.rotate(-1)
            job = self.jobs.get(grid)
            if job is None or job.state not in (JOB_SUBMITTED, JOB_RUNNING):
                continue
            index = job.table.claim(worker)
            if index is None:
                continue
            self._mark_running(job)
            entry = self.workers.setdefault(
                worker, {"claimed": 0, "completed": 0, "failed": 0}
            )
            entry["claimed"] += 1
            self._rates.setdefault(worker, EwmaRate()).mark_active(self.clock())
            assignment = Assignment(
                index=index,
                point=job.points[index],
                lease_seconds=self.lease_seconds,
                timeout=job.timeout,
                retries=job.retries,
                capture=job.capture,
                grid=job.grid,
                trace_id=job.trace_id,
                span_id=f"{index}/{job.table.records[index].leases}",
            )
            return resp.encode_bulk(assignment.to_bytes())
        return resp.encode_bulk(None)

    def _handle_renew(self, worker: str, index: int, grid: Optional[str]) -> bytes:
        if grid is not None:
            job = self.jobs.get(grid)
            if job is None or job.state == JOB_CANCELLED:
                return resp.encode_integer(0)
            return resp.encode_integer(int(job.table.renew(worker, index)))
        # v3 arity: no grid named. Unambiguous only if exactly one live
        # job has this (index, worker) lease — otherwise refuse renewal
        # (the worker finishes and resubmits; DONE still routes by grid).
        held = [
            job
            for job in self._active_jobs()
            if index in job.table.records
            and job.table.records[index].state is PointState.LEASED
            and job.table.records[index].worker == worker
        ]
        if len(held) != 1:
            return resp.encode_integer(0)
        return resp.encode_integer(int(held[0].table.renew(worker, index)))

    def _handle_done(self, worker: str, index: int, grid: str, blob: bytes) -> bytes:
        job = self.jobs.get(grid)
        if job is None or job.state == JOB_CANCELLED:
            # Unknown grid (another service's work, or a journal-era
            # leftover) or a cancelled tenant: acknowledge so the worker
            # moves on, record nothing.
            self.stale_grid += 1
            return resp.encode_simple(STALE)
        if index not in job.points:
            raise TransportError(f"unknown point index {index}")
        record = job.table.records[index]
        if record.state in (PointState.DONE, PointState.POISONED):
            self.duplicates += 1
            return resp.encode_simple("DUPLICATE")
        try:
            load_result(blob)  # validate before committing garbage
        except Exception as exc:
            raise TransportError(
                f"unreadable result for point {index}: {exc}"
            ) from None
        # Durability before acknowledgment: commit (fsync) to the store,
        # then ack — a +OK'd result survives a SIGKILL of this process.
        t0 = time.perf_counter()
        self.store.record_done(grid, index, blob, worker=worker)
        self.admission.observe_store_write(time.perf_counter() - t0)
        job.table.complete(worker, index)
        job.executed += 1
        entry = self.workers.setdefault(
            worker, {"claimed": 0, "completed": 0, "failed": 0}
        )
        entry["completed"] += 1
        self._rates.setdefault(worker, EwmaRate()).observe(self.clock())
        self._maybe_finalize(job)
        return resp.encode_simple("OK")

    def _handle_fail(self, worker: str, index: int, grid: str, info_json: str) -> bytes:
        job = self.jobs.get(grid)
        if job is None or job.state == JOB_CANCELLED:
            self.stale_grid += 1
            return resp.encode_simple(STALE)
        if index not in job.points:
            raise TransportError(f"unknown point index {index}")
        record = job.table.records[index]
        if record.state in (PointState.DONE, PointState.POISONED):
            self.duplicates += 1
            return resp.encode_simple("DUPLICATE")
        try:
            info = json.loads(info_json) if info_json else {}
        except ValueError:
            raise TransportError("FAIL payload must be JSON") from None
        failure = FailureRecord.from_dict({**info, "worker": worker})
        state = job.table.fail(worker, index, failure)
        entry = self.workers.setdefault(
            worker, {"claimed": 0, "completed": 0, "failed": 0}
        )
        entry["failed"] += 1
        if state is PointState.POISONED:
            failures = [f.as_dict() for f in job.table.records[index].failures]
            self.store.record_poisoned(grid, index, failures)
            self._maybe_finalize(job)
            return resp.encode_simple("POISONED")
        if state is PointState.QUEUED:
            job.requeues += 1
        return resp.encode_simple("REQUEUED")

    def _handle_submit(self, blob: bytes) -> bytes:
        payload = load_submission(blob)
        try:
            reply = self.submit(
                payload["name"],
                payload["points"],
                tenant=payload.get("tenant", ""),
                timeout=payload.get("timeout"),
                retries=int(payload.get("retries", 1)),
                capture=bool(payload.get("capture", True)),
            )
        except ServiceBusyError as exc:
            # Typed refusal, not -ERR: the request was valid, the service
            # is shedding load. Clients honor the hint and retry.
            doc = dict(exc.detail)
            doc.setdefault("reason", exc.reason)
            if exc.retry_after_s is not None:
                doc.setdefault("retry_after_s", exc.retry_after_s)
            return resp.encode_busy(dump_busy(**doc))
        return resp.encode_bulk(json.dumps(reply, sort_keys=True).encode())

    def _handle_results(self, grid: str) -> bytes:
        job = self.jobs.get(grid)
        if job is not None:
            state = job.state
        else:
            row = self.store.job(grid)
            if row is None:
                raise TransportError(f"unknown grid {grid[:16]}")
            state = row["state"]
        payloads = self.store.done_payloads(grid)
        poisoned = self.store.poisoned_points(grid)
        return resp.encode_bulk(dump_results_reply(state, payloads, poisoned))

    def _handle_spans(self, worker: str, spans_json: str) -> bytes:
        spans = load_spans(spans_json)
        track = self.workers.get(worker, {}).get("track") or f"worker {worker}"
        for span in spans:
            self.fleet.add_span(
                span["name"],
                span["start"],
                span["end"] - span["start"],
                category=span["category"],
                pid=track,
                tid=span["tid"],
                **span["args"],
            )
        self._spans_accepted += len(spans)
        return resp.encode_integer(len(spans))

    # -- status --------------------------------------------------------------
    def _job_status(self, job: ServiceJob) -> dict:
        return {
            "grid": job.grid,
            "name": job.name,
            "tenant": job.tenant,
            "state": job.state,
            "n_points": len(job.points),
            "remaining": job.table.remaining(),
            "counts": job.table.counts(),
            "reclaims": job.table.reclaims,
            "requeues": job.requeues,
            "executed": job.executed,
            "replayed": job.replayed,
            "poisoned_points": sorted(r.index for r in job.table.poisoned()),
        }

    def status(self, grid: Optional[str] = None) -> dict:
        """One job's status, or the aggregate (watch-compatible) document."""
        if grid:
            job = self.jobs.get(grid)
            if job is not None:
                return self._job_status(job)
            row = self.store.job(grid)
            if row is None:
                if self.store.tombstone(grid) is not None:
                    raise TransportError(f"grid {grid[:16]} collected by gc")
                raise TransportError(f"unknown grid {grid[:16]}")
            counts = self.store.point_counts(grid)
            return {
                "grid": grid,
                "name": row["name"],
                "tenant": row.get("tenant", ""),
                "state": row["state"],
                "n_points": row["n_points"],
                "remaining": row["n_points"] - counts.get("done", 0)
                - counts.get("poisoned", 0),
                "counts": counts,
                "poisoned_points": sorted(self.store.poisoned_points(grid)),
            }
        live = list(self.jobs.values())
        counts = {"queued": 0, "leased": 0, "done": 0, "poisoned": 0}
        poisoned_points: list[int] = []
        for job in live:
            for state, n in job.table.counts().items():
                counts[state] = counts.get(state, 0) + n
            poisoned_points.extend(r.index for r in job.table.poisoned())
        now = self.clock()
        lease_age: dict[str, float] = {}
        for job in live:
            for record in job.table.records.values():
                if record.state is PointState.LEASED and record.worker is not None:
                    age = max(
                        0.0, self.lease_seconds - (record.deadline - now)
                    )
                    lease_age[record.worker] = max(
                        lease_age.get(record.worker, 0.0), age
                    )
        rates = {
            worker: {
                "points_per_second": rate.current(now),
                "lease_age_seconds": lease_age.get(worker),
            }
            for worker, rate in self._rates.items()
        }
        return {
            "grid": MULTI_GRID,
            "service": True,
            "n_points": sum(len(j.points) for j in live),
            "remaining": sum(j.table.remaining() for j in live),
            "counts": counts,
            "reclaims": sum(j.table.reclaims for j in live),
            "requeues": sum(j.requeues for j in live),
            "executed": sum(j.executed for j in live),
            "replayed": sum(j.replayed for j in live),
            "poisoned_points": sorted(poisoned_points),
            "workers": {
                w: {k: v for k, v in entry.items() if k != "capabilities"}
                for w, entry in self.workers.items()
            },
            "rates": rates,
            "jobs": {
                job.grid: self._job_status(job) for job in live
            },
        }

    # -- serving --------------------------------------------------------------
    def request_stop(self) -> None:
        self._stop_serving = True

    def serve_forever(self, poll: float = 0.1) -> dict:
        """Run until :meth:`request_stop` (SIGTERM); returns a summary.

        Unlike the coordinator, draining all jobs does *not* end the
        loop — a service waits for the next tenant. The periodic tick
        reclaims expired leases across every live job so work stealing
        happens even when no worker is polling.
        """
        if not self.is_running:
            self.start()
        try:
            while not self._stop_serving:
                with self._exec_lock:
                    for job in list(self._active_jobs()):
                        job.table.reclaim_expired()
                        self._maybe_finalize(job)
                    self._evaluate_brownout()
                time.sleep(poll)
        except BaseException:
            maybe_dump(self.flight, self.flight_path, "crash")
            raise
        maybe_dump(self.flight, self.flight_path, "drain")
        summary = {
            "jobs": {g: j.state for g, j in self.jobs.items()},
            "stale_grid": self.stale_grid,
            "duplicates": self.duplicates,
            "spans": self._spans_accepted,
        }
        _log.info("service.closed", jobs=len(self.jobs))
        return summary

    def write_fleet_trace(self, path: str | Path) -> int:
        from repro.telemetry.chrome_trace import write_chrome_trace

        with self._exec_lock:
            return write_chrome_trace(path, tracer=self.fleet)

    def stop(self) -> None:
        self.request_stop()
        super().stop()
        self.reader.close()
        if self._owns_store:
            self.store.close()


class ServiceClient:
    """Tenant-side client: SUBMIT/STATUS/CANCEL/RESULTS/JOBS plus the
    v5 read commands QUERY/USAGE/GC, all over RESP.

    Every exchange is one short-lived request with a request-scoped
    timeout, retried across reconnects with seeded backoff — the client
    rides out a service SIGKILL + restart exactly like a worker does.
    All commands it issues are idempotent (SUBMIT by content signature,
    the rest read-only or terminal-state-absorbing), so blind retry is
    safe.

    Error replies split three ways: ``-BUSY`` (overload refusal —
    retryable; the server's ``retry_after_s`` hint is honored *instead
    of* the client's own backoff, and exhausting the budget raises
    :class:`~repro.errors.ServiceBusyError` carrying the refusal
    reason), connection loss (retryable with seeded backoff, as
    before), and ``-ERR`` (the request itself is wrong — fatal, raised
    immediately).
    """

    def __init__(
        self,
        address: str,
        op_timeout: float = 30.0,
        reconnect_budget: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.host, self.port = parse_hostport(address)
        self.address = address
        self.op_timeout = op_timeout
        self.reconnect_budget = reconnect_budget
        self._rng = np.random.default_rng(derive_seed(seed, "service-client", address))
        #: -BUSY refusals absorbed (retried) across this client's lifetime.
        self.busy_refusals = 0
        #: The most recent -BUSY document seen, for operator forensics.
        self.last_busy: Optional[dict] = None

    def _command(self, *parts) -> Any:
        deadline = time.monotonic() + self.reconnect_budget
        attempt = 0
        while True:
            conn = None
            try:
                conn = MiniRedisConnection(self.host, self.port, timeout=self.op_timeout)
                return conn.command(*parts)
            except BackendUnavailableError:
                if time.monotonic() >= deadline:
                    raise
                attempt += 1
                delay = min(0.1 * (2 ** min(attempt, 5)), 2.0)
                time.sleep(delay * (0.5 + float(self._rng.random())))
            except resp.ServerReplyError as exc:
                busy = parse_busy(str(exc))
                if busy is None:
                    raise  # -ERR: the request is wrong; retry cannot help
                self.busy_refusals += 1
                self.last_busy = busy
                now = time.monotonic()
                reason = str(busy.get("reason", "busy"))
                hint = busy.get("retry_after_s")
                if now >= deadline:
                    raise ServiceBusyError(
                        reason,
                        None if hint is None else float(hint),
                        detail=busy,
                    ) from None
                if hint is not None:
                    # Honor the server's seeded pacing over our own.
                    delay = max(0.0, float(hint))
                else:
                    attempt += 1
                    delay = min(0.1 * (2 ** min(attempt, 5)), 2.0)
                    delay *= 0.5 + float(self._rng.random())
                time.sleep(min(delay, max(0.0, deadline - now)))
            finally:
                if conn is not None:
                    conn.close()

    def ping(self) -> bool:
        return str(self._command("PING")) == "PONG"

    def health(self) -> dict:
        """The service's readiness document (see the HEALTH command)."""
        reply = self._command("HEALTH")
        doc = json.loads(reply) if reply else None
        if not isinstance(doc, dict):
            raise SweepError(f"malformed HEALTH reply from {self.address}")
        return doc

    def submit(
        self,
        name: str,
        points: Sequence[tuple[int, SweepPoint]],
        tenant: str = "",
        timeout: Optional[float] = None,
        retries: int = 1,
        capture: bool = True,
    ) -> dict:
        blob = dump_submission(
            name, points, tenant=tenant, timeout=timeout,
            retries=retries, capture=capture,
        )
        reply = self._command("SUBMIT", blob)
        return json.loads(reply) if reply else {}

    def status(self, grid: Optional[str] = None) -> dict:
        reply = (
            self._command("STATUS", grid) if grid else self._command("STATUS")
        )
        status = json.loads(reply) if reply else None
        if not isinstance(status, dict):
            raise SweepError(f"malformed STATUS reply from {self.address}")
        return status

    def cancel(self, grid: str) -> str:
        return str(self._command("CANCEL", grid))

    def jobs(self) -> list[dict]:
        reply = self._command("JOBS")
        rows = json.loads(reply) if reply else []
        return rows if isinstance(rows, list) else []

    def query(
        self,
        fingerprint: Optional[str] = None,
        name: Optional[str] = None,
        tenant: Optional[str] = None,
        limit: int = 1000,
        include_divergences: bool = True,
    ) -> dict:
        """Cross-job result lookup by point fingerprint (read-only)."""
        spec = {
            "fingerprint": fingerprint, "name": name, "tenant": tenant,
            "limit": limit, "divergences": include_divergences,
        }
        reply = self._command("QUERY", json.dumps(spec, sort_keys=True))
        return json.loads(reply) if reply else {"rows": []}

    def usage(
        self, tenant: Optional[str] = None, since: Optional[float] = None
    ) -> dict:
        """Per-tenant, per-day accounting report (read-only)."""
        spec = {"tenant": tenant, "since": since}
        reply = self._command("USAGE", json.dumps(spec, sort_keys=True))
        return json.loads(reply) if reply else {"tenants": [], "cache": []}

    def gc(
        self,
        max_age_seconds: Optional[float] = None,
        keep_latest: Optional[int] = None,
        tenant: Optional[str] = None,
        name: Optional[str] = None,
        lease_grace: float = 300.0,
        dry_run: bool = True,
    ) -> dict:
        """Run a retention pass; ``dry_run=True`` (default) only plans."""
        spec = {
            "max_age_seconds": max_age_seconds, "keep_latest": keep_latest,
            "tenant": tenant, "name": name, "lease_grace": lease_grace,
            "dry_run": dry_run,
        }
        reply = self._command("GC", json.dumps(spec, sort_keys=True))
        return json.loads(reply) if reply else {}

    def results(self, grid: str, decode: bool = True) -> dict:
        """The job's state + results: ``{"state", "results", "poisoned"}``.

        With ``decode`` the per-point wire payloads are unpickled into
        ``{index: (value, snapshot)}``; without it the raw payload bytes
        come back verbatim (byte-identity checks).
        """
        reply = self._command("RESULTS", grid)
        payload = load_results_reply(bytes(reply))
        out = {"state": payload["state"], "poisoned": payload.get("poisoned", {})}
        if decode:
            out["results"] = {
                idx: load_result(blob) for idx, blob in payload["payloads"].items()
            }
        else:
            out["results"] = dict(payload["payloads"])
        return out

    def wait(
        self,
        grid: str,
        poll: float = 0.25,
        timeout: Optional[float] = None,
        decode: bool = True,
    ) -> dict:
        """Block until the job reaches a terminal state; returns results."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(grid)
            if status.get("state") in JOB_TERMINAL:
                return self.results(grid, decode=decode)
            if deadline is not None and time.monotonic() >= deadline:
                raise SweepError(
                    f"job {grid[:16]} still {status.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll)


def run_service_process(
    address: str,
    store_path: str | Path,
    lease_seconds: float = 5.0,
    flight_path: Optional[str] = None,
    poll: float = 0.1,
    max_frame_bytes: Optional[int] = None,
    quota: Optional[TenantQuota] = None,
    max_connections: Optional[int] = 256,
    idle_timeout: Optional[float] = 300.0,
    write_timeout: Optional[float] = 30.0,
    dispatch_queue_limit: Optional[int] = 128,
    busy_retry_s: float = 1.0,
    seed: int = 0,
) -> int:
    """Entry point for ``repro sweep --service`` (standalone service).

    Installs a SIGTERM handler for graceful drain; SIGKILL is the crash
    path the store exists for. Returns 0 on clean shutdown, 1 when the
    store is unusable.
    """
    import signal
    import sys

    host, port = parse_hostport(address)
    try:
        service = SweepService(
            store_path,
            host=host,
            port=port,
            lease_seconds=lease_seconds,
            flight_path=flight_path,
            max_frame_bytes=max_frame_bytes,
            quota=quota,
            max_connections=max_connections,
            idle_timeout=idle_timeout,
            write_timeout=write_timeout,
            dispatch_queue_limit=dispatch_queue_limit,
            busy_retry_s=busy_retry_s,
            seed=seed,
        )
    except SweepStoreError as exc:
        print(f"sweep service: {exc}", file=sys.stderr)
        return 1
    previous = None
    if hasattr(signal, "SIGTERM"):
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: service.request_stop()
        )
    print(
        f"sweep service on {service.host}:{service.port} "
        f"(store {service.store.path}, {len(service.jobs)} jobs restored)",
        file=sys.stderr,
    )
    try:
        service.serve_forever(poll=poll)
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        service.stop()
    return 0


def _text(arg: Any) -> str:
    if isinstance(arg, (bytes, bytearray)):
        return bytes(arg).decode("utf-8", "replace")
    return str(arg)


def _index(arg: Any) -> int:
    try:
        return int(_text(arg))
    except ValueError:
        raise TransportError(f"bad point index {arg!r}") from None


__all__ = [
    "ServiceClient",
    "ServiceJob",
    "SweepService",
    "TenantQuota",
    "run_service_process",
]
