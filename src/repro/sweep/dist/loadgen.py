"""Seeded open-loop load generator for the sweep service.

The "proof under load" half of the overload-protection layer: drives N
deliberately *misbehaving* tenants against a running service so tests
and the CI overload drill can assert the service sheds deterministically
instead of dying quietly. Three behaviors, all bounded by one wall-clock
deadline:

* **flood tenants** — each submits a stream of distinct grids at a fixed
  open-loop interval (arrivals do not wait for the system; that is what
  makes overload overload). A ``-BUSY`` refusal is recorded together
  with its ``retry_after_s`` hint and retried with the server's pacing
  until the per-grid budget runs out — exactly how a well-behaved
  client under quota pressure behaves, so the recorded hint stream *is*
  the assertion surface.
* **slow readers** — open a raw connection, pump STATUS commands, and
  never read a byte of reply (the slow-loris shape): the kernel buffers
  fill, the service's write deadline fires, and the generator records
  the disconnect it was promised.
* **half-open connects** — connect, send a torn frame prefix, and hold
  the socket silently: idle-deadline fodder. Routed through
  :class:`~repro.faults.netproxy.ChaosProxy` in the CI drill, these are
  indistinguishable from real half-open network failures.

Everything is seeded (:func:`~repro.sweep.point.derive_seed`): grid
contents are a pure function of ``(seed, tenant, grid index)`` — so the
drill can compute every admitted job's expected results byte-identically
without talking to the service — and all generator-side pacing jitter
comes from per-thread RNGs.

No new dependencies: stdlib + numpy, raw sockets beside the existing
RESP helpers.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import threading
import time
from dataclasses import asdict, dataclass
from typing import Any, Optional

import numpy as np

from repro.errors import TransportError
from repro.sweep.dist.protocol import (
    dump_result,
    dump_submission,
    grid_signature,
    parse_busy,
    parse_hostport,
)
from repro.sweep.point import SweepPoint, derive_seed
from repro.transport import resp
from repro.transport.redis_backend import MiniRedisConnection

#: A torn RESP frame: array header + first bulk announced but never
#: delivered — the half-open connect's opening (and only) words.
_TORN_FRAME = b"*2\r\n$6\r\nSUB"


def loadgen_point(x: float, scale: float = 1.0) -> float:
    """The unit of loadgen work: trivial, deterministic, importable."""
    return float(x) * float(scale)


def _canonical_point_func():
    """``loadgen_point`` resolved through its importable module path.

    Under ``python -m repro.sweep.dist.loadgen`` this module executes as
    ``__main__``, and a point pickled with the local function would name
    ``__main__.loadgen_point`` — unresolvable in the service process.
    """
    import importlib

    return importlib.import_module("repro.sweep.dist.loadgen").loadgen_point


def tenant_grid(
    seed: int, tenant: int, grid_index: int, n_points: int
) -> list[tuple[int, SweepPoint]]:
    """The ``grid_index``-th grid of flood tenant ``tenant`` — pure.

    Point kwargs are drawn from an RNG seeded by (seed, tenant, grid),
    so two runs with the same seed flood with byte-identical grids and
    the drill can recompute any admitted grid's expected results
    offline.
    """
    rng = np.random.default_rng(derive_seed(seed, "loadgen-grid", tenant, grid_index))
    func = _canonical_point_func()
    points = []
    for i in range(n_points):
        x = round(float(rng.uniform(-1000.0, 1000.0)), 6)
        points.append((i, SweepPoint(func=func, kwargs={"x": x, "scale": 2.0})))
    return points


def grid_expected(points: list[tuple[int, SweepPoint]]) -> dict[int, bytes]:
    """The exact DONE payload bytes a capture-less worker ships per point."""
    return {
        i: dump_result(loadgen_point(**dict(p.kwargs)), None) for i, p in points
    }


@dataclass(frozen=True)
class LoadSpec:
    """One load run: who misbehaves, how hard, for how long."""

    tenants: int = 3  # flood tenants
    grids_per_tenant: int = 5
    points_per_grid: int = 4
    submit_interval_s: float = 0.0  # open-loop arrival spacing per tenant
    grid_budget_s: float = 5.0  # retry-on-BUSY budget per grid
    slow_readers: int = 0
    half_open: int = 0
    duration_s: float = 30.0  # hard wall-clock cap on the whole run
    seed: int = 0
    op_timeout: float = 5.0
    capture: bool = False  # capture-less results are byte-predictable

    def as_dict(self) -> dict:
        return asdict(self)


class _Stats:
    """Thread-safe counters for one run."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.attempted = 0
        self.admitted = 0
        self.refused = 0
        self.fatal = 0
        self.refusal_reasons: dict[str, int] = {}
        self.retry_hints: list[float] = []
        self.admitted_grids: dict[str, str] = {}  # signature -> job name
        self.slow_reader_connects = 0
        self.slow_reader_disconnects = 0
        self.slow_reader_bytes = 0
        self.half_open_connects = 0
        self.half_open_closed = 0
        self.errors: list[str] = []


def _submit_once(
    host: str, port: int, blob: bytes, op_timeout: float
) -> tuple[str, Optional[dict]]:
    """One raw SUBMIT: ("admitted"|"busy"|"down", busy-doc)."""
    conn = None
    try:
        conn = MiniRedisConnection(host, port, timeout=op_timeout)
        conn.command("SUBMIT", blob)
        return "admitted", None
    except resp.ServerReplyError as exc:
        busy = parse_busy(str(exc))
        if busy is None:
            raise
        return "busy", busy
    except (TransportError, OSError):
        return "down", None
    finally:
        if conn is not None:
            conn.close()


def _flood_tenant(
    spec: LoadSpec,
    tenant: int,
    host: str,
    port: int,
    deadline: float,
    stats: _Stats,
) -> None:
    rng = np.random.default_rng(derive_seed(spec.seed, "loadgen-flood", tenant))
    for g in range(spec.grids_per_tenant):
        if time.monotonic() >= deadline:
            return
        points = tenant_grid(spec.seed, tenant, g, spec.points_per_grid)
        signature = grid_signature(points)
        name = f"flood-t{tenant}-g{g}"
        blob = dump_submission(
            name,
            points,
            tenant=f"tenant-{tenant}",
            capture=spec.capture,
        )
        grid_deadline = min(deadline, time.monotonic() + spec.grid_budget_s)
        while True:
            with stats.lock:
                stats.attempted += 1
            try:
                outcome, busy = _submit_once(host, port, blob, spec.op_timeout)
            except TransportError as exc:  # -ERR: a generator bug, record it
                with stats.lock:
                    stats.fatal += 1
                    stats.errors.append(str(exc))
                break
            if outcome == "admitted":
                with stats.lock:
                    stats.admitted += 1
                    stats.admitted_grids[signature] = name
                break
            if outcome == "busy":
                hint = busy.get("retry_after_s")
                reason = str(busy.get("reason", "busy"))
                with stats.lock:
                    stats.refused += 1
                    stats.refusal_reasons[reason] = (
                        stats.refusal_reasons.get(reason, 0) + 1
                    )
                    if hint is not None:
                        stats.retry_hints.append(float(hint))
                pause = (
                    float(hint)
                    if hint is not None
                    else 0.1 * (0.5 + float(rng.random()))
                )
            else:  # down: the service is restarting (the drill SIGKILLs it)
                pause = 0.2 * (0.5 + float(rng.random()))
            if time.monotonic() + pause >= grid_deadline:
                break
            time.sleep(pause)
        if spec.submit_interval_s > 0:
            time.sleep(spec.submit_interval_s)


def _slow_reader(
    spec: LoadSpec, index: int, host: str, port: int, deadline: float, stats: _Stats
) -> None:
    """Send STATUS forever, read nothing: the write-deadline's prey."""
    command = resp.encode_command("STATUS")
    try:
        sock = socket.create_connection((host, port), timeout=spec.op_timeout)
    except OSError:
        return
    with stats.lock:
        stats.slow_reader_connects += 1
    sent = 0
    try:
        sock.settimeout(0.5)
        while time.monotonic() < deadline:
            try:
                sock.sendall(command)
                sent += len(command)
            except OSError:
                # The service cut us off (stalled write / idle deadline):
                # exactly the defense this client exists to trigger.
                with stats.lock:
                    stats.slow_reader_disconnects += 1
                return
            time.sleep(0.01)
    finally:
        with stats.lock:
            stats.slow_reader_bytes += sent
        try:
            sock.close()
        except OSError:
            pass


def _half_open(
    spec: LoadSpec, index: int, host: str, port: int, deadline: float, stats: _Stats
) -> None:
    """Connect, send a torn frame, go silent: the idle-deadline's prey."""
    try:
        sock = socket.create_connection((host, port), timeout=spec.op_timeout)
    except OSError:
        return
    with stats.lock:
        stats.half_open_connects += 1
    try:
        sock.sendall(_TORN_FRAME)
        sock.settimeout(0.5)
        while time.monotonic() < deadline:
            try:
                data = sock.recv(4096)
            except socket.timeout:
                continue
            except OSError:
                break
            if not data:  # server closed on us: idle deadline fired
                with stats.lock:
                    stats.half_open_closed += 1
                return
    except OSError:
        with stats.lock:
            stats.half_open_closed += 1
    finally:
        try:
            sock.close()
        except OSError:
            pass


def run_load(address: str, spec: Optional[LoadSpec] = None) -> dict:
    """Run one load campaign against ``HOST:PORT``; returns JSON-able stats.

    Blocks until every flood tenant finished its grids (or the
    ``duration_s`` deadline passed) and the slow-reader/half-open
    threads wound down. Never raises on service overload or restarts —
    misbehavior tolerance is the point; only generator bugs surface.
    """
    spec = spec or LoadSpec()
    host, port = parse_hostport(address)
    stats = _Stats()
    deadline = time.monotonic() + spec.duration_s
    started = time.monotonic()
    threads: list[threading.Thread] = []
    for t in range(spec.tenants):
        threads.append(
            threading.Thread(
                target=_flood_tenant,
                args=(spec, t, host, port, deadline, stats),
                name=f"loadgen-flood-{t}",
                daemon=True,
            )
        )
    for i in range(spec.slow_readers):
        threads.append(
            threading.Thread(
                target=_slow_reader,
                args=(spec, i, host, port, deadline, stats),
                name=f"loadgen-slow-{i}",
                daemon=True,
            )
        )
    for i in range(spec.half_open):
        threads.append(
            threading.Thread(
                target=_half_open,
                args=(spec, i, host, port, deadline, stats),
                name=f"loadgen-halfopen-{i}",
                daemon=True,
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=spec.duration_s + spec.op_timeout + 5.0)
    hints = stats.retry_hints
    with stats.lock:
        return {
            "spec": spec.as_dict(),
            "elapsed_s": round(time.monotonic() - started, 3),
            "submits": {
                "attempted": stats.attempted,
                "admitted": stats.admitted,
                "refused": stats.refused,
                "fatal": stats.fatal,
            },
            "refusal_reasons": dict(sorted(stats.refusal_reasons.items())),
            "retry_hints": {
                "count": len(hints),
                "min": round(min(hints), 4) if hints else None,
                "max": round(max(hints), 4) if hints else None,
                "mean": round(sum(hints) / len(hints), 4) if hints else None,
            },
            "admitted_grids": dict(sorted(stats.admitted_grids.items())),
            "slow_readers": {
                "connects": stats.slow_reader_connects,
                "disconnects": stats.slow_reader_disconnects,
                "bytes_sent": stats.slow_reader_bytes,
            },
            "half_open": {
                "connects": stats.half_open_connects,
                "closed_by_server": stats.half_open_closed,
            },
            "errors": list(stats.errors),
        }


def main(argv: Optional[list[str]] = None) -> int:
    """``python -m repro.sweep.dist.loadgen HOST:PORT [...]``."""
    parser = argparse.ArgumentParser(
        prog="loadgen", description="seeded open-loop sweep-service load generator"
    )
    parser.add_argument("address", help="service HOST:PORT")
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--grids", type=int, default=5)
    parser.add_argument("--points", type=int, default=4)
    parser.add_argument("--interval", type=float, default=0.0)
    parser.add_argument("--grid-budget", type=float, default=5.0)
    parser.add_argument("--slow-readers", type=int, default=0)
    parser.add_argument("--half-open", type=int, default=0)
    parser.add_argument("--duration", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=None, help="write stats JSON here (default: stdout)"
    )
    args = parser.parse_args(argv)
    spec = LoadSpec(
        tenants=args.tenants,
        grids_per_tenant=args.grids,
        points_per_grid=args.points,
        submit_interval_s=args.interval,
        grid_budget_s=args.grid_budget,
        slow_readers=args.slow_readers,
        half_open=args.half_open,
        duration_s=args.duration,
        seed=args.seed,
    )
    stats = run_load(args.address, spec)
    text = json.dumps(stats, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 0 if not stats["errors"] else 1


if __name__ == "__main__":  # pragma: no cover - exercised by the CI drill
    sys.exit(main())


__all__ = [
    "LoadSpec",
    "grid_expected",
    "loadgen_point",
    "main",
    "run_load",
    "tenant_grid",
]
