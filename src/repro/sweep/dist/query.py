"""Read-side query layer over the sweep-service store.

:mod:`repro.sweep.dist.store` is deliberately write-mostly: every
mutation funnels through one writer thread whose queue discipline is
what makes the durability proofs tractable. This module is the other
half — the queries a long-lived multi-tenant service accumulates value
for:

* **cross-job result queries** keyed by *point fingerprint* (the
  version-independent cell identity of
  :func:`repro.sweep.cache.point_fingerprint`): "every result ever
  recorded for this canonical kwargs fingerprint, across jobs, tenants,
  and ``repro`` versions" — plus version-divergence detection that
  flags fingerprints whose result *values* differ between code versions
  (the canary for a behaviour change that forgot its version bump);
* **per-tenant usage accounting** aggregated from the ``events`` and
  ``history`` tables: points executed, wall-seconds leased, retries,
  poison counts, and cache-hit ratios per tenant per day;
* a **retention/GC policy engine**: age- and count-based selection over
  *terminal* jobs only, a dry-run mode whose plan is exactly what the
  real run collects, and tombstones so idempotent re-submission still
  short-circuits after the bulk rows are gone.

Concurrency model — **readers beside the single writer**:

Everything here reads through a :class:`ReaderPool` of *read-only*
SQLite connections (URI ``mode=ro``). Under WAL, readers never block
the writer and never see a half-committed transaction — each query gets
the last committed snapshot. That is what lets the service answer
QUERY/USAGE from its request threads without enqueuing onto the writer
thread (where a read would wait behind result fsyncs), and what lets
the CLI interrogate a *live* service's store file from another process.
The one mutating operation — actually collecting a job — is explicitly
NOT here: :func:`run_gc` plans through the pool, then hands each doomed
grid to :meth:`SweepStore.collect_job` on the writer thread, which
re-checks every refusal condition under the write lock. The plan is an
intention; the writer is the judge.

Library use::

    from repro.sweep.dist.query import ReaderPool, query_fingerprint

    with ReaderPool(store_path) as pool:
        rows = query_fingerprint(pool, fp)

Thread-safety: :class:`ReaderPool` is safe to share across threads
(checkouts are lock-protected and overflow opens a throwaway
connection); the module-level functions are pure reads and inherit that
safety. Durability: none needed — nothing here writes.
"""

from __future__ import annotations

import hashlib
import pickle
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.errors import SweepStoreError
from repro.sweep.cache import fingerprint as _canonical_fingerprint
from repro.sweep.dist.store import JOB_TERMINAL, SweepStore

__all__ = [
    "ReaderPool",
    "RetentionPolicy",
    "divergences",
    "gc_plan",
    "query_fingerprint",
    "run_gc",
    "usage",
]


class ReaderPool:
    """A bounded pool of read-only SQLite connections to one store file.

    The second half of the store's concurrency model: the
    :class:`~repro.sweep.dist.store.SweepStore` writer thread owns the
    only read-write connection, and every query-layer read goes through
    here instead — read-only (URI ``mode=ro``: a pool can never create,
    recover, or migrate a store) and WAL-snapshot-isolated, so reads
    neither block the writer nor queue behind its fsyncs.

    Thread-safe: connections are checked out under a lock; when the pool
    is empty a temporary connection is opened and closed after use, so
    checkout never blocks on other readers. Connections are only
    returned to the pool on clean release; a reader that raised gets its
    connection closed (SQLite read transactions are otherwise easy to
    leak open, pinning WAL frames forever).
    """

    def __init__(self, path: str | Path, size: int = 4, timeout: float = 5.0) -> None:
        self.path = Path(path)
        self.size = max(1, int(size))
        self.timeout = float(timeout)
        self._idle: list[sqlite3.Connection] = []
        self._lock = threading.Lock()
        self._closed = False
        # Open one eagerly so a missing/garbage file fails at pool
        # construction, not on the first query.
        conn = self._open()
        with self._lock:
            self._idle.append(conn)

    def _open(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(
                f"file:{self.path}?mode=ro",
                uri=True,
                timeout=self.timeout,
                check_same_thread=False,
            )
        except sqlite3.Error as exc:
            raise SweepStoreError(
                f"cannot open store {self.path} read-only: {exc}"
            ) from exc
        conn.row_factory = sqlite3.Row
        try:
            conn.execute("SELECT 1 FROM meta LIMIT 1").fetchone()
        except sqlite3.Error as exc:
            conn.close()
            raise SweepStoreError(
                f"{self.path} is not a sweep store: {exc}"
            ) from exc
        return conn

    @contextmanager
    def connection(self) -> Iterator[sqlite3.Connection]:
        """Check a read-only connection out of the pool for one query."""
        if self._closed:
            raise SweepStoreError(f"reader pool for {self.path} is closed")
        with self._lock:
            conn = self._idle.pop() if self._idle else None
        if conn is None:
            conn = self._open()
        try:
            yield conn
        except BaseException:
            conn.close()
            raise
        else:
            with self._lock:
                if not self._closed and len(self._idle) < self.size:
                    self._idle.append(conn)
                    conn = None
            if conn is not None:
                conn.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()

    def __enter__(self) -> "ReaderPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# -- cross-job result queries -------------------------------------------------
def _value_digest(payload: Optional[bytes]) -> Optional[str]:
    """A stable digest of the *value* inside one result wire payload.

    Divergence detection must compare computations, not envelopes: the
    raw payload bytes embed the wire-format tag and the telemetry
    snapshot, both of which legitimately change between versions. So
    the value is unpickled out and digested via the cache's canonical
    rendering (:func:`repro.sweep.cache.fingerprint` — the same
    function that makes cache keys portable across processes), falling
    back to a digest of the value's own pickle for exotic values the
    canonical renderer refuses. None when the payload is missing or
    unreadable.
    """
    if payload is None:
        return None
    try:
        decoded = pickle.loads(payload)
    except Exception:
        return None
    value = decoded.get("value") if isinstance(decoded, dict) else decoded
    try:
        material = _canonical_fingerprint(value)
    except Exception:
        try:
            material = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL).hex()
        except Exception:
            return None
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def query_fingerprint(
    pool: ReaderPool,
    fingerprint: Optional[str] = None,
    name: Optional[str] = None,
    tenant: Optional[str] = None,
    limit: int = 1000,
) -> list[dict]:
    """All recorded results matching a fingerprint (and/or job filters).

    One row per point row in the store, across every job that ever
    contained the cell — different tenants resubmitting the same grid,
    different code versions recomputing it, journal imports. Rows are
    ordered newest job first, then by index. Each carries::

        {"fingerprint", "grid", "idx", "state", "worker", "job_name",
         "tenant", "version", "job_state", "updated", "value_digest"}

    ``value_digest`` (see :func:`_value_digest`) is only present for
    ``done`` points; comparing it across rows with equal fingerprints
    but different ``version`` is exactly the divergence check.
    """
    clauses = ["p.fingerprint IS NOT NULL"]
    params: list[Any] = []
    if fingerprint:
        # Accept an unambiguous prefix — fingerprints are long hex
        # strings nobody should have to paste in full.
        clauses.append("p.fingerprint LIKE ?")
        params.append(f"{fingerprint}%")
    if name:
        clauses.append("j.name = ?")
        params.append(name)
    if tenant:
        clauses.append("j.tenant = ?")
        params.append(tenant)
    sql = (
        "SELECT p.fingerprint AS fingerprint, p.grid AS grid, p.idx AS idx,"
        " p.state AS state, p.worker AS worker, p.payload AS payload,"
        " p.updated AS updated, j.name AS job_name, j.tenant AS tenant,"
        " j.version AS version, j.state AS job_state"
        " FROM points p JOIN jobs j ON j.grid = p.grid"
        f" WHERE {' AND '.join(clauses)}"
        " ORDER BY j.created DESC, p.idx LIMIT ?"
    )
    params.append(int(limit))
    with pool.connection() as conn:
        rows = conn.execute(sql, params).fetchall()
    out = []
    for row in rows:
        record = {
            "fingerprint": row["fingerprint"],
            "grid": row["grid"],
            "idx": int(row["idx"]),
            "state": row["state"],
            "worker": row["worker"],
            "job_name": row["job_name"],
            "tenant": row["tenant"],
            "version": row["version"],
            "job_state": row["job_state"],
            "updated": row["updated"],
        }
        if row["state"] == "done":
            record["value_digest"] = _value_digest(row["payload"])
        out.append(record)
    return out


def divergences(
    pool: ReaderPool,
    fingerprint: Optional[str] = None,
    name: Optional[str] = None,
    tenant: Optional[str] = None,
    limit: int = 100000,
) -> list[dict]:
    """Fingerprints whose done results *differ between code versions*.

    The determinism contract says a cell's value is a pure function of
    its kwargs; a version bump is *allowed* to change it (that is why
    cache keys embed the version), but silently — same version, or an
    unbumped behaviour change — it must not. This query surfaces every
    fingerprint with at least two distinct ``(version, value_digest)``
    behaviours where the digests disagree::

        {"fingerprint", "versions": {version: [digest, ...]},
         "n_results", "divergent_within_version"}

    ``divergent_within_version`` is the alarming half: two different
    digests under the *same* version means nondeterminism or a stale
    unbumped binary, not an intentional change.
    """
    rows = query_fingerprint(
        pool, fingerprint=fingerprint, name=name, tenant=tenant, limit=limit
    )
    by_fp: dict[str, list[dict]] = {}
    for row in rows:
        if row.get("value_digest"):
            by_fp.setdefault(row["fingerprint"], []).append(row)
    out = []
    for fp, results in sorted(by_fp.items()):
        digests = {r["value_digest"] for r in results}
        if len(digests) < 2:
            continue
        versions: dict[str, list[str]] = {}
        for r in results:
            bucket = versions.setdefault(r["version"] or "?", [])
            if r["value_digest"] not in bucket:
                bucket.append(r["value_digest"])
        out.append(
            {
                "fingerprint": fp,
                "versions": {v: sorted(d) for v, d in versions.items()},
                "n_results": len(results),
                "divergent_within_version": any(
                    len(d) > 1 for d in versions.values()
                ),
            }
        )
    return out


# -- usage accounting ---------------------------------------------------------
def _day(ts: float) -> str:
    return time.strftime("%Y-%m-%d", time.gmtime(float(ts)))


def usage(
    pool: ReaderPool,
    tenant: Optional[str] = None,
    since: Optional[float] = None,
) -> dict:
    """Per-tenant per-day usage accounting from ``events`` + ``history``.

    Returns ``{"tenants": [...], "cache": [...]}``. Each tenant row is
    one ``(tenant, day)`` bucket (UTC days, newest last)::

        {"tenant", "day", "points_done", "leases", "wall_seconds",
         "retries", "reclaims", "poisoned", "grids"}

    ``wall_seconds`` is real leased wall time: for every point, each
    ``lease`` event is paired with that point's next ``done`` /
    ``reclaim`` / ``requeue`` / ``poisoned`` event and the interval
    lengths are summed into the day the lease *started* (a lease still
    dangling at query time contributes nothing — billing only settled
    work keeps repeated queries monotone). ``retries`` counts
    ``requeue`` events (failures re-queued below the poison
    thresholds).

    Cache rows aggregate the (store-wide, tenant-less) ``history``
    table per day: ``{"day", "hits", "misses", "hit_rate"}`` with the
    ratio weighted by lookups, not averaged over runs.

    Jobs already garbage-collected have no events left by design —
    usage reports live+terminal jobs; collect after you account.
    """
    params: list[Any] = []
    clauses = ["1=1"]
    if tenant is not None:
        clauses.append("j.tenant = ?")
        params.append(tenant)
    if since is not None:
        clauses.append("e.time >= ?")
        params.append(float(since))
    sql = (
        "SELECT e.grid AS grid, e.idx AS idx, e.event AS event,"
        " e.time AS time, j.tenant AS tenant"
        " FROM events e JOIN jobs j ON j.grid = e.grid"
        f" WHERE {' AND '.join(clauses)} ORDER BY e.seq"
    )
    with pool.connection() as conn:
        events = conn.execute(sql, params).fetchall()
        history = conn.execute(
            "SELECT time, hits, misses FROM history"
            + (" WHERE time >= ?" if since is not None else ""),
            ([float(since)] if since is not None else []),
        ).fetchall()

    buckets: dict[tuple[str, str], dict] = {}
    grids_seen: dict[tuple[str, str], set] = {}
    open_lease: dict[tuple[str, Any], float] = {}

    def bucket(tenant_: str, day: str) -> dict:
        key = (tenant_, day)
        if key not in buckets:
            buckets[key] = {
                "tenant": tenant_,
                "day": day,
                "points_done": 0,
                "leases": 0,
                "wall_seconds": 0.0,
                "retries": 0,
                "reclaims": 0,
                "poisoned": 0,
                "grids": 0,
            }
            grids_seen[key] = set()
        return buckets[key]

    for row in events:
        kind = row["event"]
        day = _day(row["time"])
        entry = bucket(row["tenant"], day)
        grids_seen[(row["tenant"], day)].add(row["grid"])
        point = (row["grid"], row["idx"])
        if kind == "lease":
            entry["leases"] += 1
            open_lease[point] = float(row["time"])
        elif kind in ("done", "reclaim", "requeue", "poisoned"):
            if kind == "done":
                entry["points_done"] += 1
            elif kind == "reclaim":
                entry["reclaims"] += 1
            elif kind == "requeue":
                entry["retries"] += 1
            else:
                entry["poisoned"] += 1
            started = open_lease.pop(point, None)
            if started is not None:
                # Billed to the day the lease started, even if it
                # settled after midnight — one interval, one bucket.
                start_entry = bucket(row["tenant"], _day(started))
                start_entry["wall_seconds"] += max(0.0, float(row["time"]) - started)
    for key, entry in buckets.items():
        entry["grids"] = len(grids_seen[key])
        entry["wall_seconds"] = round(entry["wall_seconds"], 6)

    cache_days: dict[str, dict] = {}
    for row in history:
        day = _day(row["time"])
        entry = cache_days.setdefault(day, {"day": day, "hits": 0, "misses": 0})
        entry["hits"] += int(row["hits"])
        entry["misses"] += int(row["misses"])
    cache = []
    for day in sorted(cache_days):
        entry = cache_days[day]
        lookups = entry["hits"] + entry["misses"]
        entry["hit_rate"] = entry["hits"] / lookups if lookups else 0.0
        cache.append(entry)

    return {
        "tenants": [buckets[k] for k in sorted(buckets)],
        "cache": cache,
    }


# -- retention / GC -----------------------------------------------------------
@dataclass(frozen=True)
class RetentionPolicy:
    """What the GC may eat. Terminal jobs only, always.

    ``max_age_seconds`` — collect terminal jobs whose last update is
    older than the horizon. ``keep_latest`` — additionally keep only
    the N most recently updated terminal jobs per ``(name, tenant)``
    group and collect the rest, however young. Either may be None
    (criterion disabled); with both None the policy selects nothing —
    an empty policy must be harmless, not greedy. ``tenant`` / ``name``
    scope the sweep. ``lease_grace`` is forwarded to
    :meth:`SweepStore.collect_job`'s dangling-lease refusal.
    """

    max_age_seconds: Optional[float] = None
    keep_latest: Optional[int] = None
    tenant: Optional[str] = None
    name: Optional[str] = None
    lease_grace: float = 300.0
    states: frozenset = field(default_factory=lambda: frozenset(JOB_TERMINAL))

    def describe(self) -> dict:
        return {
            "max_age_seconds": self.max_age_seconds,
            "keep_latest": self.keep_latest,
            "tenant": self.tenant,
            "name": self.name,
            "lease_grace": self.lease_grace,
            "states": sorted(self.states),
        }


def gc_plan(
    pool: ReaderPool,
    policy: RetentionPolicy,
    now: Optional[float] = None,
) -> list[dict]:
    """The jobs ``policy`` selects for collection, oldest first.

    Pure read — this IS the dry run. The real run
    (:func:`run_gc`) collects exactly this list, minus anything the
    writer-side re-check refuses (a refusal shows up in the report, so
    dry-run/real-run divergence is visible, never silent). Each entry::

        {"grid", "name", "tenant", "state", "updated", "why"}
    """
    now = time.time() if now is None else float(now)
    clauses = [f"state IN ({','.join('?' * len(policy.states))})"]
    params: list[Any] = sorted(policy.states)
    if policy.tenant is not None:
        clauses.append("tenant = ?")
        params.append(policy.tenant)
    if policy.name is not None:
        clauses.append("name = ?")
        params.append(policy.name)
    with pool.connection() as conn:
        rows = [
            dict(r)
            for r in conn.execute(
                "SELECT grid, name, tenant, state, updated FROM jobs"
                f" WHERE {' AND '.join(clauses)} ORDER BY updated DESC",
                params,
            ).fetchall()
        ]
    doomed: dict[str, str] = {}  # grid -> why
    if policy.max_age_seconds is not None:
        horizon = now - float(policy.max_age_seconds)
        for row in rows:
            if float(row["updated"]) < horizon:
                doomed[row["grid"]] = "age"
    if policy.keep_latest is not None:
        kept: dict[tuple[str, str], int] = {}
        for row in rows:  # newest first per ORDER BY
            group = (row["name"], row["tenant"])
            kept[group] = kept.get(group, 0) + 1
            if kept[group] > int(policy.keep_latest):
                doomed.setdefault(row["grid"], "count")
    plan = [
        {**row, "why": doomed[row["grid"]]}
        for row in rows
        if row["grid"] in doomed
    ]
    plan.sort(key=lambda r: float(r["updated"]))  # oldest collected first
    return plan


def run_gc(
    store: SweepStore,
    policy: RetentionPolicy,
    dry_run: bool = False,
    now: Optional[float] = None,
    pool: Optional[ReaderPool] = None,
) -> dict:
    """Plan and (unless ``dry_run``) collect; returns the full report.

    Planning reads through a :class:`ReaderPool` (the given one, or a
    transient one over ``store.path``); collection hands each planned
    grid to :meth:`SweepStore.collect_job`, which re-validates
    everything (terminal? tombstoned meanwhile? dangling lease?) on the
    writer thread — the plan carries no authority across the
    read/write boundary. Report::

        {"policy": ..., "dry_run": bool,
         "planned":   [plan entries],
         "collected": [collect_job results],   # empty when dry_run
         "refused":   [collect_job refusals]}  # empty when dry_run
    """
    own_pool = pool is None
    if pool is None:
        pool = ReaderPool(store.path)
    try:
        planned = gc_plan(pool, policy, now=now)
    finally:
        if own_pool:
            pool.close()
    report: dict[str, Any] = {
        "policy": policy.describe(),
        "dry_run": bool(dry_run),
        "planned": planned,
        "collected": [],
        "refused": [],
    }
    if dry_run:
        return report
    for entry in planned:
        result = store.collect_job(
            entry["grid"],
            reason=f"policy:{entry['why']}",
            lease_grace=policy.lease_grace,
        )
        if result.get("collected"):
            report["collected"].append(result)
        else:
            report["refused"].append(result)
    return report
