"""SQLite-backed job/results/telemetry store for the sweep service.

This replaces the append-only per-grid journal + ``history.jsonl`` pair
with one queryable database per service (or per cache directory). The
durability contract is the same as the journal's — a completed point is
committed *before* its worker is acknowledged, so a SIGKILLed service
restarted against the same file serves every acknowledged result from
disk — but the store additionally survives *multi-tenant* workloads:
many named grids live side by side, keyed by their content signature,
and "all fig6 points ever run, any version" is one indexed query.

Concurrency model — **single writer thread**:

Every SQLite operation (reads included) funnels through one dedicated
thread that owns the only connection. Callers enqueue a closure and
block until the writer commits it; exceptions propagate back to the
caller. This gives the service the same no-locking simplicity the RESP
dispatch lock gives the coordinator, makes write ordering identical to
call ordering (the crash-recovery tests rely on that prefix property),
and sidesteps SQLite's cross-thread connection rules entirely.

Durability and torn-write recovery:

* ``journal_mode=WAL`` + ``synchronous=FULL`` — committed transactions
  survive power loss, and readers never block the writer;
* every mutating call is one transaction — a crash mid-call (any fsync
  boundary) rolls back on the next open, so the job table is always a
  *prefix* of the call sequence: no half-applied DONE, ever;
* :meth:`SweepStore.open` runs SQLite's own WAL/hot-journal recovery,
  then ``PRAGMA quick_check`` — real corruption (not just a torn tail)
  raises :class:`~repro.errors.SweepStoreError` instead of silently
  serving damaged results;
* the ``meta`` table carries ``schema_version`` so future schema changes
  migrate explicitly instead of guessing from table shapes.

Schema (version 2)::

    meta       (key PRIMARY KEY, value)
    jobs       (grid PRIMARY KEY, name, tenant, n_points, state,
                version, created, updated)
    points     (grid, idx PRIMARY KEY(grid, idx), state, worker,
                spec BLOB, payload BLOB, failures TEXT, updated,
                fingerprint)                       -- v2, indexed
    events     (seq AUTOINCREMENT, grid, idx, event, worker, time)
    history    (seq AUTOINCREMENT, time, hits, misses, stores,
                invalid, hit_rate, fingerprint)    -- fingerprint: v2
    tombstones (grid PRIMARY KEY, name, tenant, n_points, state,
                version, created, collected, points_done, reason)

``points.spec`` holds the pickled :class:`~repro.sweep.point.SweepPoint`
so a restarted service can re-serve unfinished jobs without the tenant
resubmitting; ``points.payload`` holds the pickled (value, snapshot)
wire blob exactly as the worker shipped it, which is what makes restart
results byte-identical. Jobs imported from legacy journals have no specs
(the journal never stored them) — they are queryable but not resumable.

Version 2 additions (see :mod:`repro.sweep.dist.query` for the read
side):

* ``points.fingerprint`` — the *version-independent* content identity of
  the cell (:func:`repro.sweep.cache.point_fingerprint`), indexed, so
  "every result for this cell across jobs, tenants, and ``repro``
  versions" is one indexed join;
* ``history.fingerprint`` — ties a cache hit-rate row to the grid
  content (:func:`repro.sweep.cache.grid_fingerprint`) that produced it;
* ``tombstones`` — one row per garbage-collected job, so idempotent
  re-submission still short-circuits after the job's bulk rows are gone
  (:meth:`SweepStore.collect_job`);
* the ``usage_daily`` view — per-tenant per-day event counts backing the
  usage-accounting queries.

Opening a v1 store migrates it in place on the writer thread before the
first caller can touch it: the fingerprint columns are added and
**backfilled** by unpickling each stored spec (specs that no longer
unpickle are left NULL — still collectable, just not
cross-version-queryable), then ``schema_version`` flips to 2. The
migration is idempotent and crash-safe: every step guards on current
shape (column present? version row updated?), so a process killed
mid-migration simply re-enters it on the next open. Payload bytes are
never touched, so migration preserves byte-identical result replay.
Stores newer than the running code are refused, same as v1.
"""

from __future__ import annotations

import json
import os
import pickle
import queue
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import SweepStoreError
from repro.sweep.cache import point_fingerprint
from repro.version import __version__

#: Bump when the schema changes shape; ``meta.schema_version`` gates it.
SCHEMA_VERSION = 2

#: Default store filename inside a cache or service directory.
STORE_FILENAME = "store.sqlite"

#: Job lifecycle states (see ARCHITECTURE.md for the state machine).
JOB_SUBMITTED = "submitted"
JOB_RUNNING = "running"
JOB_DONE = "done"
JOB_CANCELLED = "cancelled"
JOB_POISONED = "poisoned"
JOB_TERMINAL = frozenset({JOB_DONE, JOB_CANCELLED, JOB_POISONED})

#: Tables only (``IF NOT EXISTS``, so a v1 store's tables are left
#: untouched for the migration to alter). Indexes and views that
#: reference v2 columns live in :data:`_SCHEMA_DERIVED`, executed only
#: *after* the version check/migration guaranteed those columns exist.
_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS jobs (
    grid     TEXT PRIMARY KEY,
    name     TEXT NOT NULL,
    tenant   TEXT NOT NULL DEFAULT '',
    n_points INTEGER NOT NULL,
    state    TEXT NOT NULL,
    version  TEXT NOT NULL DEFAULT '',
    created  REAL NOT NULL,
    updated  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS points (
    grid        TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    state       TEXT NOT NULL DEFAULT 'queued',
    worker      TEXT,
    spec        BLOB,
    payload     BLOB,
    failures    TEXT,
    updated     REAL NOT NULL,
    fingerprint TEXT,
    PRIMARY KEY (grid, idx)
);
CREATE INDEX IF NOT EXISTS points_by_state ON points (grid, state);
CREATE TABLE IF NOT EXISTS events (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    grid   TEXT NOT NULL,
    idx    INTEGER,
    event  TEXT NOT NULL,
    worker TEXT,
    time   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS events_by_grid ON events (grid, seq);
CREATE TABLE IF NOT EXISTS history (
    seq         INTEGER PRIMARY KEY AUTOINCREMENT,
    time        REAL NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    misses      INTEGER NOT NULL DEFAULT 0,
    stores      INTEGER NOT NULL DEFAULT 0,
    invalid     INTEGER NOT NULL DEFAULT 0,
    hit_rate    REAL NOT NULL DEFAULT 0.0,
    fingerprint TEXT
);
CREATE TABLE IF NOT EXISTS tombstones (
    grid        TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    tenant      TEXT NOT NULL DEFAULT '',
    n_points    INTEGER NOT NULL,
    state       TEXT NOT NULL,
    version     TEXT NOT NULL DEFAULT '',
    created     REAL NOT NULL,
    collected   REAL NOT NULL,
    points_done INTEGER NOT NULL DEFAULT 0,
    reason      TEXT NOT NULL DEFAULT ''
);
"""

#: Indexes/views over v2 columns; applied after migration so they never
#: reference a column a v1 store does not have yet.
_SCHEMA_DERIVED = """
CREATE INDEX IF NOT EXISTS points_by_fingerprint ON points (fingerprint);
CREATE VIEW IF NOT EXISTS usage_daily AS
    SELECT j.tenant                  AS tenant,
           DATE(e.time, 'unixepoch') AS day,
           SUM(e.event = 'done')     AS points_done,
           SUM(e.event = 'lease')    AS leases,
           SUM(e.event = 'requeue')  AS requeues,
           SUM(e.event = 'reclaim')  AS reclaims,
           SUM(e.event = 'poisoned') AS poisoned,
           COUNT(DISTINCT e.grid)    AS grids
    FROM events e JOIN jobs j ON j.grid = e.grid
    GROUP BY j.tenant, DATE(e.time, 'unixepoch');
"""

_CLOSE = object()


def _migrate_v1_to_v2(conn: sqlite3.Connection) -> None:
    """In-place v1 -> v2 migration; runs on the writer thread at open.

    Adds the ``points.fingerprint`` / ``history.fingerprint`` columns
    (the ``tombstones`` table and the derived index/view come from the
    shared schema scripts) and backfills point fingerprints from the
    pickled specs. Every step is guarded on the store's current shape,
    so a crash mid-migration re-enters cleanly on the next open; the
    version row flips last. ``points.payload`` is never read or
    written — migrated stores replay byte-identical results.
    """
    point_cols = {row[1] for row in conn.execute("PRAGMA table_info(points)")}
    if "fingerprint" not in point_cols:
        conn.execute("ALTER TABLE points ADD COLUMN fingerprint TEXT")
    history_cols = {row[1] for row in conn.execute("PRAGMA table_info(history)")}
    if "fingerprint" not in history_cols:
        conn.execute("ALTER TABLE history ADD COLUMN fingerprint TEXT")
    rows = conn.execute(
        "SELECT grid, idx, spec FROM points"
        " WHERE spec IS NOT NULL AND fingerprint IS NULL"
    ).fetchall()
    for row in rows:
        fp = _fingerprint_spec(row["spec"])
        if fp is not None:
            conn.execute(
                "UPDATE points SET fingerprint = ? WHERE grid = ? AND idx = ?",
                (fp, row["grid"], row["idx"]),
            )
    conn.execute(
        "UPDATE meta SET value = ? WHERE key = 'schema_version'",
        (str(SCHEMA_VERSION),),
    )


def _fingerprint_spec(spec: Optional[bytes]) -> Optional[str]:
    """Version-independent fingerprint of a pickled spec, None if it
    cannot be recovered (unimportable function, stale pickle)."""
    if spec is None:
        return None
    try:
        point = pickle.loads(spec)
        return point_fingerprint(point.func_path, dict(point.kwargs))
    except Exception:
        return None


class SweepStore:
    """One SQLite file, one writer thread, many tenants' jobs."""

    def __init__(
        self,
        path: str | Path,
        wall: Callable[[], float] = time.time,
        _crash_op: Optional[int] = None,
        _crash_mode: str = "after_commit",
    ) -> None:
        """Open (creating and/or recovering) the store at ``path``.

        ``_crash_op``/``_crash_mode`` are crash-test hooks: the writer
        thread ``os._exit``\\ s the whole process before or after the
        commit of the Nth *mutating* call. They exist so the recovery
        property tests can kill a real writer at every fsync boundary;
        production code never sets them.
        """
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.wall = wall
        self._crash_op = _crash_op
        self._crash_mode = _crash_mode
        self._mutations = 0
        self._ops: queue.Queue = queue.Queue()
        self._open_error: Optional[BaseException] = None
        self._opened = threading.Event()
        self._writer = threading.Thread(
            target=self._writer_loop, name=f"sweep-store-{self.path.name}", daemon=True
        )
        self._writer.start()
        self._opened.wait()
        if self._open_error is not None:
            raise SweepStoreError(
                f"cannot open sweep store {self.path}: {self._open_error}"
            ) from self._open_error

    # -- writer thread ------------------------------------------------------
    def _writer_loop(self) -> None:
        try:
            conn = self._open_connection()
        except BaseException as exc:
            self._open_error = exc
            self._opened.set()
            return
        self._opened.set()
        while True:
            item = self._ops.get()
            if item is _CLOSE:
                break
            fn, mutate, box, done = item
            try:
                box["value"] = fn(conn)
                if mutate:
                    self._mutations += 1
                    if (
                        self._crash_op is not None
                        and self._mutations >= self._crash_op
                        and self._crash_mode == "before_commit"
                    ):
                        os._exit(86)  # crash-test hook: die mid-transaction
                    conn.commit()
                    if (
                        self._crash_op is not None
                        and self._mutations >= self._crash_op
                        and self._crash_mode == "after_commit"
                    ):
                        os._exit(86)  # crash-test hook: die post-fsync
            except BaseException as exc:  # propagate to the caller
                try:
                    conn.rollback()
                except sqlite3.Error:
                    pass
                box["error"] = exc
            finally:
                done.set()
        try:
            conn.commit()
        except sqlite3.Error:
            pass
        conn.close()

    def _open_connection(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path))
        conn.row_factory = sqlite3.Row
        # WAL + FULL: committed transactions survive power loss, and the
        # implicit open already rolled back any hot journal / replayed
        # the WAL (SQLite's own torn-write recovery).
        try:
            conn.execute("PRAGMA journal_mode=WAL")
        except sqlite3.Error:
            pass  # e.g. network filesystems; rollback journal still recovers
        conn.execute("PRAGMA synchronous=FULL")
        check = conn.execute("PRAGMA quick_check").fetchone()[0]
        if check != "ok":
            conn.close()
            raise SweepStoreError(f"integrity check failed: {check}")
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
        else:
            found = int(row[0])
            if found > SCHEMA_VERSION:
                conn.close()
                raise SweepStoreError(
                    f"store schema v{found} is newer than this code (v{SCHEMA_VERSION})"
                )
            if found < SCHEMA_VERSION:
                _migrate_v1_to_v2(conn)
        conn.executescript(_SCHEMA_DERIVED)
        conn.commit()
        return conn

    def _call(self, fn: Callable[[sqlite3.Connection], Any], mutate: bool = False) -> Any:
        """Run ``fn(conn)`` on the writer thread and return its result."""
        if not self._writer.is_alive():
            raise SweepStoreError(f"sweep store {self.path} is closed")
        box: dict[str, Any] = {}
        done = threading.Event()
        self._ops.put((fn, mutate, box, done))
        done.wait()
        if "error" in box:
            error = box["error"]
            if isinstance(error, sqlite3.Error):
                raise SweepStoreError(f"sweep store {self.path}: {error}") from error
            raise error
        return box.get("value")

    def close(self) -> None:
        if self._writer.is_alive():
            self._ops.put(_CLOSE)
            self._writer.join(timeout=10.0)

    @property
    def is_open(self) -> bool:
        """Whether the writer thread is alive (the store accepts writes)."""
        return self._writer.is_alive()

    def used_bytes(self) -> int:
        """Bytes of live data in the store file (admission accounting).

        ``(page_count - freelist_count) * page_size``: unlike the raw
        file size, this *shrinks* when GC deletes rows (SQLite frees
        pages to the freelist without truncating the file), so a
        tenant's store-bytes quota headroom recovers after
        ``collect_job`` even though ``stat().st_size`` never moves.
        """

        def fn(conn: sqlite3.Connection) -> int:
            page_size = conn.execute("PRAGMA page_size").fetchone()[0]
            page_count = conn.execute("PRAGMA page_count").fetchone()[0]
            freelist = conn.execute("PRAGMA freelist_count").fetchone()[0]
            return max(0, int(page_count) - int(freelist)) * int(page_size)

        return self._call(fn)

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- jobs ---------------------------------------------------------------
    def submit_job(
        self,
        grid: str,
        name: str,
        points: Sequence[tuple],
        tenant: str = "",
        version: str = __version__,
    ) -> bool:
        """Create a job and its point rows; False if it already exists.

        Idempotent by grid signature: resubmitting the same grid (same
        content, same code version — the signature embeds both) is a
        no-op that leaves every recorded result in place, so a tenant
        retrying a SUBMIT across a service restart can never fork a job.
        A **tombstoned** grid (garbage-collected after finishing — see
        :meth:`collect_job`) also answers False: the job's bulk rows are
        gone, but re-submission still short-circuits instead of
        re-running work the retention policy already deemed disposable.

        ``points`` rows are ``(idx, spec)`` or ``(idx, spec,
        fingerprint)``; when the fingerprint is omitted it is recovered
        from the pickled spec (best effort — an unpicklable or None spec
        leaves it NULL, exactly like the v1->v2 backfill).
        """
        now = self.wall()
        work = []
        for item in points:
            idx, spec = item[0], item[1]
            fp = item[2] if len(item) > 2 else _fingerprint_spec(spec)
            work.append((grid, idx, spec, fp, now))

        def op(conn: sqlite3.Connection) -> bool:
            exists = conn.execute(
                "SELECT 1 FROM jobs WHERE grid = ?", (grid,)
            ).fetchone()
            if exists:
                return False
            tombstoned = conn.execute(
                "SELECT 1 FROM tombstones WHERE grid = ?", (grid,)
            ).fetchone()
            if tombstoned:
                return False
            conn.execute(
                "INSERT INTO jobs (grid, name, tenant, n_points, state, version,"
                " created, updated) VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (grid, name, tenant, len(points), JOB_SUBMITTED, version, now, now),
            )
            conn.executemany(
                "INSERT INTO points (grid, idx, state, spec, fingerprint, updated)"
                " VALUES (?, ?, 'queued', ?, ?, ?)",
                [(g, idx, spec, fp, t) for g, idx, spec, fp, t in work],
            )
            conn.execute(
                "INSERT INTO events (grid, idx, event, worker, time)"
                " VALUES (?, NULL, 'submit', ?, ?)",
                (grid, tenant, now),
            )
            return True

        return bool(self._call(op, mutate=True))

    def set_job_state(self, grid: str, state: str) -> None:
        now = self.wall()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "UPDATE jobs SET state = ?, updated = ? WHERE grid = ?",
                (state, now, grid),
            )
            conn.execute(
                "INSERT INTO events (grid, idx, event, worker, time)"
                " VALUES (?, NULL, ?, NULL, ?)",
                (grid, f"state:{state}", now),
            )

        self._call(op, mutate=True)

    def job(self, grid: str) -> Optional[dict]:
        def op(conn: sqlite3.Connection):
            row = conn.execute("SELECT * FROM jobs WHERE grid = ?", (grid,)).fetchone()
            return dict(row) if row is not None else None

        return self._call(op)

    def jobs(self, name: Optional[str] = None) -> list[dict]:
        """All jobs (optionally filtered by name), newest first."""

        def op(conn: sqlite3.Connection):
            if name is None:
                rows = conn.execute(
                    "SELECT * FROM jobs ORDER BY created DESC"
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT * FROM jobs WHERE name = ? ORDER BY created DESC",
                    (name,),
                ).fetchall()
            return [dict(r) for r in rows]

        return self._call(op)

    def resumable_jobs(self) -> list[dict]:
        """Non-terminal jobs whose point specs survived (restart set)."""

        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state IN (?, ?) ORDER BY created",
                (JOB_SUBMITTED, JOB_RUNNING),
            ).fetchall()
            out = []
            for row in rows:
                missing = conn.execute(
                    "SELECT COUNT(*) FROM points WHERE grid = ? AND spec IS NULL"
                    " AND state != 'done'",
                    (row["grid"],),
                ).fetchone()[0]
                if missing == 0:
                    out.append(dict(row))
            return out

        return self._call(op)

    # -- points -------------------------------------------------------------
    def record_done(
        self, grid: str, idx: int, payload: bytes, worker: Optional[str] = None
    ) -> bool:
        """Durably persist one completed point; False if already done.

        The commit (and its fsync) happens before this returns — the
        service only acknowledges the worker afterwards, so an
        acknowledged result is never lost to a crash.
        """
        now = self.wall()

        def op(conn: sqlite3.Connection) -> bool:
            cursor = conn.execute(
                "UPDATE points SET state = 'done', payload = ?, worker = ?,"
                " failures = NULL, updated = ? WHERE grid = ? AND idx = ?"
                " AND state != 'done'",
                (payload, worker, now, grid, idx),
            )
            if cursor.rowcount == 0:
                return False
            conn.execute(
                "INSERT INTO events (grid, idx, event, worker, time)"
                " VALUES (?, ?, 'done', ?, ?)",
                (grid, idx, worker, now),
            )
            return True

        return bool(self._call(op, mutate=True))

    def record_poisoned(self, grid: str, idx: int, failures: list[dict]) -> None:
        now = self.wall()

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "UPDATE points SET state = 'poisoned', failures = ?, updated = ?"
                " WHERE grid = ? AND idx = ? AND state != 'done'",
                (json.dumps(failures, sort_keys=True), now, grid, idx),
            )
            conn.execute(
                "INSERT INTO events (grid, idx, event, worker, time)"
                " VALUES (?, ?, 'poisoned', NULL, ?)",
                (grid, idx, now),
            )

        self._call(op, mutate=True)

    def record_event(
        self, grid: str, idx: Optional[int], event: str, worker: Optional[str] = None
    ) -> None:
        """Audit-trail entry (lease/reclaim/requeue/cancel...)."""
        now = self.wall()
        self._call(
            lambda conn: conn.execute(
                "INSERT INTO events (grid, idx, event, worker, time)"
                " VALUES (?, ?, ?, ?, ?)",
                (grid, idx, event, worker, now),
            ),
            mutate=True,
        )

    def done_payloads(self, grid: str) -> dict[int, bytes]:
        """idx -> wire payload for every completed point of ``grid``."""

        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT idx, payload FROM points WHERE grid = ? AND state = 'done'",
                (grid,),
            ).fetchall()
            return {int(r["idx"]): r["payload"] for r in rows if r["payload"] is not None}

        return self._call(op)

    def poisoned_points(self, grid: str) -> dict[int, list[dict]]:
        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT idx, failures FROM points WHERE grid = ?"
                " AND state = 'poisoned'",
                (grid,),
            ).fetchall()
            out: dict[int, list[dict]] = {}
            for row in rows:
                try:
                    out[int(row["idx"])] = json.loads(row["failures"] or "[]")
                except ValueError:
                    out[int(row["idx"])] = []
            return out

        return self._call(op)

    def point_counts(self, grid: str) -> dict[str, int]:
        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM points WHERE grid = ?"
                " GROUP BY state",
                (grid,),
            ).fetchall()
            return {str(r["state"]): int(r["n"]) for r in rows}

        return self._call(op)

    def load_specs(self, grid: str) -> list[tuple[int, Optional[bytes]]]:
        """(idx, pickled SweepPoint) for every point row of ``grid``."""

        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT idx, spec FROM points WHERE grid = ? ORDER BY idx",
                (grid,),
            ).fetchall()
            return [(int(r["idx"]), r["spec"]) for r in rows]

        return self._call(op)

    # -- retention / GC -----------------------------------------------------
    def collect_job(
        self, grid: str, reason: str = "gc", lease_grace: float = 300.0
    ) -> dict:
        """Garbage-collect one **terminal** job; returns what happened.

        Runs as one mutation on the writer thread (commit + fsync before
        returning, like every other mutation): the job's ``points`` /
        ``events`` / ``jobs`` rows are deleted and one ``tombstones``
        row is written in their place, so idempotent re-submission of
        the same grid still short-circuits (:meth:`submit_job`) and the
        job's name/tenant/outcome stay auditable. ``history`` rows are
        never touched — they are store-wide, not per-job.

        Refusals (``{"collected": False, "refused": <why>}``, nothing
        deleted):

        * ``"unknown"`` — no such job;
        * ``"already-collected"`` — a tombstone exists (idempotent);
        * ``"not-terminal"`` — the job is submitted/running; GC only
          ever eats jobs whose lifecycle has ended;
        * ``"active-lease"`` — the job is terminal but some point's most
          recent event is a ``lease`` younger than ``lease_grace``
          seconds: a worker may still be computing it (e.g. a CANCEL
          revoked the job mid-flight), and collecting now would turn its
          imminent DONE into a write against a vanished job. Once the
          grace window passes the lease has long expired and collection
          proceeds.
        """
        now = self.wall()

        def op(conn: sqlite3.Connection) -> dict:
            row = conn.execute(
                "SELECT * FROM jobs WHERE grid = ?", (grid,)
            ).fetchone()
            if row is None:
                tombstoned = conn.execute(
                    "SELECT 1 FROM tombstones WHERE grid = ?", (grid,)
                ).fetchone()
                return {
                    "grid": grid,
                    "collected": False,
                    "refused": "already-collected" if tombstoned else "unknown",
                }
            if row["state"] not in JOB_TERMINAL:
                return {"grid": grid, "collected": False, "refused": "not-terminal"}
            dangling = conn.execute(
                "SELECT 1 FROM events e JOIN ("
                "  SELECT idx, MAX(seq) AS seq FROM events"
                "  WHERE grid = ? AND idx IS NOT NULL AND event IN"
                "  ('lease', 'done', 'reclaim', 'requeue', 'poisoned')"
                "  GROUP BY idx"
                ") last ON e.seq = last.seq"
                " WHERE e.event = 'lease' AND e.time > ? LIMIT 1",
                (grid, now - float(lease_grace)),
            ).fetchone()
            if dangling is not None:
                return {"grid": grid, "collected": False, "refused": "active-lease"}
            points_done = conn.execute(
                "SELECT COUNT(*) FROM points WHERE grid = ? AND state = 'done'",
                (grid,),
            ).fetchone()[0]
            conn.execute(
                "INSERT OR REPLACE INTO tombstones (grid, name, tenant, n_points,"
                " state, version, created, collected, points_done, reason)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    grid,
                    row["name"],
                    row["tenant"],
                    row["n_points"],
                    row["state"],
                    row["version"],
                    row["created"],
                    now,
                    int(points_done),
                    str(reason),
                ),
            )
            conn.execute("DELETE FROM points WHERE grid = ?", (grid,))
            conn.execute("DELETE FROM events WHERE grid = ?", (grid,))
            conn.execute("DELETE FROM jobs WHERE grid = ?", (grid,))
            return {
                "grid": grid,
                "collected": True,
                "state": row["state"],
                "name": row["name"],
                "tenant": row["tenant"],
                "points_done": int(points_done),
            }

        return dict(self._call(op, mutate=True))

    def tombstone(self, grid: str) -> Optional[dict]:
        """The tombstone row of a collected job, or None."""

        def op(conn: sqlite3.Connection):
            row = conn.execute(
                "SELECT * FROM tombstones WHERE grid = ?", (grid,)
            ).fetchone()
            return dict(row) if row is not None else None

        return self._call(op)

    def tombstones(self) -> list[dict]:
        """Every tombstone row, most recently collected first."""

        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT * FROM tombstones ORDER BY collected DESC"
            ).fetchall()
            return [dict(r) for r in rows]

        return self._call(op)

    # -- history ------------------------------------------------------------
    def record_history(self, record: dict) -> None:
        """Append one cache hit/miss record (ResultCache.record_history).

        ``record["fingerprint"]`` — the run's grid fingerprint — is
        persisted when present so hit-rate history stays joinable to
        grid content across code versions (records imported from
        pre-fingerprint JSONL simply store NULL).
        """

        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT INTO history (time, hits, misses, stores, invalid,"
                " hit_rate, fingerprint) VALUES (?, ?, ?, ?, ?, ?, ?)",
                (
                    float(record.get("time", self.wall())),
                    int(record.get("hits", 0)),
                    int(record.get("misses", 0)),
                    int(record.get("stores", 0)),
                    int(record.get("invalid", 0)),
                    float(record.get("hit_rate", 0.0)),
                    record.get("fingerprint"),
                ),
            )

        self._call(op, mutate=True)

    def history(self, limit: int = 20) -> list[dict]:
        """The most recent ``limit`` history records, oldest first.

        Records carry a ``fingerprint`` key only when one was recorded
        (v1-era and JSONL-imported rows have none), mirroring the JSONL
        record shape so the two sources merge cleanly.
        """

        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT time, hits, misses, stores, invalid, hit_rate,"
                " fingerprint FROM history ORDER BY seq DESC LIMIT ?",
                (int(limit),),
            ).fetchall()
            out = []
            for row in reversed(rows):
                record = dict(row)
                if record.get("fingerprint") is None:
                    record.pop("fingerprint", None)
                out.append(record)
            return out

        return self._call(op)

    # -- telemetry ----------------------------------------------------------
    def events(self, grid: str, limit: int = 1000) -> list[dict]:
        def op(conn: sqlite3.Connection):
            rows = conn.execute(
                "SELECT seq, grid, idx, event, worker, time FROM events"
                " WHERE grid = ? ORDER BY seq DESC LIMIT ?",
                (grid, int(limit)),
            ).fetchall()
            return [dict(r) for r in reversed(rows)]

        return self._call(op)


# -- legacy imports ----------------------------------------------------------
def migrate_history_jsonl(store: SweepStore, path: str | Path) -> int:
    """Import a ``history.jsonl`` into the store; returns records imported.

    Records are passed through whole, so a ``fingerprint`` field written
    by a fingerprint-aware :meth:`ResultCache.record_history` lands in
    ``history.fingerprint`` and the imported run stays joinable to its
    grid content; pre-fingerprint records import with NULL.
    """
    try:
        lines = Path(path).read_text(encoding="utf-8").splitlines()
    except (FileNotFoundError, OSError):
        return 0
    imported = 0
    for line in lines:
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn append — same tolerance the JSONL reader has
        if isinstance(record, dict):
            store.record_history(record)
            imported += 1
    return imported


def migrate_journal_file(store: SweepStore, path: str | Path) -> Optional[str]:
    """Import one legacy per-grid journal into the store.

    Builds a job row from the journal header and fills ``done`` /
    ``poisoned`` point rows from the recovery records (audit-only lease
    records become ``events``). The journal never stored point *specs*,
    so imported jobs are queryable — RESULTS/JOBS, done payloads — but
    not resumable; their job state reflects what the journal proved:
    every point done -> ``done``, any poison -> ``poisoned``, otherwise
    ``cancelled`` (the grid never finished under the journal). Returns
    the grid signature, or None when the file is not a journal. A job
    already present in the store is left untouched (idempotent re-runs).
    """
    import base64

    path = Path(path)
    try:
        lines = path.read_bytes().split(b"\n")
    except (FileNotFoundError, OSError):
        return None
    grid: Optional[str] = None
    n_points = 0
    done: dict[int, bytes] = {}
    poisoned: dict[int, list[dict]] = {}
    audit: list[tuple[Optional[int], str, Optional[str]]] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail
        kind = record.get("type")
        if kind == "header":
            if grid is None:
                grid = str(record.get("grid", ""))
                n_points = int(record.get("n_points", 0))
        elif kind == "done":
            try:
                done[int(record["index"])] = base64.b64decode(record["payload"])
            except (KeyError, ValueError, TypeError):
                continue
        elif kind == "poisoned":
            try:
                poisoned[int(record["index"])] = list(record.get("failures", []))
            except (KeyError, ValueError, TypeError):
                continue
        elif kind in ("lease", "reclaim", "requeue", "renew"):
            try:
                audit.append((int(record["index"]), kind, record.get("worker")))
            except (KeyError, ValueError, TypeError):
                continue
    if not grid:
        return None
    indices = set(range(n_points)) | set(done) | set(poisoned)
    created = store.submit_job(
        grid,
        name=path.stem,
        points=[(idx, None) for idx in sorted(indices)],
        tenant="journal-import",
    )
    if not created:
        return grid  # already imported (or live) — leave it alone
    for idx, payload in done.items():
        # The journal stored {"value", "snapshot"} pickles; keep the raw
        # blob — RESULTS consumers re-decode with the journal's shape in
        # mind via load_result's fallback (see protocol.load_result).
        store.record_done(grid, idx, payload, worker="journal-import")
    for idx, failures in poisoned.items():
        if idx not in done:
            store.record_poisoned(grid, idx, failures)
    for idx, event, worker in audit:
        store.record_event(grid, idx, event, worker)
    if len(done) >= len(indices) and indices:
        store.set_job_state(grid, JOB_DONE)
    elif poisoned:
        store.set_job_state(grid, JOB_POISONED)
    else:
        store.set_job_state(grid, JOB_CANCELLED)
    return grid


def migrate_cache_dir(
    store: SweepStore,
    cache_dir: str | Path,
    journal_dirs: Iterable[str | Path] = (),
) -> dict[str, int]:
    """One-shot ``--migrate-history`` import; returns counters.

    Imports ``<cache_dir>/history.jsonl`` plus every ``*.jsonl`` journal
    in the given journal directories. Safe to re-run: journals already
    imported are skipped (job rows are idempotent by grid signature);
    history records are appended, so re-running duplicates those — the
    CLI renames the JSONL to ``history.jsonl.imported`` afterwards to
    keep the operation one-shot.
    """
    counts = {"history": 0, "journals": 0}
    counts["history"] = migrate_history_jsonl(store, Path(cache_dir) / "history.jsonl")
    for directory in journal_dirs:
        for path in sorted(Path(directory).glob("*.jsonl")):
            if migrate_journal_file(store, path) is not None:
                counts["journals"] += 1
    return counts


__all__ = [
    "JOB_CANCELLED",
    "JOB_DONE",
    "JOB_POISONED",
    "JOB_RUNNING",
    "JOB_SUBMITTED",
    "JOB_TERMINAL",
    "SCHEMA_VERSION",
    "STORE_FILENAME",
    "SweepStore",
    "migrate_cache_dir",
    "migrate_history_jsonl",
    "migrate_journal_file",
    "schema_version",
]


def schema_version(path: str | Path) -> Optional[int]:
    """Peek a store file's ``schema_version`` without opening/migrating it.

    Read-only (URI ``mode=ro``), so it never creates, recovers, or
    migrates anything — the backup/ops tooling uses it to answer "what
    would opening this do?" before committing to it. None when the file
    is missing, not SQLite, or has no version row.
    """
    try:
        conn = sqlite3.connect(f"file:{Path(path)}?mode=ro", uri=True, timeout=5.0)
    except sqlite3.Error:
        return None
    try:
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        return int(row[0]) if row is not None else None
    except (sqlite3.Error, ValueError):
        return None
    finally:
        conn.close()
