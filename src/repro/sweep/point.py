"""Declarative sweep points: one grid cell of an experiment.

A :class:`SweepPoint` names a *module-level* function and the keyword
arguments of one cell of an experiment grid (backend, message size, node
count, seed, fault plan, ...). Points are plain data: they pickle across
process boundaries, fingerprint stably for the result cache, and say
nothing about *how* they run — that is the
:class:`~repro.sweep.engine.SweepEngine`'s job.

The point function must be importable by reference (defined at module
top level), because worker processes re-import it; closures and lambdas
are rejected early with a clear error rather than dying inside the pool.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.errors import SweepError


def _callable_path(func: Callable) -> str:
    """Stable ``module:qualname`` identity of a module-level callable."""
    module = getattr(func, "__module__", None)
    qualname = getattr(func, "__qualname__", None)
    if not module or not qualname:
        raise SweepError(f"sweep point function {func!r} has no importable identity")
    if "<locals>" in qualname or "<lambda>" in qualname:
        raise SweepError(
            f"sweep point function {module}:{qualname} must be defined at module "
            "top level (worker processes import it by reference)"
        )
    return f"{module}:{qualname}"


@dataclass(frozen=True)
class SweepPoint:
    """One independent, deterministic unit of sweep work.

    ``kwargs`` must be picklable and fingerprintable (primitives,
    containers, dataclasses, enums — see
    :func:`repro.sweep.cache.fingerprint`). ``telemetry=True`` asks the
    engine to inject a ``telemetry=`` keyword argument: the parent hub
    when running serially without a cache, a fresh worker-local hub
    (merged back afterwards) otherwise.
    """

    func: Callable
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""
    telemetry: bool = False

    def __post_init__(self) -> None:
        _callable_path(self.func)  # validate importability up front
        if not self.label:
            object.__setattr__(self, "label", self.default_label())

    @property
    def func_path(self) -> str:
        return _callable_path(self.func)

    def default_label(self) -> str:
        inner = ",".join(f"{k}={self.kwargs[k]!r}" for k in sorted(self.kwargs))
        return f"{self.func.__name__}({inner})"

    def call(self, telemetry=None) -> Any:
        """Execute the point in-process."""
        kwargs = dict(self.kwargs)
        if self.telemetry:
            kwargs["telemetry"] = telemetry
        return self.func(**kwargs)


def grid(**axes: Iterable[Any]) -> list[dict[str, Any]]:
    """Cartesian product of named axes, in nested-loop order.

    ``grid(a=[1, 2], b=["x", "y"])`` yields dicts in the same order as
    ``for a in ...: for b in ...:`` — the *last* axis varies fastest, so
    porting a serial driver loop nest onto a grid preserves its
    execution (and telemetry) order.
    """
    names = list(axes)
    values = [list(axes[name]) for name in names]
    return [dict(zip(names, combo)) for combo in itertools.product(*values)]


def derive_seed(base: int, *parts: Any, bits: int = 48) -> int:
    """A deterministic per-point seed from a base seed and cell coordinates.

    Stable across processes and Python versions (no ``hash()``): the
    parts are rendered to a canonical string and digested with SHA-256.
    Distinct coordinates get statistically independent seeds; the same
    coordinates always get the same seed, which is what keeps cached and
    recomputed points interchangeable.
    """
    text = repr((int(base),) + tuple(str(p) for p in parts))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[: (bits + 7) // 8], "big") % (1 << bits)


def points_from_grid(
    func: Callable,
    cells: Iterable[Mapping[str, Any]],
    *,
    telemetry: bool = False,
    label: Optional[Callable[[Mapping[str, Any]], str]] = None,
) -> list[SweepPoint]:
    """Wrap each grid cell dict into a :class:`SweepPoint` for ``func``."""
    return [
        SweepPoint(
            func=func,
            kwargs=dict(cell),
            label=label(cell) if label else "",
            telemetry=telemetry,
        )
        for cell in cells
    ]
