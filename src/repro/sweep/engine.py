"""The sweep engine: serial or process-parallel execution of point grids.

Execution contract (what the bit-identical regression tests rely on):

* **Determinism** — every point is an independent deterministic
  computation of its kwargs (the DES guarantees this for simulated
  runs), so values do not depend on worker count, completion order, or
  cache state. The engine returns values in *point order*, never
  completion order, and merges telemetry snapshots in point order too.
* **Serial fast path** — with default options (no parallelism, no
  cache) a point's function is called in-process with the parent
  telemetry hub, which is byte-for-byte the code path the experiment
  drivers used before this layer existed.
* **Worker path** — with ``parallel > 1`` (or a cache), each point runs
  with its own :class:`~repro.telemetry.hub.Telemetry` hub; the engine
  ships back a :class:`~repro.telemetry.snapshot.TelemetrySnapshot` and
  folds it into the parent hub, so one trace/metrics document still
  covers the whole sweep.
* **Faults** — a point failure raising an exception whose class is
  marked ``retryable`` (see :mod:`repro.errors`) is re-attempted up to
  ``retries`` times; terminal failures surface as
  :class:`~repro.errors.SweepPointError` naming the grid cell. Per-point
  wall-clock ``timeout`` is enforced *inside* worker processes (via
  ``SIGALRM``), so a wedged point converts into a retryable
  :class:`~repro.errors.SweepTimeoutError` instead of hanging the sweep.
"""

from __future__ import annotations

import contextlib
import os
import signal
import sys
import threading
import time
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import SweepError, SweepPointError, SweepTimeoutError
from repro.sweep.cache import CacheStats, ResultCache
from repro.sweep.point import SweepPoint, points_from_grid

#: Progress callback signature: (done_count, total, label, source) where
#: source is "cache", "run", "retry", "journal" (restored from a
#: crash-recovery journal), or "steal" (lease reclaimed from a dead
#: worker — informational, does not advance the done count).
ProgressFn = Callable[[int, int, str, str], None]

_UNSET = object()


@dataclass
class SweepOptions:
    """How a sweep executes (not *what* it computes — that's the points).

    Defaults reproduce the historical serial driver behaviour exactly.
    """

    #: Worker processes; <= 1 means run in-process (serial).
    parallel: int = 1
    #: Result-cache directory; None disables caching.
    cache_dir: Optional[str | Path] = None
    #: Per-point wall-clock seconds before a worker aborts the attempt
    #: with a retryable SweepTimeoutError. None = unlimited. Enforced in
    #: worker processes only (the serial path cannot safely interrupt).
    timeout: Optional[float] = None
    #: Additional attempts granted to retryable point failures.
    retries: int = 1
    #: Live progress callback (see ProgressFn); None = silent.
    progress: Optional[ProgressFn] = None
    #: ``HOST:PORT`` to serve the grid on for distributed workers
    #: (mutually exclusive with ``parallel > 1``). Pending points are
    #: executed by remote :class:`~repro.sweep.dist.WorkerAgent`\\ s.
    serve: Optional[str] = None
    #: Crash-recovery journal directory for the distributed coordinator;
    #: a restarted sweep with the same journal resumes where it died.
    journal_dir: Optional[str | Path] = None
    #: Distributed lease duration; a worker silent this long loses its
    #: point to the next claimer.
    lease_seconds: float = 5.0
    #: Quarantine a point after terminal failures on this many distinct
    #: workers ...
    poison_workers: int = 2
    #: ... or after this many terminal failures in total.
    poison_failures: int = 4
    #: Evict cache entries (oldest first) above this size after the run.
    cache_max_mb: Optional[float] = None
    #: Write the merged fleet Chrome trace (coordinator lease spans +
    #: worker execution spans) here when the serving sweep ends — even a
    #: poisoned or stopped one. Requires ``serve``.
    fleet_trace: Optional[str | Path] = None
    #: Dump the coordinator's flight-recorder ring (recent protocol
    #: events) here when serving ends or crashes. Requires ``serve``.
    flight_recorder: Optional[str | Path] = None
    #: ``HOST:PORT`` of a running durable sweep service: SUBMIT the grid
    #: as one named job and block until it drains, instead of executing
    #: locally or serving a dedicated coordinator. Mutually exclusive
    #: with ``serve`` and ``parallel > 1``; the service's workers do the
    #: computing and its SQLite store keeps the results across restarts.
    submit: Optional[str] = None
    #: Tenant label attached to a submitted job (fair-share accounting
    #: on the service side). Only meaningful with ``submit``.
    tenant: str = ""
    #: Human-readable job name for ``submit``; defaults to the first
    #: point's label.
    job_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise SweepError(f"timeout must be positive, got {self.timeout}")
        if self.serve is not None and self.parallel > 1:
            raise SweepError(
                "serve and parallel are mutually exclusive: a serving sweep "
                "delegates execution to remote workers"
            )
        if self.submit is not None and self.serve is not None:
            raise SweepError(
                "submit and serve are mutually exclusive: submit hands the "
                "grid to an already-running sweep service"
            )
        if self.submit is not None and self.parallel > 1:
            raise SweepError(
                "submit and parallel are mutually exclusive: the service's "
                "workers do the computing"
            )
        if self.tenant and self.submit is None:
            raise SweepError("tenant only applies to a submitted sweep")
        if self.job_name is not None and self.submit is None:
            raise SweepError("job_name only applies to a submitted sweep")
        if self.journal_dir is not None and self.serve is None:
            raise SweepError("journal_dir only applies to a serving sweep")
        if self.fleet_trace is not None and self.serve is None:
            raise SweepError("fleet_trace only applies to a serving sweep")
        if self.flight_recorder is not None and self.serve is None:
            raise SweepError("flight_recorder only applies to a serving sweep")
        if self.lease_seconds <= 0:
            raise SweepError(f"lease_seconds must be positive, got {self.lease_seconds}")
        if min(self.poison_workers, self.poison_failures) < 1:
            raise SweepError("poison thresholds must be >= 1")
        if self.cache_max_mb is not None and self.cache_max_mb <= 0:
            raise SweepError(f"cache_max_mb must be positive, got {self.cache_max_mb}")


@dataclass
class SweepReport:
    """What one engine run produced, beyond the values themselves."""

    values: list[Any] = field(default_factory=list)
    n_points: int = 0
    computed: int = 0  # points actually executed (not cache- or journal-served)
    retried: int = 0
    cache: Optional[CacheStats] = None
    # Distributed-run extras (zero on serial/pool runs):
    replayed: int = 0  # points restored from the crash-recovery journal
    reclaims: int = 0  # leases stolen back from silent workers
    requeues: int = 0  # worker failures re-queued to other workers

    @property
    def from_cache(self) -> int:
        return self.n_points - self.computed - self.replayed


def _execute_point(point: SweepPoint, capture: bool):
    """Run one point; return (value, telemetry snapshot or None)."""
    hub = None
    if capture and point.telemetry:
        from repro.telemetry.hub import Telemetry

        hub = Telemetry()
    value = point.call(telemetry=hub)
    snapshot = hub.snapshot() if hub is not None else None
    return value, snapshot


@contextlib.contextmanager
def _point_alarm(label: str, timeout: Optional[float]):
    """Bound a block's wall-clock time with SIGALRM, safely.

    SIGALRM only delivers to the main thread, and naively arming an
    itimer clobbers whatever alarm the host application had pending. So
    this guard:

    * no-ops (with a :class:`RuntimeWarning`) off the main thread or on
      platforms without ``SIGALRM``/``setitimer`` — the point simply
      runs unbounded rather than the timer silently misfiring;
    * saves the previous handler *and* the previous timer's remaining
      time, and re-arms both on exit, crediting the time this block
      consumed (an outer alarm that would have fired during the block
      fires almost immediately after it).
    """
    if not timeout:
        yield
        return
    if not (hasattr(signal, "SIGALRM") and hasattr(signal, "setitimer")):
        warnings.warn(  # pragma: no cover - non-POSIX
            f"per-point timeout for {label!r} disabled: platform lacks SIGALRM",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return
    if threading.current_thread() is not threading.main_thread():
        warnings.warn(
            f"per-point timeout for {label!r} disabled: SIGALRM timers only "
            "fire on the main thread",
            RuntimeWarning,
            stacklevel=3,
        )
        yield
        return

    def _on_alarm(signum, frame):
        raise SweepTimeoutError(label, timeout)

    previous_handler = signal.signal(signal.SIGALRM, _on_alarm)
    prev_delay, prev_interval = signal.setitimer(signal.ITIMER_REAL, timeout)
    started = time.monotonic()
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous_handler)
        if prev_delay > 0.0:
            remaining = prev_delay - (time.monotonic() - started)
            # An outer timer that expired while ours was armed still owes
            # its application a signal: fire it as soon as possible.
            signal.setitimer(signal.ITIMER_REAL, max(remaining, 1e-6), prev_interval)


def _worker(point: SweepPoint, capture: bool, timeout: Optional[float]):
    """Process-pool / dist-worker entry: execution under an optional alarm."""
    with _point_alarm(point.label, timeout):
        return _execute_point(point, capture)


def _is_retryable(exc: BaseException) -> bool:
    return bool(getattr(exc, "retryable", False))


class SweepEngine:
    """Executes :class:`SweepPoint` lists under one :class:`SweepOptions`."""

    def __init__(
        self,
        options: Optional[SweepOptions] = None,
        telemetry=None,
    ) -> None:
        self.options = options or SweepOptions()
        self.telemetry = telemetry
        #: Live SweepCoordinator while a distributed run is serving
        #: (signal handlers use it to request a graceful stop).
        self._coordinator = None

    # -- public API --------------------------------------------------------
    def run(self, points: Sequence[SweepPoint], telemetry=None) -> SweepReport:
        """Execute every point; values come back in point order.

        ``telemetry`` (or the engine's hub) receives every point's
        spans/instants/metrics — live on the serial no-cache path,
        merged from per-worker snapshots otherwise — plus engine-level
        ``sweep.*`` counters.
        """
        hub = telemetry if telemetry is not None else self.telemetry
        points = list(points)
        report = SweepReport(n_points=len(points))
        if not points:
            return report

        cache = (
            ResultCache(self.options.cache_dir) if self.options.cache_dir else None
        )
        values: list[Any] = [_UNSET] * len(points)
        snapshots: list[Any] = [None] * len(points)
        total = len(points)
        done = 0

        def emit(done_count: int, label: str, source: str) -> None:
            if self.options.progress is not None:
                self.options.progress(done_count, total, label, source)

        # 1. Serve whatever the cache already has.
        pending: list[tuple[int, Optional[str]]] = []
        for index, point in enumerate(points):
            if cache is None:
                pending.append((index, None))
                continue
            key = cache.key_for(point)
            entry = cache.lookup(key)
            if entry is None:
                pending.append((index, key))
            else:
                values[index] = entry["value"]
                snapshots[index] = entry["snapshot"]
                done += 1
                emit(done, point.label, "cache")

        # 2. Compute the rest, serially or across the pool.
        #    Snapshot capture is needed whenever results leave this
        #    process (workers) or outlive it (cache entries).
        capture = hub is not None or cache is not None
        if pending:
            if self.options.submit is not None:
                self._run_submit(
                    points, pending, cache, True, values, snapshots, report,
                    done, emit,
                )
            elif self.options.serve is not None:
                # Results cross process (and host) boundaries: always
                # capture snapshots so telemetry merges deterministically.
                self._run_dist(
                    points, pending, cache, True, values, snapshots, report,
                    done, emit,
                )
            elif self.options.parallel <= 1:
                self._run_serial(
                    points, pending, cache, hub, capture, values, snapshots, report,
                    done, emit,
                )
                report.computed = len(pending)
            else:
                self._run_pool(
                    points, pending, cache, capture, values, snapshots, report,
                    done, emit,
                )
                report.computed = len(pending)

        # 3. Deterministic telemetry merge, in point order.
        if hub is not None:
            for snapshot in snapshots:
                hub.merge(snapshot)
            hub.metrics.counter("sweep.points").inc(len(points))
            hub.metrics.counter("sweep.points.computed").inc(report.computed)
            if report.replayed:
                hub.metrics.counter("sweep.points.replayed").inc(report.replayed)
            if cache is not None:
                hub.metrics.counter("sweep.cache.hits").inc(cache.stats.hits)
                hub.metrics.counter("sweep.cache.misses").inc(cache.stats.misses)

        report.values = values
        report.cache = cache.stats if cache is not None else None
        if cache is not None:
            # Housekeeping: log this run's hit rate (tagged with the
            # version-independent grid identity so history survives
            # version bumps), then trim the cache.
            from repro.sweep.cache import grid_fingerprint

            cache.record_history(fingerprint=grid_fingerprint(enumerate(points)))
            if self.options.cache_max_mb is not None:
                cache.evict(max_bytes=int(self.options.cache_max_mb * 1024 * 1024))
        return report

    def map(
        self,
        func: Callable,
        cells: Iterable[Mapping[str, Any]],
        *,
        telemetry=None,
        telemetry_points: Optional[Sequence[bool]] = None,
        label: Optional[Callable[[Mapping[str, Any]], str]] = None,
    ) -> list[Any]:
        """Run ``func`` over grid cells; returns values in cell order.

        ``telemetry_points`` selects which cells get the telemetry
        keyword injected (default: all of them when a hub is present).
        """
        cells = [dict(c) for c in cells]
        hub = telemetry if telemetry is not None else self.telemetry
        if telemetry_points is None:
            flags = [hub is not None] * len(cells)
        else:
            flags = list(telemetry_points)
            if len(flags) != len(cells):
                raise SweepError(
                    f"telemetry_points has {len(flags)} flags for {len(cells)} cells"
                )
        points = points_from_grid(func, cells, label=label)
        points = [
            SweepPoint(func=p.func, kwargs=p.kwargs, label=p.label, telemetry=flag)
            for p, flag in zip(points, flags)
        ]
        return self.run(points, telemetry=hub).values

    # -- serial path -------------------------------------------------------
    def _run_serial(
        self, points, pending, cache, hub, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        for index, key in pending:
            point = points[index]
            attempts = self.options.retries + 1
            while True:
                attempts -= 1
                try:
                    if cache is None and hub is not None:
                        # Historical driver path: record live into the
                        # parent hub (spans nest under any open spans).
                        value, snapshot = point.call(telemetry=hub), None
                    else:
                        value, snapshot = _execute_point(point, capture)
                    break
                except Exception as exc:
                    if attempts > 0 and _is_retryable(exc):
                        report.retried += 1
                        emit(done, point.label, "retry")
                        continue
                    raise SweepPointError(point.label, exc) from exc
            values[index] = value
            snapshots[index] = snapshot
            if cache is not None and key is not None:
                cache.store(key, value, snapshot, meta={"label": point.label})
            done += 1
            emit(done, point.label, "run")

    # -- pool path ---------------------------------------------------------
    def _run_pool(
        self, points, pending, cache, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        max_workers = max(1, min(self.options.parallel, len(pending)))
        attempts_left = {index: self.options.retries for index, _ in pending}
        keys = dict(pending)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _worker, points[index], capture, self.options.timeout
                ): index
                for index, _ in pending
            }
            while futures:
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures.pop(future)
                    point = points[index]
                    try:
                        value, snapshot = future.result()
                    except Exception as exc:
                        if attempts_left[index] > 0 and _is_retryable(exc):
                            attempts_left[index] -= 1
                            report.retried += 1
                            emit(done, point.label, "retry")
                            futures[
                                pool.submit(
                                    _worker, point, capture, self.options.timeout
                                )
                            ] = index
                            continue
                        for open_future in futures:
                            open_future.cancel()
                        raise SweepPointError(point.label, exc) from exc
                    values[index] = value
                    snapshots[index] = snapshot
                    if cache is not None and keys.get(index) is not None:
                        cache.store(
                            keys[index], value, snapshot, meta={"label": point.label}
                        )
                    done += 1
                    emit(done, point.label, "run")

    # -- distributed path ---------------------------------------------------
    def _run_dist(
        self, points, pending, cache, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        """Serve pending points to remote workers; block until drained.

        The coordinator owns fault tolerance (leases, stealing, poison,
        journal); this method only adapts it to the engine's bookkeeping:
        point-order values/snapshots, cache stores, and progress events
        ("journal" for replayed points, "steal" for reclaimed leases).
        Raises :class:`~repro.errors.SweepPoisonedError` if any point was
        quarantined — partial results are not silently returned.
        """
        from repro.sweep.dist.coordinator import SweepCoordinator

        keys = dict(pending)
        work = [(index, points[index]) for index, _ in pending]
        progress_done = [done]  # box: closed over by the callback

        def on_event(event: str, index: int, worker) -> None:
            label = points[index].label
            if event in ("replay", "done"):
                progress_done[0] += 1
                emit(progress_done[0], label, "journal" if event == "replay" else "run")
            elif event == "reclaim":
                emit(progress_done[0], label, "steal")
            elif event == "requeue":
                emit(progress_done[0], label, "retry")

        coordinator = SweepCoordinator(
            work,
            host=self._serve_host,
            port=self._serve_port,
            lease_seconds=self.options.lease_seconds,
            poison_workers=self.options.poison_workers,
            poison_failures=self.options.poison_failures,
            timeout=self.options.timeout,
            retries=self.options.retries,
            capture=capture,
            journal_dir=self.options.journal_dir,
            progress=on_event,
            flight_path=self.options.flight_recorder,
        )
        self._coordinator = coordinator  # exposed for signal handlers/tests
        # Graceful drain: SIGTERM stops serving at the next poll; the
        # journal (if any) already holds every acknowledged result, so a
        # restarted sweep with the same journal resumes where this died.
        previous_term = None
        on_main = (
            hasattr(signal, "SIGTERM")
            and threading.current_thread() is threading.main_thread()
        )
        if on_main:
            previous_term = signal.signal(
                signal.SIGTERM, lambda signum, frame: coordinator.request_stop()
            )
        try:
            outcome = coordinator.serve()
        finally:
            if on_main:
                signal.signal(signal.SIGTERM, previous_term)
            if self.options.fleet_trace is not None:
                # Even a poisoned or stopped sweep leaves a trace — that
                # is when you want the timeline most.
                try:
                    coordinator.write_fleet_trace(self.options.fleet_trace)
                except OSError as exc:  # observability must not mask the run
                    print(f"fleet trace not written: {exc}", file=sys.stderr)
            coordinator.stop()
            self._coordinator = None
        for index, (value, snapshot) in outcome.results.items():
            values[index] = value
            snapshots[index] = snapshot
            if cache is not None and keys.get(index) is not None:
                cache.store(keys[index], value, snapshot,
                            meta={"label": points[index].label})
        report.computed = outcome.executed
        report.replayed = outcome.replayed
        report.reclaims = outcome.reclaims
        report.requeues = outcome.requeues
        report.retried += outcome.requeues
        if len(outcome.results) < len(pending):
            # serve() returned early (request_stop): surface the gap
            # rather than handing back _UNSET placeholders.
            missing = [i for i, _ in pending if i not in outcome.results]
            raise SweepError(
                f"distributed sweep stopped with {len(missing)} unfinished "
                f"points (first: {points[missing[0]].label})"
            )

    # -- service submission path --------------------------------------------
    def _run_submit(
        self, points, pending, cache, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        """SUBMIT pending points to a durable service; block until drained.

        The service owns execution (its fleet of workers), durability
        (the SQLite store — the job survives service SIGKILL/restart),
        and fair-share across tenants; this method only adapts one job
        to the engine's bookkeeping, mirroring :meth:`_run_dist`.
        """
        from repro.errors import SweepPoisonedError
        from repro.sweep.dist.service import ServiceClient
        from repro.sweep.dist.store import JOB_DONE, JOB_POISONED, JOB_TERMINAL

        keys = dict(pending)
        work = [(index, points[index]) for index, _ in pending]
        name = self.options.job_name or points[work[0][0]].label
        client = ServiceClient(self.options.submit)
        submitted = client.submit(
            name,
            work,
            tenant=self.options.tenant,
            timeout=self.options.timeout,
            retries=self.options.retries,
            capture=capture,
        )
        grid = submitted["grid"]
        if submitted.get("state") == "collected":
            # The service's retention GC ate this exact grid: the
            # tombstone keeps SUBMIT idempotent (no silent re-run), but
            # the results are gone — surface that instead of polling a
            # job that will never exist.
            raise SweepError(
                f"job {grid[:16]} was garbage-collected by the service's "
                "retention policy; its results are no longer available "
                "(change the grid, or clear the tombstone to recompute)"
            )
        progress_done = done
        last_seen = 0
        while True:
            status = client.status(grid)
            state = status.get("state")
            counts = status.get("counts", {})
            finished = int(counts.get("done", 0)) + int(counts.get("poisoned", 0))
            while last_seen < finished:
                last_seen += 1
                progress_done += 1
                emit(progress_done, name, "run")
            if state in JOB_TERMINAL:
                break
            time.sleep(0.25)
        outcome = client.results(grid, decode=True)
        if state == JOB_POISONED or outcome["poisoned"]:
            raise SweepPoisonedError(
                [
                    {
                        "label": points[index].label,
                        "index": index,
                        "failures": failures,
                    }
                    for index, failures in sorted(outcome["poisoned"].items())
                ]
            )
        if state != JOB_DONE:
            raise SweepError(
                f"submitted job {grid[:16]} ended {state!r} with "
                f"{len(pending) - len(outcome['results'])} unfinished points"
            )
        for index, (value, snapshot) in outcome["results"].items():
            values[index] = value
            snapshots[index] = snapshot
            if cache is not None and keys.get(index) is not None:
                cache.store(keys[index], value, snapshot,
                            meta={"label": points[index].label})
        missing = [i for i, _ in pending if values[i] is _UNSET]
        if missing:
            raise SweepError(
                f"service returned {len(outcome['results'])} results for "
                f"{len(pending)} submitted points (first missing: "
                f"{points[missing[0]].label})"
            )
        report.computed = len(pending)

    @property
    def _serve_host(self) -> str:
        from repro.sweep.dist.protocol import parse_hostport

        return parse_hostport(self.options.serve)[0]

    @property
    def _serve_port(self) -> int:
        from repro.sweep.dist.protocol import parse_hostport

        return parse_hostport(self.options.serve)[1]


def default_parallelism() -> int:
    """A sensible ``--parallel auto`` value: the machine's core count."""
    return max(1, os.cpu_count() or 1)
