"""The sweep engine: serial or process-parallel execution of point grids.

Execution contract (what the bit-identical regression tests rely on):

* **Determinism** — every point is an independent deterministic
  computation of its kwargs (the DES guarantees this for simulated
  runs), so values do not depend on worker count, completion order, or
  cache state. The engine returns values in *point order*, never
  completion order, and merges telemetry snapshots in point order too.
* **Serial fast path** — with default options (no parallelism, no
  cache) a point's function is called in-process with the parent
  telemetry hub, which is byte-for-byte the code path the experiment
  drivers used before this layer existed.
* **Worker path** — with ``parallel > 1`` (or a cache), each point runs
  with its own :class:`~repro.telemetry.hub.Telemetry` hub; the engine
  ships back a :class:`~repro.telemetry.snapshot.TelemetrySnapshot` and
  folds it into the parent hub, so one trace/metrics document still
  covers the whole sweep.
* **Faults** — a point failure raising an exception whose class is
  marked ``retryable`` (see :mod:`repro.errors`) is re-attempted up to
  ``retries`` times; terminal failures surface as
  :class:`~repro.errors.SweepPointError` naming the grid cell. Per-point
  wall-clock ``timeout`` is enforced *inside* worker processes (via
  ``SIGALRM``), so a wedged point converts into a retryable
  :class:`~repro.errors.SweepTimeoutError` instead of hanging the sweep.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.errors import SweepError, SweepPointError, SweepTimeoutError
from repro.sweep.cache import CacheStats, ResultCache
from repro.sweep.point import SweepPoint, points_from_grid

#: Progress callback signature: (done_count, total, label, source) where
#: source is "cache", "run", or "retry".
ProgressFn = Callable[[int, int, str, str], None]

_UNSET = object()


@dataclass
class SweepOptions:
    """How a sweep executes (not *what* it computes — that's the points).

    Defaults reproduce the historical serial driver behaviour exactly.
    """

    #: Worker processes; <= 1 means run in-process (serial).
    parallel: int = 1
    #: Result-cache directory; None disables caching.
    cache_dir: Optional[str | Path] = None
    #: Per-point wall-clock seconds before a worker aborts the attempt
    #: with a retryable SweepTimeoutError. None = unlimited. Enforced in
    #: worker processes only (the serial path cannot safely interrupt).
    timeout: Optional[float] = None
    #: Additional attempts granted to retryable point failures.
    retries: int = 1
    #: Live progress callback (see ProgressFn); None = silent.
    progress: Optional[ProgressFn] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise SweepError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise SweepError(f"timeout must be positive, got {self.timeout}")


@dataclass
class SweepReport:
    """What one engine run produced, beyond the values themselves."""

    values: list[Any] = field(default_factory=list)
    n_points: int = 0
    computed: int = 0  # points actually executed (not cache-served)
    retried: int = 0
    cache: Optional[CacheStats] = None

    @property
    def from_cache(self) -> int:
        return self.n_points - self.computed


def _execute_point(point: SweepPoint, capture: bool):
    """Run one point; return (value, telemetry snapshot or None)."""
    hub = None
    if capture and point.telemetry:
        from repro.telemetry.hub import Telemetry

        hub = Telemetry()
    value = point.call(telemetry=hub)
    snapshot = hub.snapshot() if hub is not None else None
    return value, snapshot


def _worker(point: SweepPoint, capture: bool, timeout: Optional[float]):
    """Process-pool entry: point execution under an optional SIGALRM."""
    if not timeout:
        return _execute_point(point, capture)
    import signal

    if not hasattr(signal, "setitimer"):  # pragma: no cover - non-POSIX
        return _execute_point(point, capture)

    def _on_alarm(signum, frame):
        raise SweepTimeoutError(point.label, timeout)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        return _execute_point(point, capture)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _is_retryable(exc: BaseException) -> bool:
    return bool(getattr(exc, "retryable", False))


class SweepEngine:
    """Executes :class:`SweepPoint` lists under one :class:`SweepOptions`."""

    def __init__(
        self,
        options: Optional[SweepOptions] = None,
        telemetry=None,
    ) -> None:
        self.options = options or SweepOptions()
        self.telemetry = telemetry

    # -- public API --------------------------------------------------------
    def run(self, points: Sequence[SweepPoint], telemetry=None) -> SweepReport:
        """Execute every point; values come back in point order.

        ``telemetry`` (or the engine's hub) receives every point's
        spans/instants/metrics — live on the serial no-cache path,
        merged from per-worker snapshots otherwise — plus engine-level
        ``sweep.*`` counters.
        """
        hub = telemetry if telemetry is not None else self.telemetry
        points = list(points)
        report = SweepReport(n_points=len(points))
        if not points:
            return report

        cache = (
            ResultCache(self.options.cache_dir) if self.options.cache_dir else None
        )
        values: list[Any] = [_UNSET] * len(points)
        snapshots: list[Any] = [None] * len(points)
        total = len(points)
        done = 0

        def emit(done_count: int, label: str, source: str) -> None:
            if self.options.progress is not None:
                self.options.progress(done_count, total, label, source)

        # 1. Serve whatever the cache already has.
        pending: list[tuple[int, Optional[str]]] = []
        for index, point in enumerate(points):
            if cache is None:
                pending.append((index, None))
                continue
            key = cache.key_for(point)
            entry = cache.lookup(key)
            if entry is None:
                pending.append((index, key))
            else:
                values[index] = entry["value"]
                snapshots[index] = entry["snapshot"]
                done += 1
                emit(done, point.label, "cache")

        # 2. Compute the rest, serially or across the pool.
        #    Snapshot capture is needed whenever results leave this
        #    process (workers) or outlive it (cache entries).
        capture = hub is not None or cache is not None
        if pending:
            if self.options.parallel <= 1:
                self._run_serial(
                    points, pending, cache, hub, capture, values, snapshots, report,
                    done, emit,
                )
            else:
                self._run_pool(
                    points, pending, cache, capture, values, snapshots, report,
                    done, emit,
                )
            report.computed = len(pending)

        # 3. Deterministic telemetry merge, in point order.
        if hub is not None:
            for snapshot in snapshots:
                hub.merge(snapshot)
            hub.metrics.counter("sweep.points").inc(len(points))
            hub.metrics.counter("sweep.points.computed").inc(report.computed)
            if cache is not None:
                hub.metrics.counter("sweep.cache.hits").inc(cache.stats.hits)
                hub.metrics.counter("sweep.cache.misses").inc(cache.stats.misses)

        report.values = values
        report.cache = cache.stats if cache is not None else None
        return report

    def map(
        self,
        func: Callable,
        cells: Iterable[Mapping[str, Any]],
        *,
        telemetry=None,
        telemetry_points: Optional[Sequence[bool]] = None,
        label: Optional[Callable[[Mapping[str, Any]], str]] = None,
    ) -> list[Any]:
        """Run ``func`` over grid cells; returns values in cell order.

        ``telemetry_points`` selects which cells get the telemetry
        keyword injected (default: all of them when a hub is present).
        """
        cells = [dict(c) for c in cells]
        hub = telemetry if telemetry is not None else self.telemetry
        if telemetry_points is None:
            flags = [hub is not None] * len(cells)
        else:
            flags = list(telemetry_points)
            if len(flags) != len(cells):
                raise SweepError(
                    f"telemetry_points has {len(flags)} flags for {len(cells)} cells"
                )
        points = points_from_grid(func, cells, label=label)
        points = [
            SweepPoint(func=p.func, kwargs=p.kwargs, label=p.label, telemetry=flag)
            for p, flag in zip(points, flags)
        ]
        return self.run(points, telemetry=hub).values

    # -- serial path -------------------------------------------------------
    def _run_serial(
        self, points, pending, cache, hub, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        for index, key in pending:
            point = points[index]
            attempts = self.options.retries + 1
            while True:
                attempts -= 1
                try:
                    if cache is None and hub is not None:
                        # Historical driver path: record live into the
                        # parent hub (spans nest under any open spans).
                        value, snapshot = point.call(telemetry=hub), None
                    else:
                        value, snapshot = _execute_point(point, capture)
                    break
                except Exception as exc:
                    if attempts > 0 and _is_retryable(exc):
                        report.retried += 1
                        emit(done, point.label, "retry")
                        continue
                    raise SweepPointError(point.label, exc) from exc
            values[index] = value
            snapshots[index] = snapshot
            if cache is not None and key is not None:
                cache.store(key, value, snapshot, meta={"label": point.label})
            done += 1
            emit(done, point.label, "run")

    # -- pool path ---------------------------------------------------------
    def _run_pool(
        self, points, pending, cache, capture, values, snapshots, report,
        done, emit,
    ) -> None:
        max_workers = max(1, min(self.options.parallel, len(pending)))
        attempts_left = {index: self.options.retries for index, _ in pending}
        keys = dict(pending)
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(
                    _worker, points[index], capture, self.options.timeout
                ): index
                for index, _ in pending
            }
            while futures:
                finished, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    index = futures.pop(future)
                    point = points[index]
                    try:
                        value, snapshot = future.result()
                    except Exception as exc:
                        if attempts_left[index] > 0 and _is_retryable(exc):
                            attempts_left[index] -= 1
                            report.retried += 1
                            emit(done, point.label, "retry")
                            futures[
                                pool.submit(
                                    _worker, point, capture, self.options.timeout
                                )
                            ] = index
                            continue
                        for open_future in futures:
                            open_future.cancel()
                        raise SweepPointError(point.label, exc) from exc
                    values[index] = value
                    snapshots[index] = snapshot
                    if cache is not None and keys.get(index) is not None:
                        cache.store(
                            keys[index], value, snapshot, meta={"label": point.label}
                        )
                    done += 1
                    emit(done, point.label, "run")


def default_parallelism() -> int:
    """A sensible ``--parallel auto`` value: the machine's core count."""
    return max(1, os.cpu_count() or 1)
