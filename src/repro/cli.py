"""Command-line interface: run mini-apps without writing Python.

Subcommands::

    python -m repro kernels                 # list registered kernels
    python -m repro run --config app.json   # real-mode mini-app from JSON
    python -m repro simulate --pattern one-to-one --backend dragon \
        --nodes 64 --size-mb 4              # sim-mode what-if study
    python -m repro sweep fig3 --quick --parallel 4 \
        --cache-dir .sweep-cache            # cached parallel experiment sweep
    python -m repro bench --quick           # perf baseline -> BENCH_<date>.json
    python -m repro trace-summary out.json  # top-k slowest spans per component

Observability: ``run`` and ``simulate`` accept ``--trace out.json``
(Chrome trace-event file — open in https://ui.perfetto.dev or
chrome://tracing) and ``--metrics metrics.json`` (counter/gauge/histogram
registry dump with p50/p95/p99). ``simulate --json`` prints the whole
run summary as one JSON object for scripting.

Fault injection: ``simulate --fault-plan plan.json`` replays the plan's
faults through the DES (deterministic under the plan's seed) and reports
recovery/retry/data-loss counters; ``run --fault-plan`` projects the
plan's stochastic entries onto per-operation chaos probabilities for the
real backends. ``chaos`` runs the full seeded sweep (fault rate x
backend x pattern) of :mod:`repro.experiments.ext_faults`.

Sweep execution: ``sweep`` regenerates any experiment through the
parallel sweep engine (:mod:`repro.sweep`) with live progress on stderr;
``--parallel N`` fans grid points across worker processes and
``--cache-dir DIR`` serves repeated points from the content-addressed
result cache. Rendered output is bit-identical to the serial path for a
fixed seed, whatever the worker count.

Fleet observability (all passive — rendered sweep output stays
bit-identical with every layer on): a serving sweep takes
``--fleet-trace out.json`` (one merged Chrome trace: coordinator lease
spans + every worker's execution spans on named tracks) and
``--flight-recorder dump.json`` (postmortem ring of recent protocol
events; workers accept the same flag). ``sweep --watch HOST:PORT``
attaches a read-only live console to a running coordinator.
``--log-json FILE`` / ``--log-level`` emit structured JSONL logs from
the coordinator/worker/engine layers.

The ``run`` config format::

    {
      "server": {"backend": "dragon", "n_shards": 2},
      "pattern": "one-to-one",
      "one_to_one": {
        "train_iterations": 50, "write_interval": 10, "read_interval": 5,
        "sim_iter_time": 0.004, "ai_iter_time": 0.006
      }
    }
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.errors import ConfigError


def _make_telemetry(args: argparse.Namespace):
    """A Telemetry hub when --trace/--metrics was requested, else None."""
    if not (getattr(args, "trace", "") or getattr(args, "metrics", "")):
        return None
    from repro.telemetry import Telemetry

    return Telemetry()


def _save_telemetry(telemetry, args: argparse.Namespace, quiet: bool = False) -> None:
    if telemetry is None:
        return
    if args.trace:
        n = telemetry.save_trace(args.trace)
        if not quiet:
            print(f"trace written to {args.trace} ({n} events; open in Perfetto)")
    if args.metrics:
        telemetry.save_metrics(args.metrics)
        if not quiet:
            print(f"metrics written to {args.metrics}")


def _load_fault_plan(args: argparse.Namespace):
    """The FaultPlan named by --fault-plan, or None."""
    path = getattr(args, "fault_plan", "")
    if not path:
        return None
    from repro.faults import FaultPlan

    return FaultPlan.load(path)


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.kernels import kernel_class, list_kernels

    rows = []
    for category in ("compute", "io", "collective", "copy"):
        for name in list_kernels(category=category):
            doc = (kernel_class(name).__doc__ or "").strip().splitlines()[0]
            rows.append((category, name, doc))
    print(format_table(["category", "kernel", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.telemetry import EventKind, event_counts, iteration_time_summary
    from repro.transport import ServerManager
    from repro.workloads import RealOneToOneConfig, run_one_to_one_real

    with open(args.config, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ConfigError("run config must be a JSON object")
    pattern = spec.get("pattern", "one-to-one")
    if pattern != "one-to-one":
        raise ConfigError(
            f"unsupported real-mode pattern {pattern!r} (supported: one-to-one; "
            "use 'simulate' for scaled many-to-one studies)"
        )
    server_spec = spec.get("server", {"backend": "node-local"})
    if getattr(args, "shards", 0):
        server_spec = {**server_spec, "n_shards": args.shards}
    run_spec = spec.get("one_to_one", {})
    config = RealOneToOneConfig(**run_spec)
    telemetry = _make_telemetry(args)
    plan = _load_fault_plan(args)

    with ServerManager("stage", config=server_spec) as server:
        server_info = dict(server.get_server_info())
        if plan is not None and plan.is_active:
            # Real runs cannot replay virtual-time windows: project the
            # plan onto per-op chaos probabilities, with retries on top.
            server_info["chaos"] = {**plan.client_probabilities(), "seed": plan.seed}
            server_info["resilience"] = {"seed": plan.seed}
        result = run_one_to_one_real(server_info, config, telemetry=telemetry)

    print(f"pattern: one-to-one, backend: {server_spec.get('backend')}")
    print(f"simulation iterations: {result.sim_iterations}")
    print(f"snapshots written/read: {result.snapshots_written}/{result.snapshots_read}")
    if result.snapshots_lost or result.failed_ingests:
        print(
            f"degraded: {result.snapshots_lost} snapshots lost, "
            f"{result.failed_ingests} failed ingests"
        )
    print(f"final loss: {result.final_loss:.4f}")
    for component, kind in (("sim", EventKind.COMPUTE), ("train", EventKind.TRAIN)):
        s = iteration_time_summary(result.log, component, kind)
        counts = event_counts(result.log, component)
        print(
            f"{component}: {counts['timestep']} steps, "
            f"{counts['data_transport']} transport events, "
            f"iter {s.mean * 1e3:.2f} ± {s.std * 1e3:.2f} ms "
            f"(p50 {s.p50 * 1e3:.2f}, p95 {s.p95 * 1e3:.2f}, p99 {s.p99 * 1e3:.2f})"
        )
    if args.events_out:
        result.log.save(args.events_out)
        print(f"event log written to {args.events_out}")
    _save_telemetry(telemetry, args)
    return 0


def _simulate_one_to_one(args, model, telemetry, fault_plan=None):
    from repro.experiments.common import pattern1_context
    from repro.transport.models import MB
    from repro.workloads import OneToOneConfig, run_one_to_one

    nbytes = args.size_mb * MB
    return run_one_to_one(
        model,
        OneToOneConfig(train_iterations=args.iterations, snapshot_nbytes=nbytes),
        ctx=pattern1_context(args.nodes),
        telemetry=telemetry,
        fault_plan=fault_plan,
        shards=getattr(args, "shards", 1),
    )


def _simulate_many_to_one(args, model, telemetry, fault_plan=None):
    from repro.transport.models import MB, TransportOpContext
    from repro.workloads import ManyToOneConfig, run_many_to_one

    nbytes = args.size_mb * MB
    n_sims = args.nodes - 1
    n_clients = n_sims + min(12, n_sims)
    return run_many_to_one(
        model,
        ManyToOneConfig(
            n_simulations=n_sims,
            train_iterations=args.iterations,
            snapshot_nbytes=nbytes,
        ),
        write_ctx=TransportOpContext(
            local=True, clients_per_server=12, concurrent_clients=n_clients
        ),
        read_ctx=TransportOpContext(
            local=False,
            clients_per_server=12,
            fan_in=n_sims,
            concurrent_peers=min(12, n_sims),
            concurrent_clients=n_clients,
        ),
        telemetry=telemetry,
        fault_plan=fault_plan,
        shards=getattr(args, "shards", 1),
    )


def _simulate_summary(args, result) -> dict:
    """The machine-readable run summary (simulate --json)."""
    from repro.des import default_core
    from repro.telemetry import EventKind, mean_throughput, mean_transport_time
    from repro.telemetry.stats import Summary

    transport = {}
    for kind in (EventKind.WRITE, EventKind.READ):
        durations = result.log.filter(kind=kind).durations()
        transport[kind.value] = {
            "throughput_bytes_per_s": mean_throughput(result.log, kind),
            "mean_seconds": mean_transport_time(result.log, kind),
            "time_seconds": Summary.of(durations).as_dict(),
        }
    iteration = {}
    for component, kind in (("sim", EventKind.COMPUTE), ("train", EventKind.TRAIN)):
        comps = [c for c in result.log.components() if c.startswith(component)]
        durations = []
        for comp in comps:
            durations.extend(result.log.filter(component=comp, kind=kind).durations())
        iteration[component] = Summary.of(durations).as_dict()
    return {
        "pattern": args.pattern,
        "backend": args.backend,
        "nodes": args.nodes,
        "size_mb": args.size_mb,
        "iterations": args.iterations,
        "shards": getattr(args, "shards", 1),
        "des_core": default_core(),
        "makespan_seconds": result.makespan,
        "sim_iterations": result.sim_iterations,
        "train_iterations": result.train_iterations,
        "snapshots_written": result.snapshots_written,
        "snapshots_read": result.snapshots_read,
        "iteration_time_seconds": iteration,
        "transport": transport,
        "resilience": result.resilience,
    }


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.analysis import format_summary_table
    from repro.des import set_default_core
    from repro.experiments.common import backend_models
    from repro.telemetry import EventKind
    from repro.telemetry.stats import Summary, mean_throughput, runtime_per_iteration
    from repro.transport.models import DaosBackendModel, StreamingBackendModel

    models = dict(backend_models())
    models["streaming"] = StreamingBackendModel()
    models["daos"] = DaosBackendModel()
    try:
        model = models[args.backend]
    except KeyError:
        raise ConfigError(
            f"unknown backend {args.backend!r}; options {sorted(models)}"
        ) from None
    telemetry = _make_telemetry(args)
    fault_plan = _load_fault_plan(args)
    if getattr(args, "des_core", None):
        set_default_core(args.des_core)

    if args.pattern == "one-to-one":
        result = _simulate_one_to_one(args, model, telemetry, fault_plan)
    else:
        result = _simulate_many_to_one(args, model, telemetry, fault_plan)

    if args.json:
        print(json.dumps(_simulate_summary(args, result), sort_keys=True))
        _save_telemetry(telemetry, args, quiet=True)
        return 0

    if args.pattern == "one-to-one":
        print(
            f"one-to-one on {args.nodes} nodes, {args.size_mb} MB, backend {args.backend}:"
        )
        print(f"  makespan: {result.makespan:.2f} s")
        print(
            f"  write throughput/process: "
            f"{mean_throughput(result.log, EventKind.WRITE) / 1e9:.3f} GB/s"
        )
        print(
            f"  read throughput/process:  "
            f"{mean_throughput(result.log, EventKind.READ) / 1e9:.3f} GB/s"
        )
    else:
        runtime = runtime_per_iteration(
            result.log.filter(component="train"), "train", args.iterations
        )
        n_sims = args.nodes - 1
        print(
            f"many-to-one on {args.nodes} nodes ({n_sims} sims), {args.size_mb} MB, "
            f"backend {args.backend}:"
        )
        print(f"  training runtime per iteration: {runtime * 1e3:.2f} ms")
        print(f"  makespan: {result.makespan:.2f} s")
    summaries = {
        kind.value: Summary.of(result.log.filter(kind=kind).durations())
        for kind in (EventKind.WRITE, EventKind.READ)
    }
    print(
        format_summary_table(
            summaries, title="transport time percentiles", unit_scale=1e3, unit="ms"
        )
    )
    if result.resilience is not None:
        print("resilience report:")
        print(json.dumps(result.resilience, indent=2, sort_keys=True))
    _save_telemetry(telemetry, args)
    return 0


class _SweepProgress:
    """Live per-point progress on stderr; tallies how each point was served."""

    def __init__(self, stream=None):
        import sys

        self.stream = stream if stream is not None else sys.stderr
        self.cached = 0
        self.computed = 0
        self.retried = 0
        self.replayed = 0  # restored from a distributed crash-recovery journal
        self.stolen = 0  # leases reclaimed from silent distributed workers

    @property
    def total_points(self) -> int:
        return self.cached + self.computed + self.replayed

    def __call__(self, done: int, total: int, label: str, source: str) -> None:
        if source == "cache":
            self.cached += 1
        elif source == "retry":
            self.retried += 1
        elif source == "journal":
            self.replayed += 1
        elif source == "steal":
            self.stolen += 1
        else:
            self.computed += 1
        interactive = getattr(self.stream, "isatty", lambda: False)()
        end = "\n" if (not interactive or done == total) else "\r"
        line = f"[{done}/{total}] {label} ({source})"
        if interactive:
            line = line.ljust(79)
        print(line, end=end, file=self.stream, flush=True)

    def summary(self, name: str, elapsed: float) -> str:
        parts = [f"{self.total_points} points", f"{self.cached} cached"]
        if self.total_points:
            parts[-1] += f" ({100.0 * self.cached / self.total_points:.0f}%)"
        parts.append(f"{self.computed} computed")
        if self.replayed:
            parts.append(f"{self.replayed} replayed")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        if self.retried:
            parts.append(f"{self.retried} retried")
        return f"sweep {name}: " + ", ".join(parts) + f" in {elapsed:.1f}s"


#: First positional tokens that turn ``repro sweep`` into a store
#: maintenance command instead of an experiment run.
_MAINTENANCE_VERBS = ("query", "usage", "gc", "health")


def _validate_sweep_args(args: argparse.Namespace) -> None:
    if args.cache_info:
        if not args.cache_dir:
            raise ConfigError("--cache-info needs --cache-dir to inspect")
        return
    if args.migrate_history:
        if not args.cache_dir:
            raise ConfigError("--migrate-history needs --cache-dir to import")
        return
    if args.experiments and args.experiments[0] in _MAINTENANCE_VERBS:
        verb = args.experiments[0]
        if len(args.experiments) > 1:
            raise ConfigError(
                f"'{verb}' takes flags, not positional arguments: "
                f"{args.experiments[1:]}"
            )
        if bool(args.store) == bool(args.at):
            raise ConfigError(
                f"'{verb}' needs exactly one of --store FILE (read a store "
                "file) or --at HOST:PORT (ask a running service)"
            )
        if args.serve or args.connect or args.watch or args.submit or args.service:
            raise ConfigError(
                f"'{verb}' is a maintenance command; it cannot combine with "
                "--serve/--connect/--submit/--service/--watch"
            )
        if verb != "gc" and (
            args.max_age is not None
            or args.keep_latest is not None
            or args.apply
        ):
            raise ConfigError("--max-age/--keep-latest/--apply only apply to gc")
        if verb != "query" and args.fingerprint:
            raise ConfigError("--fingerprint only applies to query")
        if verb == "health" and (args.name or args.tenant or args.since is not None):
            raise ConfigError(
                "health reports the whole service; --name/--tenant/--since "
                "only apply to query/usage/gc"
            )
        return
    if args.at:
        raise ConfigError("--at only applies to query/usage/gc/health")
    if args.fingerprint or args.apply or args.max_age is not None \
            or args.keep_latest is not None:
        raise ConfigError(
            "--fingerprint/--max-age/--keep-latest/--apply only apply to "
            "the query/usage/gc maintenance commands"
        )
    if args.service:
        if not args.store:
            raise ConfigError(
                "--service needs --store FILE: durability across restarts "
                "is the point of the service"
            )
        if args.serve or args.connect or args.watch or args.submit:
            raise ConfigError(
                "--service runs standalone; it cannot also --serve, "
                "--connect, --submit, or --watch"
            )
        if args.experiments:
            raise ConfigError(
                "--service takes no experiment names: tenants SUBMIT grids "
                "to it (sweep --submit HOST:PORT ...)"
            )
        return
    if args.store:
        raise ConfigError(
            "--store only applies to --service/--migrate-history and the "
            "query/usage/gc/health maintenance commands"
        )
    if (
        args.max_live_jobs is not None
        or args.max_queued_points is not None
        or args.max_store_mb is not None
        or args.max_connections is not None
    ):
        raise ConfigError(
            "--max-live-jobs/--max-queued-points/--max-store-mb/"
            "--max-connections only apply to --service (admission control "
            "is enforced where grids are accepted)"
        )
    if args.watch:
        if args.serve or args.connect:
            raise ConfigError(
                "--watch is a read-only observer; it cannot also --serve "
                "or --connect"
            )
        if args.experiments:
            raise ConfigError(
                "--watch takes no experiment names: it attaches to a "
                "running coordinator"
            )
        return
    if args.connect:
        if args.serve or args.submit:
            raise ConfigError(
                "--connect and --serve/--submit are mutually exclusive"
            )
        if args.experiments:
            raise ConfigError(
                "--connect takes no experiment names: workers claim their "
                "points from the coordinator"
            )
        if args.fleet_trace:
            raise ConfigError(
                "--fleet-trace only applies to --serve (the coordinator "
                "merges the fleet's spans)"
            )
        return
    if args.submit:
        if args.serve:
            raise ConfigError(
                "--submit and --serve are mutually exclusive: submit hands "
                "the grid to an already-running service"
            )
        if args.parallel > 1:
            raise ConfigError(
                "--submit and --parallel are mutually exclusive: the "
                "service's workers do the computing"
            )
    elif args.tenant:
        raise ConfigError("--tenant only applies to --submit")
    if not args.experiments:
        raise ConfigError("name at least one experiment (or 'all')")
    if args.serve and args.parallel > 1:
        raise ConfigError(
            "--serve and --parallel are mutually exclusive: a serving sweep "
            "delegates execution to remote workers"
        )
    if (args.journal or args.lease is not None) and not args.serve:
        raise ConfigError("--journal/--lease only apply to --serve")
    if (args.fleet_trace or args.flight_recorder) and not args.serve:
        raise ConfigError(
            "--fleet-trace/--flight-recorder only apply to --serve "
            "(or --connect, for a worker-side flight recorder)"
        )


def _cmd_cache_info(args: argparse.Namespace) -> int:
    """``sweep --cache-info``: entry count, bytes, and hit-rate history."""
    from repro.sweep.cache import ResultCache

    info = ResultCache(args.cache_dir).info()
    print(f"cache {info['directory']}:")
    print(f"  entries: {info['entries']}")
    mb = info["total_bytes"] / (1024.0 * 1024.0)
    print(f"  total size: {mb:.2f} MB (largest entry {info['largest_bytes']} B)")
    if info["entries"]:
        print(
            f"  entry age: {info['newest_age_seconds']:.0f}s (newest) to "
            f"{info['oldest_age_seconds']:.0f}s (oldest)"
        )
    history = info["history"]
    if history:
        print(f"  hit-rate history (last {len(history)} runs):")
        for record in history:
            print(
                f"    {record.get('hits', 0)} hits / {record.get('misses', 0)} "
                f"misses ({100.0 * record.get('hit_rate', 0.0):.0f}%), "
                f"{record.get('stores', 0)} stores"
            )
    else:
        print("  hit-rate history: (none recorded yet)")
    return 0


def _cmd_migrate_history(args: argparse.Namespace) -> int:
    """``sweep --migrate-history``: JSONL history + journals -> SQLite.

    One-shot and idempotent: journals import by grid signature (already-
    present jobs are skipped) and the imported ``history.jsonl`` is
    renamed ``history.jsonl.imported`` so a re-run cannot double-count.
    """
    from pathlib import Path

    from repro.sweep.dist.store import STORE_FILENAME, SweepStore, migrate_cache_dir

    cache_dir = Path(args.cache_dir)
    store_path = Path(args.store) if args.store else cache_dir / STORE_FILENAME
    store = SweepStore(store_path)
    try:
        counts = migrate_cache_dir(
            store, cache_dir, journal_dirs=[args.journal] if args.journal else []
        )
    finally:
        store.close()
    history_jsonl = cache_dir / "history.jsonl"
    if counts["history"] and history_jsonl.exists():
        history_jsonl.rename(history_jsonl.with_suffix(".jsonl.imported"))
    print(
        f"migrated {counts['history']} history records and "
        f"{counts['journals']} journal(s) into {store_path}"
    )
    return 0


def _maintenance_reports(args: argparse.Namespace, verb: str) -> dict:
    """Produce the query/usage/gc report dict from a file or a service.

    ``--at HOST:PORT`` asks a running service (the only safe way to
    *apply* GC while one is up — its writer thread owns the store);
    ``--store FILE`` reads the SQLite file directly through a read-only
    :class:`~repro.sweep.dist.query.ReaderPool`, except ``gc --apply``,
    which opens the store read-write and must not race a live service.
    ``health --at`` returns the service's live HEALTH document;
    ``health --store`` degrades to a file-level report (schema version,
    used bytes, job states) for a store with no service attached.
    """
    if args.at:
        from repro.sweep.dist.service import ServiceClient

        client = ServiceClient(args.at)
        if verb == "health":
            return client.health()
        if verb == "query":
            return client.query(
                fingerprint=args.fingerprint or None,
                name=args.name or None,
                tenant=args.tenant or None,
            )
        if verb == "usage":
            return client.usage(tenant=args.tenant or None, since=args.since)
        return client.gc(
            max_age_seconds=args.max_age,
            keep_latest=args.keep_latest,
            tenant=args.tenant or None,
            name=args.name or None,
            lease_grace=args.lease_grace,
            dry_run=not args.apply,
        )

    from repro.sweep.dist.query import (
        ReaderPool,
        RetentionPolicy,
        divergences,
        gc_plan,
        query_fingerprint,
        run_gc,
        usage,
    )

    if verb == "health":
        # No service attached: the live sections (queues, admission,
        # brownout state) do not exist, so report what the file alone
        # can prove — schema vintage, real byte usage, job states.
        with ReaderPool(args.store) as pool, pool.connection() as conn:
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            page_size = int(conn.execute("PRAGMA page_size").fetchone()[0])
            page_count = int(conn.execute("PRAGMA page_count").fetchone()[0])
            freelist = int(conn.execute("PRAGMA freelist_count").fetchone()[0])
            states = {
                state: int(count)
                for state, count in conn.execute(
                    "SELECT state, COUNT(*) FROM jobs GROUP BY state"
                ).fetchall()
            }
            tenants = {
                tenant: int(count)
                for tenant, count in conn.execute(
                    "SELECT tenant, COUNT(*) FROM jobs GROUP BY tenant"
                ).fetchall()
            }
        return {
            "source": "store-file",
            "store": {
                "path": str(args.store),
                "schema_version": int(row[0]) if row else None,
                "bytes": max(0, page_count - freelist) * page_size,
            },
            "jobs": {"by_state": states, "by_tenant": tenants},
        }

    if verb == "gc":
        policy = RetentionPolicy(
            max_age_seconds=args.max_age,
            keep_latest=args.keep_latest,
            tenant=args.tenant or None,
            name=args.name or None,
            lease_grace=args.lease_grace,
        )
        if not args.apply:
            with ReaderPool(args.store) as pool:
                planned = gc_plan(pool, policy)
            return {
                "policy": policy.describe(),
                "dry_run": True,
                "planned": planned,
                "collected": [],
                "refused": [],
            }
        from repro.sweep.dist.store import SweepStore

        store = SweepStore(args.store)
        try:
            return run_gc(store, policy, dry_run=False)
        finally:
            store.close()

    with ReaderPool(args.store) as pool:
        if verb == "query":
            rows = query_fingerprint(
                pool,
                fingerprint=args.fingerprint or None,
                name=args.name or None,
                tenant=args.tenant or None,
            )
            return {
                "rows": rows,
                "divergences": divergences(
                    pool,
                    fingerprint=args.fingerprint or None,
                    name=args.name or None,
                    tenant=args.tenant or None,
                ),
            }
        return usage(pool, tenant=args.tenant or None, since=args.since)


def _print_table(rows: list, columns: list) -> None:
    """Minimal aligned text table: ``columns`` is [(header, key), ...]."""
    if not rows:
        print("  (none)")
        return
    cells = [
        [str(row.get(key, "") if row.get(key) is not None else "") for _, key in columns]
        for row in rows
    ]
    widths = [
        max(len(header), *(len(line[i]) for line in cells))
        for i, (header, _) in enumerate(columns)
    ]
    print("  " + "  ".join(h.ljust(w) for (h, _), w in zip(columns, widths)))
    for line in cells:
        print("  " + "  ".join(v.ljust(w) for v, w in zip(line, widths)))


def _print_health(report: dict) -> int:
    """Human rendering of a HEALTH document (service or store-file).

    Exit 0 when the service reports ``ready``, 1 otherwise (brownout,
    draining, degraded probe) — so the verb doubles as a scriptable
    liveness check: ``repro sweep health --at HOST:PORT && deploy``.
    """
    store = report.get("store", {})
    if report.get("source") == "store-file":
        print(f"store file {store.get('path')}:")
        print(f"  schema: v{store.get('schema_version')}")
        print(f"  used bytes: {store.get('bytes', 0)}")
        jobs = report.get("jobs", {})
        for title, key in (("jobs by state", "by_state"),
                           ("jobs by tenant", "by_tenant")):
            section = jobs.get(key, {})
            body = ", ".join(
                f"{k or '(default)'}={v}" for k, v in sorted(section.items())
            )
            print(f"  {title}: {body or '(none)'}")
        print("  (no service attached: live queue/admission state unavailable)")
        return 0
    state = str(report.get("state", "?"))
    print(f"service state: {state.upper()}")
    if report.get("degraded"):
        print("  (degraded probe: dispatch lock busy, per-tenant detail omitted)")
    print(
        f"  store: {store.get('path')} "
        f"writable={store.get('writable')} bytes={store.get('bytes')} "
        f"write-latency={float(store.get('write_latency_s') or 0.0) * 1e3:.1f}ms"
    )
    queues = report.get("queues", {})
    print(
        f"  queues: dispatch {queues.get('dispatch_waiting', 0)}"
        f"/{queues.get('dispatch_limit', '-')} waiting, "
        f"{queues.get('shed_commands', 0)} shed; connections "
        f"{queues.get('connections', 0)}/{queues.get('max_connections', '-')} "
        f"({queues.get('refused_connections', 0)} refused, "
        f"{queues.get('idle_disconnects', 0)} idle-closed, "
        f"{queues.get('stalled_disconnects', 0)} stall-closed)"
    )
    admission = report.get("admission", {})
    refusals = admission.get("refusals", {})
    body = ", ".join(f"{k}={v}" for k, v in sorted(refusals.items()))
    print(
        f"  admission: {admission.get('busy_refusals', 0)} refusals"
        + (f" ({body})" if body else "")
    )
    cause = admission.get("brownout_cause")
    if cause:
        print(f"  brownout cause: {cause}")
    tenants = report.get("tenants")
    if tenants:
        print("  per-tenant headroom:")
        for tenant in sorted(tenants):
            entry = tenants[tenant]
            headroom = entry.get("headroom", {})
            hints = ", ".join(
                f"{axis}={'inf' if left is None else left}"
                for axis, left in sorted(headroom.items())
            )
            print(
                f"    {tenant or '(default)'}: "
                f"{entry.get('live_jobs', 0)} live jobs, "
                f"{entry.get('queued_points', 0)} queued points"
                + (f" ({hints} left)" if hints else "")
            )
    return 0 if state == "ready" and not report.get("degraded") else 1


def _cmd_sweep_maintenance(args: argparse.Namespace) -> int:
    """``repro sweep query|usage|gc``: the read side of the service store."""
    import json

    verb = args.experiments[0]
    report = _maintenance_reports(args, verb)
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
        return 0
    if verb == "health":
        return _print_health(report)
    if verb == "query":
        rows = [
            {
                **row,
                "fingerprint": (row.get("fingerprint") or "")[:16],
                "grid": (row.get("grid") or "")[:16],
                "value_digest": (row.get("value_digest") or "")[:16],
            }
            for row in report.get("rows", [])
        ]
        print(f"results ({len(rows)} rows):")
        _print_table(rows, [
            ("FINGERPRINT", "fingerprint"), ("GRID", "grid"), ("IDX", "idx"),
            ("STATE", "state"), ("JOB", "job_name"), ("TENANT", "tenant"),
            ("VERSION", "version"), ("JOB-STATE", "job_state"),
            ("VALUE", "value_digest"),
        ])
        flagged = report.get("divergences", [])
        if flagged:
            print(f"version divergences ({len(flagged)}):")
            for entry in flagged:
                scope = "WITHIN-version" if entry["divergent_within_version"] \
                    else "across versions"
                print(
                    f"  {entry['fingerprint'][:16]}: {entry['n_results']} "
                    f"results disagree ({scope}): "
                    + "; ".join(
                        f"{v}={[d[:12] for d in ds]}"
                        for v, ds in sorted(entry["versions"].items())
                    )
                )
        else:
            print("version divergences: none")
        return 0
    if verb == "usage":
        print("per-tenant usage (UTC days):")
        _print_table(report.get("tenants", []), [
            ("TENANT", "tenant"), ("DAY", "day"), ("DONE", "points_done"),
            ("LEASES", "leases"), ("WALL-S", "wall_seconds"),
            ("RETRIES", "retries"), ("RECLAIMS", "reclaims"),
            ("POISONED", "poisoned"), ("GRIDS", "grids"),
        ])
        cache_rows = [
            {**row, "hit_rate": f"{100.0 * row.get('hit_rate', 0.0):.0f}%"}
            for row in report.get("cache", [])
        ]
        print("cache history:")
        _print_table(cache_rows, [
            ("DAY", "day"), ("HITS", "hits"), ("MISSES", "misses"),
            ("HIT-RATE", "hit_rate"),
        ])
        return 0
    # gc
    mode = "DRY RUN (use --apply to collect)" if report.get("dry_run") else "applied"
    print(f"gc {mode}; policy {report.get('policy')}")
    planned = [
        {**row, "grid": (row.get("grid") or "")[:16]}
        for row in report.get("planned", [])
    ]
    print(f"planned ({len(planned)}):")
    _print_table(planned, [
        ("GRID", "grid"), ("JOB", "name"), ("TENANT", "tenant"),
        ("STATE", "state"), ("WHY", "why"),
    ])
    if not report.get("dry_run"):
        collected = report.get("collected", [])
        refused = report.get("refused", [])
        print(f"collected: {len(collected)}  refused: {len(refused)}")
        for entry in refused:
            print(f"  refused {entry['grid'][:16]}: {entry['refused']}")
    return 0


def _worker_flight_path(base: str, rank: int, workers: int) -> Optional[str]:
    """Per-rank flight-recorder path so fleet members never clobber."""
    if not base:
        return None
    if workers <= 1:
        return base
    from pathlib import Path

    path = Path(base)
    return str(path.with_name(f"{path.stem}-{rank}{path.suffix or '.json'}"))


def _cmd_sweep_workers(args: argparse.Namespace) -> int:
    """``sweep --connect``: run a fleet of worker processes.

    With ``--workers 1`` the agent runs in *this* process (so its PID is
    the worker's — chaos harnesses SIGKILL it directly); with more, each
    agent gets its own process and SIGTERM here drains the whole fleet.
    """
    import multiprocessing
    import signal

    from repro.sweep.dist import run_worker_process
    from repro.sweep.dist.worker import worker_process_main

    kwargs = {
        "address": args.connect,
        "seed": args.seed,
        "reconnect_budget": args.reconnect_budget,
        "poll": args.poll,
        "op_timeout": args.op_timeout,
    }
    if args.workers <= 1:
        return run_worker_process(
            **kwargs, flight_path=_worker_flight_path(args.flight_recorder, 0, 1)
        )

    context = multiprocessing.get_context("spawn")  # no inherited sockets/locks
    procs = [
        context.Process(
            # worker_process_main sys.exits with run_worker_process's
            # return value — Process ignores a target's plain return, and
            # max(exitcode) below must see worker failures as nonzero.
            target=worker_process_main,
            kwargs={
                **kwargs,
                "seed": args.seed + rank,
                "flight_path": _worker_flight_path(
                    args.flight_recorder, rank, args.workers
                ),
            },
            name=f"sweep-worker-{rank}",
        )
        for rank in range(args.workers)
    ]
    for proc in procs:
        proc.start()

    def _forward_sigterm(signum, frame):
        for proc in procs:
            if proc.is_alive() and proc.pid:
                proc.terminate()  # SIGTERM -> each agent drains gracefully

    previous = signal.signal(signal.SIGTERM, _forward_sigterm)
    try:
        for proc in procs:
            proc.join()
    finally:
        signal.signal(signal.SIGTERM, previous)
    return max((proc.exitcode or 0) for proc in procs)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import sys
    import time

    _validate_sweep_args(args)
    if args.cache_info:
        return _cmd_cache_info(args)
    if args.migrate_history:
        return _cmd_migrate_history(args)
    if args.experiments and args.experiments[0] in _MAINTENANCE_VERBS:
        return _cmd_sweep_maintenance(args)
    handler = None
    if args.log_json or args.log_level != "info":
        # Structured logging is opt-in; without it the repro logger keeps
        # its NullHandler and the sweep's output is byte-identical.
        from repro.telemetry.log import configure_logging

        handler = configure_logging(path=args.log_json or None, level=args.log_level)
    try:
        if args.watch:
            from repro.sweep.dist.watch import watch

            return watch(
                args.watch,
                reconnect_budget=args.reconnect_budget,
                seed=args.seed,
            )
        if args.service:
            from repro.sweep.dist.admission import TenantQuota
            from repro.sweep.dist.service import run_service_process

            quota = None
            if (
                args.max_live_jobs is not None
                or args.max_queued_points is not None
                or args.max_store_mb is not None
            ):
                quota = TenantQuota(
                    max_live_jobs=args.max_live_jobs,
                    max_queued_points=args.max_queued_points,
                    max_store_bytes=(
                        None
                        if args.max_store_mb is None
                        else int(args.max_store_mb * 1024 * 1024)
                    ),
                )
            kwargs = {}
            if args.max_connections is not None:
                kwargs["max_connections"] = args.max_connections
            return run_service_process(
                args.service,
                args.store,
                lease_seconds=args.lease if args.lease is not None else 5.0,
                flight_path=args.flight_recorder or None,
                quota=quota,
                seed=args.seed,
                **kwargs,
            )
        if args.connect:
            return _cmd_sweep_workers(args)
        return _cmd_sweep_serial_or_serve(args)
    finally:
        if handler is not None:
            from repro.telemetry.log import remove_handler

            remove_handler(handler)


def _cmd_sweep_serial_or_serve(args: argparse.Namespace) -> int:
    import sys
    import time

    from repro.experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS
    from repro.sweep import SweepOptions

    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    names = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in registry]
    if unknown:
        raise ConfigError(
            f"unknown experiments {unknown}; choose from {sorted(registry)}"
        )

    for name in names:
        progress = _SweepProgress()
        options = SweepOptions(
            parallel=args.parallel,
            cache_dir=args.cache_dir or None,
            progress=progress,
            serve=args.serve or None,
            journal_dir=args.journal or None,
            lease_seconds=args.lease if args.lease is not None else 5.0,
            cache_max_mb=args.cache_max_mb,
            fleet_trace=args.fleet_trace or None,
            flight_recorder=args.flight_recorder or None,
            submit=args.submit or None,
            tenant=args.tenant if args.submit else "",
            job_name=name if args.submit else None,
        )
        start = time.perf_counter()
        result = registry[name].run(quick=args.quick, sweep=options)
        elapsed = time.perf_counter() - start
        print(progress.summary(name, elapsed), file=sys.stderr)
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(result.render())
        print()
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.experiments import ext_faults

    telemetry = _make_telemetry(args)
    result = ext_faults.run(
        quick=args.quick, rates=args.rates, seed=args.seed, telemetry=telemetry
    )
    if args.json:
        payload = {
            "cells": [
                {
                    "pattern": c.pattern,
                    "backend": c.backend,
                    "rate": c.rate,
                    "makespan_seconds": c.makespan,
                    "healthy_makespan_seconds": c.healthy_makespan,
                    "faults_injected": c.faults_injected,
                    "retries": c.retries,
                    "giveups": c.giveups,
                    "recoveries": c.recoveries,
                    "mean_recovery_seconds": c.mean_recovery_seconds,
                    "max_recovery_seconds": c.max_recovery_seconds,
                    "data_loss": c.data_loss,
                    "staleness_or_quorum": c.staleness_or_quorum,
                    "goodput_degradation": c.goodput_degradation,
                }
                for c in result.cells
            ]
        }
        print(json.dumps(payload, sort_keys=True))
    else:
        print(result.render())
    _save_telemetry(telemetry, args, quiet=args.json)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.benchreport import cmd_bench

    return cmd_bench(args)


def _cmd_trace_summary(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.telemetry import load_trace, summarize_trace, validate_trace_events

    events = load_trace(args.file)
    validate_trace_events(events)
    rows = []
    for process, spans in summarize_trace(events, top_k=args.top):
        for event in spans:
            rows.append(
                (
                    process,
                    event.get("name", ""),
                    event.get("cat", ""),
                    float(event.get("dur", 0.0)) / 1e3,
                    float(event.get("ts", 0.0)) / 1e6,
                )
            )
    print(
        format_table(
            ["component", "span", "category", "dur (ms)", "start (s)"],
            rows,
            title=f"top {args.top} slowest spans per component ({len(events)} events)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SimAI-Bench reproduction: mini-app runner and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list registered mini-app kernels")

    def add_observability(p) -> None:
        p.add_argument(
            "--trace",
            default="",
            metavar="FILE",
            help="write a Chrome trace-event JSON file (open in Perfetto)",
        )
        p.add_argument(
            "--metrics",
            default="",
            metavar="FILE",
            help="write the metrics registry (counters/gauges/histograms) as JSON",
        )

    def add_fault_plan(p) -> None:
        p.add_argument(
            "--fault-plan",
            default="",
            metavar="FILE",
            help="JSON fault plan to inject (see repro.faults.plan)",
        )

    run_parser = sub.add_parser("run", help="run a real-mode mini-app from JSON")
    run_parser.add_argument("--config", required=True, help="mini-app JSON config")
    run_parser.add_argument(
        "--events-out", default="", help="write the event log (JSONL) here"
    )
    run_parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="override the backend server's n_shards (0 = leave the config's value)",
    )
    add_observability(run_parser)
    add_fault_plan(run_parser)

    simulate = sub.add_parser(
        "simulate", help="sim-mode what-if study on the modeled Aurora"
    )
    simulate.add_argument(
        "--pattern", choices=("one-to-one", "many-to-one"), default="one-to-one"
    )
    simulate.add_argument("--backend", default="node-local")
    simulate.add_argument("--nodes", type=int, default=8)
    simulate.add_argument("--size-mb", type=float, default=1.2)
    simulate.add_argument("--iterations", type=int, default=500)
    simulate.add_argument(
        "--shards",
        type=int,
        default=1,
        help="run the DES across this many OS processes (conservative "
        "sharding; output is byte-identical to --shards 1)",
    )
    simulate.add_argument(
        "--des-core",
        choices=("heap", "calendar"),
        default=None,
        help="event-queue core for the DES engine (default: REPRO_DES_CORE "
        "or heap)",
    )
    simulate.add_argument(
        "--json",
        action="store_true",
        help="print the run summary as a single JSON object",
    )
    add_observability(simulate)
    add_fault_plan(simulate)

    sweep = sub.add_parser(
        "sweep",
        help="regenerate experiments through the parallel sweep engine",
    )
    sweep.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids or 'all' (e.g. fig3, table2, ext_faults); or a "
        "maintenance verb: 'query' (cross-job results by fingerprint), "
        "'usage' (per-tenant accounting), 'gc' (retention pass), 'health' "
        "(overload/brownout probe) — these take --store FILE or --at "
        "HOST:PORT",
    )
    sweep.add_argument(
        "--quick", action="store_true", help="scaled-down iteration counts"
    )
    sweep.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per grid (1 = serial, bit-identical default)",
    )
    sweep.add_argument(
        "--cache-dir",
        default="",
        metavar="DIR",
        help="content-addressed result cache; repeated points are served from disk",
    )
    sweep.add_argument(
        "--cache-max-mb",
        type=float,
        default=None,
        metavar="MB",
        help="evict oldest cache entries above this size after each sweep",
    )
    sweep.add_argument(
        "--cache-info",
        action="store_true",
        help="print cache entry count, size, and hit-rate history, then exit",
    )
    sweep.add_argument(
        "--serve",
        default="",
        metavar="HOST:PORT",
        help="serve grid points to distributed workers instead of computing "
        "locally (start workers with: sweep --connect HOST:PORT)",
    )
    sweep.add_argument(
        "--journal",
        default="",
        metavar="DIR",
        help="crash-recovery journal for --serve; restarting with the same "
        "journal resumes without re-running completed points",
    )
    sweep.add_argument(
        "--lease",
        type=float,
        default=None,
        metavar="SECONDS",
        help="distributed lease duration (default 5); a worker silent this "
        "long loses its point to the next claimer",
    )
    sweep.add_argument(
        "--service",
        default="",
        metavar="HOST:PORT",
        help="run the durable multi-tenant sweep service: accepts many "
        "named grids (sweep --submit) concurrently, persists every result "
        "in --store, survives SIGKILL + restart without losing work",
    )
    sweep.add_argument(
        "--store",
        default="",
        metavar="FILE",
        help="SQLite job/results store for --service (also the "
        "--migrate-history target; defaults there to CACHE_DIR/store.sqlite)",
    )
    sweep.add_argument(
        "--max-live-jobs",
        type=int,
        default=None,
        metavar="N",
        help="for --service: per-tenant admission quota on concurrently "
        "live (non-terminal) jobs; over-quota SUBMITs get a typed -BUSY "
        "refusal with a retry hint instead of queueing",
    )
    sweep.add_argument(
        "--max-queued-points",
        type=int,
        default=None,
        metavar="N",
        help="for --service: per-tenant admission quota on queued points "
        "across all of that tenant's live jobs",
    )
    sweep.add_argument(
        "--max-store-mb",
        type=float,
        default=None,
        metavar="MB",
        help="for --service: refuse new SUBMITs once the store's used "
        "pages exceed this size (headroom returns after gc --apply)",
    )
    sweep.add_argument(
        "--max-connections",
        type=int,
        default=None,
        metavar="N",
        help="for --service: cap concurrent TCP connections; connection "
        "N+1 is refused with a typed -BUSY line (default 256)",
    )
    sweep.add_argument(
        "--submit",
        default="",
        metavar="HOST:PORT",
        help="submit the experiment grids to a running sweep service "
        "instead of computing locally; blocks until the job drains",
    )
    sweep.add_argument(
        "--tenant",
        default="",
        metavar="NAME",
        help="tenant label for --submit (fair-share accounting across "
        "concurrent tenants); also the tenant filter for query/usage/gc",
    )
    sweep.add_argument(
        "--at",
        default="",
        metavar="HOST:PORT",
        help="address of a running sweep service for query/usage/gc (the "
        "only safe way to gc --apply while a service is up)",
    )
    sweep.add_argument(
        "--fingerprint",
        default="",
        metavar="HEX",
        help="for query: point fingerprint to look up (an unambiguous "
        "prefix is enough)",
    )
    sweep.add_argument(
        "--name",
        default="",
        metavar="JOB",
        help="for query/usage/gc: restrict to jobs with this name",
    )
    sweep.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="EPOCH",
        help="for usage: only count events at/after this unix time",
    )
    sweep.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="SECONDS",
        help="for gc: collect terminal jobs idle longer than this",
    )
    sweep.add_argument(
        "--keep-latest",
        type=int,
        default=None,
        metavar="N",
        help="for gc: keep only the N newest terminal jobs per "
        "(name, tenant) group",
    )
    sweep.add_argument(
        "--lease-grace",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="for gc: refuse to collect a job whose newest lease event is "
        "younger than this (default 300)",
    )
    sweep.add_argument(
        "--apply",
        action="store_true",
        help="for gc: actually collect (default is a dry run that only "
        "prints the plan)",
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="for query/usage/gc: print the full report as JSON instead "
        "of tables",
    )
    sweep.add_argument(
        "--migrate-history",
        action="store_true",
        help="one-shot import of CACHE_DIR/history.jsonl (plus --journal "
        "DIR journals) into the SQLite store, then exit",
    )
    sweep.add_argument(
        "--connect",
        default="",
        metavar="HOST:PORT",
        help="run as a worker fleet claiming points from a serving sweep",
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for --connect (1 = run the agent in-process)",
    )
    sweep.add_argument(
        "--reconnect-budget",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="how long a worker keeps retrying an unreachable coordinator",
    )
    sweep.add_argument(
        "--poll",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="worker idle wait between claims when no point is available",
    )
    sweep.add_argument(
        "--op-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request socket timeout for --connect workers; a stalled "
        "or one-way-partitioned exchange becomes a retryable reconnect",
    )
    sweep.add_argument(
        "--seed", type=int, default=0, help="root seed for worker backoff jitter"
    )
    sweep.add_argument(
        "--watch",
        default="",
        metavar="HOST:PORT",
        help="attach a read-only live console to a running coordinator "
        "(progress bar, per-worker rates, quarantine list)",
    )
    sweep.add_argument(
        "--fleet-trace",
        default="",
        metavar="FILE",
        help="with --serve: write one merged Chrome trace of the whole "
        "fleet (coordinator lease spans + worker execution spans)",
    )
    sweep.add_argument(
        "--flight-recorder",
        default="",
        metavar="FILE",
        help="dump the flight-recorder ring (recent protocol events) here "
        "on exit, poison, crash, or drain; with --connect and --workers N "
        "each rank writes FILE-<rank>.json",
    )
    sweep.add_argument(
        "--log-json",
        default="",
        metavar="FILE",
        help="append structured JSONL logs (coordinator/worker/engine "
        "events) to FILE",
    )
    sweep.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error"),
        default="info",
        help="structured-log threshold (default info; debug narrates every "
        "lease and claim)",
    )

    chaos = sub.add_parser(
        "chaos", help="seeded chaos sweep: fault rate x backend x pattern"
    )
    chaos.add_argument(
        "--quick", action="store_true", help="shrunk iteration counts (CI smoke)"
    )
    chaos.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=None,
        metavar="RATE",
        help="stochastic fault rates (faults per simulated second) to sweep",
    )
    chaos.add_argument("--seed", type=int, default=0, help="root seed for the sweep")
    chaos.add_argument(
        "--json", action="store_true", help="print the sweep cells as JSON"
    )
    add_observability(chaos)

    bench = sub.add_parser(
        "bench",
        help="perf baseline: DES micro-bench + quick experiment rounds "
        "-> BENCH_<date>.json with a delta table vs the last baseline",
    )
    from repro.benchreport import add_bench_arguments

    add_bench_arguments(bench)

    trace_summary = sub.add_parser(
        "trace-summary", help="print the top-k slowest spans per component of a trace"
    )
    trace_summary.add_argument("file", help="Chrome trace JSON written by --trace")
    trace_summary.add_argument("--top", type=int, default=5, help="spans per component")
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "kernels":
        return _cmd_kernels(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "trace-summary":
        return _cmd_trace_summary(args)
    raise ConfigError(f"unknown command {args.command!r}")  # pragma: no cover
