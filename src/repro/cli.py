"""Command-line interface: run mini-apps without writing Python.

Subcommands::

    python -m repro kernels                 # list registered kernels
    python -m repro run --config app.json   # real-mode mini-app from JSON
    python -m repro simulate --pattern one-to-one --backend dragon \
        --nodes 64 --size-mb 4              # sim-mode what-if study

The ``run`` config format::

    {
      "server": {"backend": "dragon", "n_shards": 2},
      "pattern": "one-to-one",
      "one_to_one": {
        "train_iterations": 50, "write_interval": 10, "read_interval": 5,
        "sim_iter_time": 0.004, "ai_iter_time": 0.006
      }
    }
"""

from __future__ import annotations

import argparse
import json
from typing import Optional

from repro.errors import ConfigError


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.analysis import format_table
    from repro.kernels import kernel_class, list_kernels

    rows = []
    for category in ("compute", "io", "collective", "copy"):
        for name in list_kernels(category=category):
            doc = (kernel_class(name).__doc__ or "").strip().splitlines()[0]
            rows.append((category, name, doc))
    print(format_table(["category", "kernel", "description"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.telemetry import EventKind, event_counts, iteration_time_summary
    from repro.transport import ServerManager
    from repro.workloads import RealOneToOneConfig, run_one_to_one_real

    with open(args.config, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict):
        raise ConfigError("run config must be a JSON object")
    pattern = spec.get("pattern", "one-to-one")
    if pattern != "one-to-one":
        raise ConfigError(
            f"unsupported real-mode pattern {pattern!r} (supported: one-to-one; "
            "use 'simulate' for scaled many-to-one studies)"
        )
    server_spec = spec.get("server", {"backend": "node-local"})
    run_spec = spec.get("one_to_one", {})
    config = RealOneToOneConfig(**run_spec)

    with ServerManager("stage", config=server_spec) as server:
        result = run_one_to_one_real(server.get_server_info(), config)

    print(f"pattern: one-to-one, backend: {server_spec.get('backend')}")
    print(f"simulation iterations: {result.sim_iterations}")
    print(f"snapshots written/read: {result.snapshots_written}/{result.snapshots_read}")
    print(f"final loss: {result.final_loss:.4f}")
    for component, kind in (("sim", EventKind.COMPUTE), ("train", EventKind.TRAIN)):
        s = iteration_time_summary(result.log, component, kind)
        counts = event_counts(result.log, component)
        print(
            f"{component}: {counts['timestep']} steps, "
            f"{counts['data_transport']} transport events, "
            f"iter {s.mean * 1e3:.2f} ± {s.std * 1e3:.2f} ms"
        )
    if args.events_out:
        result.log.save(args.events_out)
        print(f"event log written to {args.events_out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.common import backend_models, pattern1_context
    from repro.telemetry import EventKind
    from repro.telemetry.stats import mean_throughput, runtime_per_iteration
    from repro.transport.models import (
        MB,
        DaosBackendModel,
        StreamingBackendModel,
        TransportOpContext,
    )
    from repro.workloads import (
        ManyToOneConfig,
        OneToOneConfig,
        run_many_to_one,
        run_one_to_one,
    )

    models = dict(backend_models())
    models["streaming"] = StreamingBackendModel()
    models["daos"] = DaosBackendModel()
    try:
        model = models[args.backend]
    except KeyError:
        raise ConfigError(
            f"unknown backend {args.backend!r}; options {sorted(models)}"
        ) from None
    nbytes = args.size_mb * MB

    if args.pattern == "one-to-one":
        result = run_one_to_one(
            model,
            OneToOneConfig(train_iterations=args.iterations, snapshot_nbytes=nbytes),
            ctx=pattern1_context(args.nodes),
        )
        print(
            f"one-to-one on {args.nodes} nodes, {args.size_mb} MB, backend {args.backend}:"
        )
        print(f"  makespan: {result.makespan:.2f} s")
        print(
            f"  write throughput/process: "
            f"{mean_throughput(result.log, EventKind.WRITE) / 1e9:.3f} GB/s"
        )
        print(
            f"  read throughput/process:  "
            f"{mean_throughput(result.log, EventKind.READ) / 1e9:.3f} GB/s"
        )
    else:
        n_sims = args.nodes - 1
        n_clients = n_sims + min(12, n_sims)
        result = run_many_to_one(
            model,
            ManyToOneConfig(
                n_simulations=n_sims,
                train_iterations=args.iterations,
                snapshot_nbytes=nbytes,
            ),
            write_ctx=TransportOpContext(
                local=True, clients_per_server=12, concurrent_clients=n_clients
            ),
            read_ctx=TransportOpContext(
                local=False,
                clients_per_server=12,
                fan_in=n_sims,
                concurrent_peers=min(12, n_sims),
                concurrent_clients=n_clients,
            ),
        )
        runtime = runtime_per_iteration(
            result.log.filter(component="train"), "train", args.iterations
        )
        print(
            f"many-to-one on {args.nodes} nodes ({n_sims} sims), {args.size_mb} MB, "
            f"backend {args.backend}:"
        )
        print(f"  training runtime per iteration: {runtime * 1e3:.2f} ms")
        print(f"  makespan: {result.makespan:.2f} s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="SimAI-Bench reproduction: mini-app runner and tools.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list registered mini-app kernels")

    run_parser = sub.add_parser("run", help="run a real-mode mini-app from JSON")
    run_parser.add_argument("--config", required=True, help="mini-app JSON config")
    run_parser.add_argument(
        "--events-out", default="", help="write the event log (JSONL) here"
    )

    simulate = sub.add_parser(
        "simulate", help="sim-mode what-if study on the modeled Aurora"
    )
    simulate.add_argument(
        "--pattern", choices=("one-to-one", "many-to-one"), default="one-to-one"
    )
    simulate.add_argument("--backend", default="node-local")
    simulate.add_argument("--nodes", type=int, default=8)
    simulate.add_argument("--size-mb", type=float, default=1.2)
    simulate.add_argument("--iterations", type=int, default=500)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "kernels":
        return _cmd_kernels(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    raise ConfigError(f"unknown command {args.command!r}")  # pragma: no cover
