"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments all [--quick]
    python -m repro.experiments fig3 fig6 [--quick] [--parallel 4] [--cache-dir .sweep-cache]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS
from repro.sweep import SweepOptions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=(
            "experiment ids or 'all' (paper artifacts: "
            f"{', '.join(ALL_EXPERIMENTS)}; extensions: "
            f"{', '.join(EXTENSION_EXPERIMENTS)})"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="scaled-down iteration counts (shapes preserved)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=1,
        metavar="N",
        help="worker processes per sweep grid (1 = serial, bit-identical default)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed result cache; re-runs are served from disk",
    )
    args = parser.parse_args(argv)

    registry = {**ALL_EXPERIMENTS, **EXTENSION_EXPERIMENTS}
    names = list(ALL_EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in registry]
    if unknown:
        parser.error(f"unknown experiments {unknown}; choose from {list(registry)}")

    sweep = None
    if args.parallel != 1 or args.cache_dir:
        sweep = SweepOptions(parallel=args.parallel, cache_dir=args.cache_dir)

    for name in names:
        start = time.perf_counter()
        result = registry[name].run(quick=args.quick, sweep=sweep)
        elapsed = time.perf_counter() - start
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(result.render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
