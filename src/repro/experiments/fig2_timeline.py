"""Fig 2 — execution timeline comparison: original vs mini-app.

Renders a segment of both runs' timelines (computation fill, transfer
marks, init shading) and computes the compute-occupancy correlation
between them as the quantitative counterpart of the paper's visual
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.validation import timeline_similarity
from repro.telemetry.events import EventKind, EventLog
from repro.telemetry.timeline import Timeline


@dataclass
class Fig2Result:
    original_log: EventLog
    miniapp_log: EventLog
    window: tuple[float, float]
    sim_similarity: float
    train_similarity: float

    def render(self, width: int = 100) -> str:
        original = Timeline.from_log(
            self.original_log, components=["sim", "train"], window=self.window
        )
        miniapp = Timeline.from_log(
            self.miniapp_log, components=["sim", "train"], window=self.window
        )
        body = Timeline.render_comparison(original, miniapp, width=width)
        return (
            "Figure 2: execution timelines, original nekRS-ML vs mini-app\n"
            + body
            + f"\ncompute-occupancy correlation: sim={self.sim_similarity:.3f} "
            + f"train={self.train_similarity:.3f}"
        )


def run(quick: bool = False, seed: int = 0, sweep=None) -> Fig2Result:
    from repro.experiments.common import nekrs_validation_point, sweep_values

    iterations = 300 if quick else 2000
    cells = [
        {"which": which, "iterations": iterations, "seed": seed}
        for which in ("original", "miniapp")
    ]
    original, miniapp = sweep_values(nekrs_validation_point, cells, sweep=sweep)
    # A representative mid-run segment, as in the paper's figure.
    end = min(original.makespan, miniapp.makespan)
    window = (0.0, min(60.0, end))
    return Fig2Result(
        original_log=original.log,
        miniapp_log=miniapp.log,
        window=window,
        sim_similarity=timeline_similarity(
            original.log, miniapp.log, "sim", EventKind.COMPUTE
        ),
        train_similarity=timeline_similarity(
            original.log, miniapp.log, "train", EventKind.TRAIN
        ),
    )


if __name__ == "__main__":
    print(run().render())
