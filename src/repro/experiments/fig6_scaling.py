"""Fig 6 — Pattern 2 training runtime per iteration vs data size, scaled.

One simulation per node, a single AI trainer on its own node; the trainer
blocks until each update has arrived from every simulation. Runtime per
iteration = total training-component execution time / iterations, so it
folds compute *and* transport together, as the paper specifies.

Shapes to match (§4.2):

* 8 nodes: runtime grows with size for all backends; redis worst; dragon
  and filesystem about equal;
* 128 nodes: redis still worst; dragon substantially slower than the
  filesystem below ~10 MB (incast latency dominating), comparable above;
  filesystem is the best overall choice for this pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_series_table
from repro.experiments.common import (
    PATTERN2_BACKENDS,
    SIZE_SWEEP_BYTES,
    SIZE_SWEEP_MB,
    backend_models,
    sweep_values,
)
from repro.telemetry.stats import runtime_per_iteration
from repro.transport.models import TransportOpContext
from repro.workloads.patterns import ManyToOneConfig, run_many_to_one

SCALES = (8, 128)


def sweep_point(backend: str, scale: int, nbytes: float, iterations: int) -> float:
    """One grid cell: training runtime per iteration (seconds)."""
    n_sims = scale - 1  # one node reserved for the trainer
    config = ManyToOneConfig(
        n_simulations=n_sims,
        train_iterations=iterations,
        snapshot_nbytes=nbytes,
    )
    # Each pattern-2 component stages ONE array per interval (§4.2), so
    # the staging-client population is one writer per simulation node
    # plus the trainer's reader lanes — unlike pattern 1, where every
    # rank stages its own data.
    n_clients = n_sims + min(12, n_sims)
    res = run_many_to_one(
        backend_models()[backend],
        config,
        write_ctx=TransportOpContext(
            local=True,
            clients_per_server=12,
            concurrent_clients=n_clients,
        ),
        read_ctx=TransportOpContext(
            local=False,
            clients_per_server=12,
            fan_in=n_sims,
            concurrent_peers=min(12, n_sims),
            concurrent_clients=n_clients,
        ),
    )
    return runtime_per_iteration(
        res.log.filter(component="train"), "train", iterations
    )


@dataclass
class Fig6Result:
    #: runtime[scale][backend] = seconds/iteration per size
    runtime: dict[int, dict[str, list[float]]] = field(default_factory=dict)
    sizes_mb: list[float] = field(default_factory=lambda: list(SIZE_SWEEP_MB))

    def render(self) -> str:
        blocks = []
        for scale in sorted(self.runtime):
            blocks.append(
                format_series_table(
                    "size (MB)",
                    self.sizes_mb,
                    self.runtime[scale],
                    title=(
                        f"Figure 6 ({'a' if scale == 8 else 'b'}): training runtime "
                        f"per iteration (s) at {scale} nodes"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(quick: bool = False, sweep=None) -> Fig6Result:
    iterations = 200 if quick else 1000
    cells = [
        {"backend": backend, "scale": scale, "nbytes": nbytes, "iterations": iterations}
        for scale in SCALES
        for backend in PATTERN2_BACKENDS
        for nbytes in SIZE_SWEEP_BYTES
    ]
    values = sweep_values(sweep_point, cells, sweep=sweep)

    result = Fig6Result()
    it = iter(values)
    for scale in SCALES:
        result.runtime[scale] = {
            backend: [next(it) for _ in SIZE_SWEEP_BYTES]
            for backend in PATTERN2_BACKENDS
        }
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
