"""Fig 4 — computation vs data-transport time per message (Pattern 1).

Compares the mean compute iteration times (AI iter, Sim iter) against the
mean per-message read/write times for the two scaling extremes the paper
plots: node-local (top row) and filesystem (bottom row), each at 8 and
512 nodes.

Shapes to match (§4.1.2):

* node-local: a 32 MB transfer costs about one simulation iteration, at
  both scales (negligible overhead, perfect scaling);
* filesystem: comparable to an iteration at 8 nodes, but roughly an order
  of magnitude *more* than an iteration at 512 nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_series_table
from repro.experiments.common import (
    SIZE_SWEEP_BYTES,
    SIZE_SWEEP_MB,
    backend_models,
    measure_one_to_one,
    sweep_values,
)

BACKENDS = ("node-local", "filesystem")
SCALES = (8, 512)


def sweep_point(
    backend: str, scale: int, nbytes: float, iterations: int
) -> tuple[float, float, float, float]:
    """One grid cell: (read s, write s, sim-iter s, ai-iter s)."""
    m = measure_one_to_one(
        backend_models()[backend], nbytes, n_nodes=scale, train_iterations=iterations
    )
    return m.read_time, m.write_time, m.sim_iter_time, m.ai_iter_time


@dataclass
class Fig4Panel:
    backend: str
    n_nodes: int
    read_time: list[float]
    write_time: list[float]
    sim_iter_time: float
    ai_iter_time: float

    def transfer_to_iter_ratio(self, size_index: int) -> float:
        """Per-message write time over one sim iteration time."""
        return self.write_time[size_index] / self.sim_iter_time


@dataclass
class Fig4Result:
    panels: dict[tuple[str, int], Fig4Panel] = field(default_factory=dict)
    sizes_mb: list[float] = field(default_factory=lambda: list(SIZE_SWEEP_MB))

    def panel(self, backend: str, n_nodes: int) -> Fig4Panel:
        return self.panels[(backend, n_nodes)]

    def render(self) -> str:
        blocks = []
        for (backend, scale), panel in sorted(self.panels.items()):
            series = {
                "read (s)": panel.read_time,
                "write (s)": panel.write_time,
                "Sim iter (s)": [panel.sim_iter_time] * len(self.sizes_mb),
                "AI iter (s)": [panel.ai_iter_time] * len(self.sizes_mb),
            }
            blocks.append(
                format_series_table(
                    "size (MB)",
                    self.sizes_mb,
                    series,
                    title=f"Figure 4: compute vs transport, {backend} at {scale} nodes",
                )
            )
        return "\n\n".join(blocks)


def run(quick: bool = False, sweep=None) -> Fig4Result:
    iterations = 300 if quick else 2500
    cells = [
        {"backend": backend, "scale": scale, "nbytes": nbytes, "iterations": iterations}
        for backend in BACKENDS
        for scale in SCALES
        for nbytes in SIZE_SWEEP_BYTES
    ]
    values = sweep_values(sweep_point, cells, sweep=sweep)

    result = Fig4Result()
    it = iter(values)
    for backend in BACKENDS:
        for scale in SCALES:
            series = [next(it) for _ in SIZE_SWEEP_BYTES]
            sim_iter, ai_iter = series[-1][2], series[-1][3]
            result.panels[(backend, scale)] = Fig4Panel(
                backend=backend,
                n_nodes=scale,
                read_time=[s[0] for s in series],
                write_time=[s[1] for s in series],
                sim_iter_time=sim_iter,
                ai_iter_time=ai_iter,
            )
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
