"""Shared infrastructure for the per-table/figure experiment drivers.

Every driver follows one contract: a ``run(quick=False)`` function
returning a result dataclass with (a) the measured series and (b) a
``render()`` method printing the same rows/series the paper reports.
``quick=True`` shrinks iteration counts for smoke tests and pytest
benchmarks; the shapes (who wins, crossovers) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Optional, Sequence

from repro.telemetry.events import EventKind, EventLog
from repro.telemetry.stats import mean_throughput, mean_transport_time
from repro.transport.models import (
    MB,
    BackendModel,
    TransportOpContext,
    aurora_backend_models,
)
from repro.workloads.patterns import OneToOneConfig, run_one_to_one

#: The paper's message-size sweep: 0.4 MB to 32 MB (§4.1.2).
SIZE_SWEEP_BYTES = [0.4 * MB, 1 * MB, 2 * MB, 4 * MB, 8 * MB, 16 * MB, 32 * MB]
SIZE_SWEEP_MB = [s / MB for s in SIZE_SWEEP_BYTES]

#: Backends in the paper's plotting order.
PATTERN1_BACKENDS = ["node-local", "dragon", "redis", "filesystem"]
PATTERN2_BACKENDS = ["redis", "dragon", "filesystem"]  # node-local impossible (§4.2)

PROCESSES_PER_NODE = 12  # 6 simulation + 6 AI ranks


def pattern1_context(n_nodes: int) -> TransportOpContext:
    """Scale context for the co-located one-to-one pattern."""
    return TransportOpContext(
        local=True,
        clients_per_server=PROCESSES_PER_NODE,
        concurrent_clients=n_nodes * PROCESSES_PER_NODE,
    )


def backend_models() -> dict[str, BackendModel]:
    return aurora_backend_models(processes_per_node=PROCESSES_PER_NODE)


@dataclass(frozen=True)
class TransportMeasurement:
    """Per-process transport statistics from one pattern run."""

    read_throughput: float  # bytes/s, averaged over events (paper's metric)
    write_throughput: float
    read_time: float  # mean seconds per message
    write_time: float
    sim_iter_time: float
    ai_iter_time: float


def measure_one_to_one(
    model: BackendModel,
    nbytes: float,
    n_nodes: int,
    train_iterations: int = 2500,
    seed: int = 0,
    telemetry=None,
) -> TransportMeasurement:
    """Run pattern 1 with one backend/size/scale; extract Fig 3/4 metrics.

    ``telemetry`` (a :class:`~repro.telemetry.hub.Telemetry`) records the
    run's spans/metrics — see the "Observability" section of the README.
    """
    config = OneToOneConfig(
        train_iterations=train_iterations,
        snapshot_nbytes=nbytes,
        ranks_per_component=6,
        seed=seed,
    )
    result = run_one_to_one(
        model, config, ctx=pattern1_context(n_nodes), telemetry=telemetry
    )
    return measurement_from_log(result.log)


def sweep_values(
    func: Callable,
    cells: Iterable[Mapping[str, Any]],
    *,
    sweep=None,
    telemetry=None,
    telemetry_points: Optional[Sequence[bool]] = None,
) -> list[Any]:
    """Run a driver's grid through the sweep engine; values in cell order.

    ``sweep`` is a :class:`~repro.sweep.engine.SweepOptions` (None = the
    historical serial in-process path, bit-identical to the pre-engine
    drivers). ``func`` must be a module-level function so worker
    processes can import it; when ``telemetry`` is given, it is injected
    into each cell marked by ``telemetry_points`` (default: all).
    """
    from repro.sweep import SweepEngine

    engine = sweep if isinstance(sweep, SweepEngine) else SweepEngine(sweep)
    return engine.map(
        func, cells, telemetry=telemetry, telemetry_points=telemetry_points
    )


def nekrs_validation_point(which: str, iterations: int, seed: int = 0):
    """One §4.1.1 validation run — shared by Table 2, Table 3, and Fig 2.

    ``which`` is ``"original"`` (measured-jitter workflow) or
    ``"miniapp"`` (SimAI-Bench replica). A shared point function means
    the three fidelity artifacts reuse each other's cached runs when the
    sweep cache is enabled.
    """
    from repro.workloads.nekrs import NekrsValidationSetup

    setup = NekrsValidationSetup(train_iterations=iterations, seed=seed)
    if which == "original":
        return setup.run_original()
    if which == "miniapp":
        return setup.run_miniapp()
    raise ValueError(f"unknown validation run {which!r}")


def measurement_from_log(log: EventLog) -> TransportMeasurement:
    from repro.telemetry.stats import iteration_time_summary

    return TransportMeasurement(
        read_throughput=mean_throughput(log, EventKind.READ),
        write_throughput=mean_throughput(log, EventKind.WRITE),
        read_time=mean_transport_time(log, EventKind.READ),
        write_time=mean_transport_time(log, EventKind.WRITE),
        sim_iter_time=iteration_time_summary(log, "sim", EventKind.COMPUTE).mean,
        ai_iter_time=iteration_time_summary(log, "train", EventKind.TRAIN).mean,
    )
