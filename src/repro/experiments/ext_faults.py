"""Extension experiment — chaos sweep: transport under injected faults.

Not a paper artifact: the paper benchmarks healthy runs only, but
production coupled workflows lose nodes, links, and datastore servers
mid-run. This driver sweeps a seeded fault intensity against backends
and both workflow patterns, measuring what the healthy-path tables
cannot: recovery latency, retry volume, data loss/staleness, and goodput
degradation versus the healthy baseline.

Every faulty run injects at least one backend crash and one node crash
(scheduled), plus Poisson streams of link degradation, message drops,
and corruption whose rate is the sweep variable. Everything draws from
derived seeds, so the whole sweep is bit-reproducible.

Expected outcome: goodput degrades smoothly with fault rate while the
retry/backoff layer holds recovery latency near the fault durations
themselves; in-memory backends (redis/dragon) recover faster than the
filesystem path because their per-op times keep retry turnaround short.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.report import format_table
from repro.experiments.common import backend_models, pattern1_context
from repro.faults import FaultKind, FaultPlan, FaultSpec, StochasticFaultSpec
from repro.transport.resilience import ResilienceConfig, RetryPolicy
from repro.workloads.patterns import (
    ManyToOneConfig,
    OneToOneConfig,
    run_many_to_one,
    run_one_to_one,
)

#: Faults per simulated second for the sweep's stochastic streams.
DEFAULT_RATES = [0.05, 0.2]
#: Backends exercised by the chaos sweep (one in-memory TCP, one RDMA-like).
CHAOS_BACKENDS = ["redis", "dragon"]


def chaos_plan(
    rate: float, horizon: float, pattern: int, seed: int = 0
) -> FaultPlan:
    """The sweep's fault plan for one (rate, pattern) cell.

    Two scheduled anchor faults — a backend crash and a node crash — land
    in the middle half of the run so every cell exercises outage
    detection and recovery; the stochastic streams scale with ``rate``.
    """
    target = "sim" if pattern == 1 else "sim0"
    faults = [
        FaultSpec(
            kind=FaultKind.BACKEND_CRASH, at=0.30 * horizon, duration=0.04 * horizon
        ),
        FaultSpec(
            kind=FaultKind.NODE_CRASH,
            at=0.55 * horizon,
            duration=0.05 * horizon,
            target=target,
        ),
    ]
    stochastic = [
        StochasticFaultSpec(
            kind=FaultKind.LINK_DEGRADE,
            rate=rate,
            horizon=horizon,
            duration=0.02 * horizon,
            severity=4.0,
        ),
        StochasticFaultSpec(
            kind=FaultKind.MESSAGE_DROP,
            rate=rate,
            horizon=horizon,
            duration=0.02 * horizon,
            severity=0.3,
        ),
        StochasticFaultSpec(
            kind=FaultKind.MESSAGE_CORRUPT,
            rate=rate,
            horizon=horizon,
            duration=0.02 * horizon,
            severity=0.3,
        ),
    ]
    return FaultPlan(faults=faults, stochastic=stochastic, seed=seed)


def chaos_resilience(pattern: int) -> ResilienceConfig:
    """The sweep's client-side policy (tight timeouts so cells stay fast)."""
    return ResilienceConfig(
        policy=RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=1.0, timeout=10.0),
        breaker_threshold=5,
        breaker_reset=0.5,
        staleness_bound=5.0 if pattern == 1 else float("inf"),
        quorum=1.0 if pattern == 1 else 0.75,
    )


@dataclass
class ChaosCell:
    """One (pattern, backend, rate) measurement."""

    pattern: int
    backend: str
    rate: float
    makespan: float
    healthy_makespan: float
    goodput: float  # snapshots ingested per simulated second
    healthy_goodput: float
    faults_injected: int
    retries: int
    giveups: int
    recoveries: int
    mean_recovery_seconds: float
    max_recovery_seconds: float
    data_loss: int  # lost + skipped snapshots (p1) / lost + missed (p2)
    staleness_or_quorum: int  # staleness violations (p1) / quorum misses (p2)

    @property
    def goodput_degradation(self) -> float:
        """Fraction of healthy goodput lost to the faults (0 = unhurt)."""
        if self.healthy_goodput <= 0:
            return 0.0
        return max(0.0, 1.0 - self.goodput / self.healthy_goodput)


@dataclass
class FaultsExtResult:
    cells: list[ChaosCell] = field(default_factory=list)
    #: (pattern, backend) -> healthy (makespan, goodput)
    baselines: dict = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            (
                f"p{c.pattern}",
                c.backend,
                c.rate,
                c.faults_injected,
                c.retries,
                c.recoveries,
                c.mean_recovery_seconds,
                c.data_loss,
                c.staleness_or_quorum,
                c.goodput_degradation * 100.0,
            )
            for c in self.cells
        ]
        return format_table(
            [
                "pattern",
                "backend",
                "fault rate (/s)",
                "faults",
                "retries",
                "recoveries",
                "mean recovery (s)",
                "data loss",
                "stale/quorum",
                "goodput loss (%)",
            ],
            rows,
            title="Extension: chaos sweep (fault rate x backend x pattern)",
        )


def _p1_config(quick: bool, seed: int) -> OneToOneConfig:
    return OneToOneConfig(train_iterations=200 if quick else 1000, seed=seed)


def _p2_config(quick: bool, seed: int) -> ManyToOneConfig:
    return ManyToOneConfig(
        train_iterations=150 if quick else 600,
        n_simulations=4,
        poll_timeout=2.0,
        seed=seed,
    )


def baseline_point(pattern: int, backend: str, quick: bool, seed: int) -> tuple[float, float]:
    """Healthy (makespan, goodput) for one pattern x backend pair."""
    model = backend_models()[backend]
    if pattern == 1:
        healthy = run_one_to_one(model, _p1_config(quick, seed), ctx=pattern1_context(8))
    else:
        healthy = run_many_to_one(model, _p2_config(quick, seed))
    return healthy.makespan, healthy.snapshots_read / healthy.makespan


def cell_point(
    pattern: int,
    backend: str,
    rate: float,
    horizon: float,
    quick: bool,
    seed: int,
    telemetry=None,
) -> dict:
    """One faulty (pattern, backend, rate) cell against a known horizon.

    ``horizon`` is the healthy run's makespan (stage-1 baseline), which
    anchors the plan's scheduled crashes in the middle half of the run.
    """
    model = backend_models()[backend]
    plan = chaos_plan(rate, horizon=horizon, pattern=pattern, seed=seed)
    resilience = chaos_resilience(pattern)
    if pattern == 1:
        faulty = run_one_to_one(
            model,
            _p1_config(quick, seed),
            ctx=pattern1_context(8),
            telemetry=telemetry,
            fault_plan=plan,
            resilience=resilience,
        )
        loss = (
            faulty.resilience["lost_snapshots"]
            + faulty.resilience["skipped_snapshots"]
        )
        stale = faulty.resilience["staleness_violations"]
    else:
        faulty = run_many_to_one(
            model,
            _p2_config(quick, seed),
            telemetry=telemetry,
            fault_plan=plan,
            resilience=resilience,
        )
        loss = (
            faulty.resilience["lost_snapshots"]
            + faulty.resilience["missed_reads"]
        )
        stale = faulty.resilience["quorum_misses"]
    stats = faulty.resilience["stats"]
    faults = faulty.resilience["faults"]
    return {
        "makespan": faulty.makespan,
        "goodput": faulty.snapshots_read / faulty.makespan,
        "faults_injected": faults["injected"],
        "retries": stats["retries"],
        "giveups": stats["giveups"],
        "recoveries": stats["recoveries"],
        "mean_recovery_seconds": max(
            stats["mean_recovery_seconds"], faults["mean_recovery_seconds"]
        ),
        "max_recovery_seconds": max(
            stats["max_recovery_seconds"], faults["max_recovery_seconds"]
        ),
        "data_loss": loss,
        "staleness_or_quorum": stale,
    }


def run(
    quick: bool = False,
    rates: Optional[list[float]] = None,
    seed: int = 0,
    telemetry=None,
    sweep=None,
) -> FaultsExtResult:
    """Run the chaos sweep; fully deterministic for a fixed ``seed``.

    ``telemetry`` (a :class:`~repro.telemetry.hub.Telemetry`) is attached
    to the *last* faulty cell only — one run per trace keeps the Chrome
    timeline readable; fault injections appear as ``fault.inject`` /
    ``fault.recover`` instants and retries as ``transport.retry``.

    The sweep runs in two engine stages because the fault plans are
    anchored to each healthy makespan: stage 1 computes the baselines,
    stage 2 sweeps the faulty cells with those makespans as horizons.
    """
    from repro.experiments.common import sweep_values

    rates = rates if rates is not None else DEFAULT_RATES
    result = FaultsExtResult()

    combos = [(pattern, backend) for pattern in (1, 2) for backend in CHAOS_BACKENDS]
    base_cells = [
        {"pattern": pattern, "backend": backend, "quick": quick, "seed": seed}
        for pattern, backend in combos
    ]
    baselines = sweep_values(baseline_point, base_cells, sweep=sweep)
    for (pattern, backend), (makespan, goodput) in zip(combos, baselines):
        result.baselines[(pattern, backend)] = (makespan, goodput)

    cells = [
        {
            "pattern": pattern,
            "backend": backend,
            "rate": rate,
            "horizon": result.baselines[(pattern, backend)][0],
            "quick": quick,
            "seed": seed,
        }
        for pattern, backend in combos
        for rate in rates
    ]
    flags = [False] * len(cells)
    if flags:
        flags[-1] = True  # trace only the last cell (one run per trace)
    values = sweep_values(
        cell_point, cells, sweep=sweep, telemetry=telemetry, telemetry_points=flags
    )
    for cell, data in zip(cells, values):
        h_makespan, h_goodput = result.baselines[(cell["pattern"], cell["backend"])]
        result.cells.append(
            ChaosCell(
                pattern=cell["pattern"],
                backend=cell["backend"],
                rate=cell["rate"],
                healthy_makespan=h_makespan,
                healthy_goodput=h_goodput,
                **data,
            )
        )
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
