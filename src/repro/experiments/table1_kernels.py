"""Table 1 — the kernel inventory of the Kernels module.

Regenerates the paper's kernel list from the live registry and verifies
every kernel actually runs on both devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.config.schema import KernelConfig
from repro.kernels import KernelContext, device_from_name, kernel_class, list_kernels, make_kernel

#: Table 1 rows: (category, kernel, description)
PAPER_TABLE1 = [
    ("Compute", "MatMulSimple2D", "Simple 2D matrix multiplication"),
    ("Compute", "MatMulGeneral", "General matrix multiplication (GEMM)"),
    ("Compute", "FFT", "Fast Fourier Transform"),
    ("Compute", "AXPY", "Scalar-vector multiplication and addition (ax + y)"),
    ("Compute", "InplaceCompute", "Performs a computation on data in-place (f(x))"),
    ("Compute", "GenerateRandomNumber", "Generates an array of random numbers"),
    ("Compute", "ScatterAdd", "Scatters and adds values to an array"),
    ("IO", "WriteSingleRank", "A single process writes data to a file"),
    ("IO", "WriteNonMPI", "Writes data to a file without MPI-IO"),
    ("IO", "WriteWithMPI", "Writes data using MPI-IO collectives"),
    ("IO", "ReadNonMPI", "Reads data from a file without MPI-IO"),
    ("IO", "ReadWithMPI", "Reads data using MPI-IO collectives"),
    ("Collectives", "AllReduce", "Performs an all-reduce operation"),
    ("Collectives", "AllGather", "Performs an all-gather operation"),
    ("Copy", "CopyHostToDevice", "Copies data from CPU to GPU memory"),
    ("Copy", "CopyDeviceToHost", "Copies data from GPU to CPU memory"),
]

_CATEGORY_MAP = {"Compute": "compute", "IO": "io", "Collectives": "collective", "Copy": "copy"}


@dataclass
class Table1Result:
    rows: list[tuple[str, str, str, bool]]  # category, kernel, description, runs

    @property
    def all_present(self) -> bool:
        return all(ok for *_, ok in self.rows)

    def render(self) -> str:
        return format_table(
            ["Category", "Kernel", "Description", "Implemented+Runs"],
            self.rows,
            title="Table 1: kernels provided by the Kernel module",
        )


def _kernel_runs(name: str, tmpdir) -> bool:
    needs_dir = _CATEGORY_MAP.get(
        next(cat for cat, k, _ in PAPER_TABLE1 if k == name), "compute"
    ) == "io"
    for device in ("cpu", "xpu"):
        cfg = KernelConfig(mini_app_kernel=name, data_size=(8, 8), device=device)
        ctx = KernelContext(
            device=device_from_name(device),
            workdir=tmpdir if needs_dir else None,
        )
        kernel = make_kernel(cfg, ctx)
        try:
            kernel.run_once()
        finally:
            kernel.teardown()
    return True


def sweep_point(category: str, name: str) -> bool:
    """One grid cell: is the kernel registered, and does it run on both devices?"""
    import tempfile
    from pathlib import Path

    if name not in list_kernels(category=_CATEGORY_MAP[category]):
        return False
    with tempfile.TemporaryDirectory() as tmp:
        return _kernel_runs(name, Path(tmp))


def run(quick: bool = False, sweep=None) -> Table1Result:
    from repro.experiments.common import sweep_values

    cells = [
        {"category": category, "name": name}
        for category, name, _ in PAPER_TABLE1
    ]
    values = sweep_values(sweep_point, cells, sweep=sweep)
    rows = [
        (category, name, description, runs)
        for (category, name, description), runs in zip(PAPER_TABLE1, values)
    ]
    for _, name, _ in PAPER_TABLE1:
        assert kernel_class(name)  # raises if unregistered
    return Table1Result(rows=rows)


if __name__ == "__main__":
    print(run().render())
