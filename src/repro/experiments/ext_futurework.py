"""Extension experiment — the paper's future-work backends at scale.

§5 names two staging paths the authors plan to add: point-to-point
streaming (ADIOS2) and DAOS. Both are implemented here; this experiment
replays the paper's two stress cases with them in the lineup:

* Pattern 1 at 512 nodes (where Lustre collapses): does DAOS's
  distributed metadata avoid the collapse? Does streaming compete with
  node-local staging?
* Pattern 2 at 128 nodes (where incast latency decides): does streaming's
  cheap handshake beat the dictionary protocols?
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_series_table
from repro.experiments.common import (
    SIZE_SWEEP_BYTES,
    SIZE_SWEEP_MB,
    backend_models,
    measure_one_to_one,
    pattern1_context,
)
from repro.telemetry.stats import runtime_per_iteration
from repro.transport.models import (
    DaosBackendModel,
    StreamingBackendModel,
    TransportOpContext,
)
from repro.workloads.patterns import ManyToOneConfig, run_many_to_one


def extended_models():
    models = dict(backend_models())
    models["streaming"] = StreamingBackendModel()
    models["daos"] = DaosBackendModel()
    return models


def p1_sweep_point(backend: str, nbytes: float, iterations: int) -> float:
    """Pattern 1 at 512 nodes: write throughput (GB/s) for one cell."""
    m = measure_one_to_one(
        extended_models()[backend], nbytes, n_nodes=512, train_iterations=iterations
    )
    return m.write_throughput / 1e9


def p2_sweep_point(backend: str, nbytes: float, iterations: int) -> float:
    """Pattern 2 at 128 nodes: training runtime per iteration for one cell."""
    n_sims = 127
    n_clients = n_sims + 12
    res = run_many_to_one(
        extended_models()[backend],
        ManyToOneConfig(
            n_simulations=n_sims,
            train_iterations=iterations,
            snapshot_nbytes=nbytes,
        ),
        write_ctx=TransportOpContext(
            local=True, clients_per_server=12, concurrent_clients=n_clients
        ),
        read_ctx=TransportOpContext(
            local=False,
            clients_per_server=12,
            fan_in=n_sims,
            concurrent_peers=12,
            concurrent_clients=n_clients,
        ),
    )
    return runtime_per_iteration(
        res.log.filter(component="train"), "train", iterations
    )


@dataclass
class FutureWorkResult:
    #: pattern 1 write throughput at 512 nodes, backend -> series (GB/s)
    p1_write_512: dict[str, list[float]] = field(default_factory=dict)
    #: pattern 2 runtime/iter at 128 nodes, backend -> series (s)
    p2_runtime_128: dict[str, list[float]] = field(default_factory=dict)
    sizes_mb: list[float] = field(default_factory=lambda: list(SIZE_SWEEP_MB))

    def render(self) -> str:
        blocks = [
            format_series_table(
                "size (MB)",
                self.sizes_mb,
                self.p1_write_512,
                title=(
                    "Extension: Pattern 1 write throughput (GB/s) at 512 nodes "
                    "with the future-work backends"
                ),
            ),
            format_series_table(
                "size (MB)",
                self.sizes_mb,
                self.p2_runtime_128,
                title=(
                    "Extension: Pattern 2 training runtime per iteration (s) at "
                    "128 nodes with the future-work backends"
                ),
            ),
        ]
        return "\n\n".join(blocks)


P1_BACKENDS = ("node-local", "filesystem", "daos", "streaming")
P2_BACKENDS = ("filesystem", "dragon", "daos", "streaming")


def run(quick: bool = False, sweep=None) -> FutureWorkResult:
    from repro.experiments.common import sweep_values

    p1_iters = 300 if quick else 1500
    p2_iters = 100 if quick else 500
    result = FutureWorkResult()

    # Pattern 1 at 512 nodes: filesystem vs daos vs node-local vs streaming.
    p1_cells = [
        {"backend": backend, "nbytes": nbytes, "iterations": p1_iters}
        for backend in P1_BACKENDS
        for nbytes in SIZE_SWEEP_BYTES
    ]
    p1_values = iter(sweep_values(p1_sweep_point, p1_cells, sweep=sweep))
    for backend in P1_BACKENDS:
        result.p1_write_512[backend] = [next(p1_values) for _ in SIZE_SWEEP_BYTES]

    # Pattern 2 at 128 nodes: filesystem vs dragon vs daos vs streaming.
    p2_cells = [
        {"backend": backend, "nbytes": nbytes, "iterations": p2_iters}
        for backend in P2_BACKENDS
        for nbytes in SIZE_SWEEP_BYTES
    ]
    p2_values = iter(sweep_values(p2_sweep_point, p2_cells, sweep=sweep))
    for backend in P2_BACKENDS:
        result.p2_runtime_128[backend] = [next(p2_values) for _ in SIZE_SWEEP_BYTES]
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
