"""Fig 3 — Pattern 1 read/write throughput vs array size, 8 and 512 nodes.

For every backend and message size in the paper's sweep (0.4-32 MB), runs
the co-located one-to-one mini-app and reports the per-process read and
write throughput averaged over all processes and events.

Shapes to match (§4.1.2):

* in-memory backends (node-local, dragon, redis): non-monotonic — rising
  with size, dipping past the ~8 MB per-process L3 share;
* node-local ≳ dragon > redis;
* filesystem: monotonic rise with size; collapses at 512 nodes from MDS
  metadata contention while the others are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_series_table
from repro.experiments.common import (
    PATTERN1_BACKENDS,
    SIZE_SWEEP_BYTES,
    SIZE_SWEEP_MB,
    backend_models,
    measure_one_to_one,
    sweep_values,
)

SCALES = (8, 512)


def sweep_point(
    backend: str, nbytes: float, scale: int, iterations: int, telemetry=None
) -> tuple[float, float]:
    """One grid cell: (read, write) throughput for backend x size x scale."""
    m = measure_one_to_one(
        backend_models()[backend],
        nbytes,
        n_nodes=scale,
        train_iterations=iterations,
        telemetry=telemetry,
    )
    return m.read_throughput, m.write_throughput


@dataclass
class Fig3Result:
    #: throughput[scale][backend] = [bytes/s per size]
    read: dict[int, dict[str, list[float]]] = field(default_factory=dict)
    write: dict[int, dict[str, list[float]]] = field(default_factory=dict)
    sizes_mb: list[float] = field(default_factory=lambda: list(SIZE_SWEEP_MB))

    def render(self) -> str:
        blocks = []
        for scale in sorted(self.read):
            for metric, data in (("read", self.read), ("write", self.write)):
                series = {
                    backend: [v / 1e9 for v in data[scale][backend]]
                    for backend in data[scale]
                }
                blocks.append(
                    format_series_table(
                        "size (MB)",
                        self.sizes_mb,
                        series,
                        title=(
                            f"Figure 3 ({'a' if scale == 8 else 'b'}): {metric} "
                            f"throughput per process (GB/s) at {scale} nodes"
                        ),
                    )
                )
        return "\n\n".join(blocks)


def run(quick: bool = False, backends=None, telemetry=None, sweep=None) -> Fig3Result:
    """Run the sweep; ``backends`` restricts it, ``telemetry`` records it.

    When a :class:`~repro.telemetry.hub.Telemetry` hub is given, every
    pattern run contributes transport/workload spans and engine gauge
    series to it — one trace file covering the whole sweep. ``sweep``
    (a :class:`~repro.sweep.engine.SweepOptions`) fans the grid out
    across worker processes and/or a result cache; for a fixed seed the
    rendered output is bit-identical to the serial path.
    """
    iterations = 300 if quick else 2500
    backends = list(backends or PATTERN1_BACKENDS)
    cells = [
        {"backend": backend, "nbytes": nbytes, "scale": scale, "iterations": iterations}
        for scale in SCALES
        for backend in backends
        for nbytes in SIZE_SWEEP_BYTES
    ]
    values = sweep_values(sweep_point, cells, sweep=sweep, telemetry=telemetry)

    result = Fig3Result()
    it = iter(values)
    for scale in SCALES:
        result.read[scale] = {}
        result.write[scale] = {}
        for backend in backends:
            series = [next(it) for _ in SIZE_SWEEP_BYTES]
            result.read[scale][backend] = [read for read, _ in series]
            result.write[scale][backend] = [write for _, write in series]
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
