"""Table 2 — event-count fidelity: original workflow vs mini-app.

Runs the synthesized "original" nekRS-ML workflow (measured iteration-time
distributions, Redis transport) and its SimAI-Bench mini-app replica, and
compares time-step and data-transport event counts per component.

Paper reference values (5000 training iterations):

    ============  =========  ==============  =========  ==============
                  Simulation                 Training
                  timestep   data transport  timestep   data transport
    Original      10108      203             5000       208
    Mini-app      10507      211             5000       208
    ============  =========  ==============  =========  ==============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.validation import CountComparison, compare_event_counts

PAPER_TABLE2 = {
    "original": {"sim_timestep": 10108, "sim_transport": 203, "train_timestep": 5000, "train_transport": 208},
    "miniapp": {"sim_timestep": 10507, "sim_transport": 211, "train_timestep": 5000, "train_transport": 208},
}


@dataclass
class Table2Result:
    sim: CountComparison
    train: CountComparison
    train_iterations: int

    def render(self) -> str:
        rows = [
            (
                "Original",
                self.sim.original_timesteps,
                self.sim.original_transport,
                self.train.original_timesteps,
                self.train.original_transport,
            ),
            (
                "Mini-app",
                self.sim.miniapp_timesteps,
                self.sim.miniapp_transport,
                self.train.miniapp_timesteps,
                self.train.miniapp_transport,
            ),
        ]
        table = format_table(
            ["", "Sim timestep", "Sim transport", "Train timestep", "Train transport"],
            rows,
            title=(
                "Table 2: time steps and data transport events "
                f"({self.train_iterations} training iterations)"
            ),
        )
        if self.train_iterations == 5000:
            paper = PAPER_TABLE2
            table += (
                "\npaper:    original "
                f"{paper['original']['sim_timestep']}/{paper['original']['sim_transport']} sim, "
                f"{paper['original']['train_timestep']}/{paper['original']['train_transport']} train; "
                "mini-app "
                f"{paper['miniapp']['sim_timestep']}/{paper['miniapp']['sim_transport']} sim, "
                f"{paper['miniapp']['train_timestep']}/{paper['miniapp']['train_transport']} train"
            )
        return table


def run(quick: bool = False, seed: int = 0, sweep=None) -> Table2Result:
    from repro.experiments.common import nekrs_validation_point, sweep_values

    iterations = 500 if quick else 5000
    cells = [
        {"which": which, "iterations": iterations, "seed": seed}
        for which in ("original", "miniapp")
    ]
    original, miniapp = sweep_values(nekrs_validation_point, cells, sweep=sweep)
    return Table2Result(
        sim=compare_event_counts(original.log, miniapp.log, "sim"),
        train=compare_event_counts(original.log, miniapp.log, "train"),
        train_iterations=iterations,
    )


if __name__ == "__main__":
    print(run().render())
