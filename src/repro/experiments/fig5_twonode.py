"""Fig 5 — Pattern 2 at two nodes: non-local read, local write throughput.

One simulation component and one AI component on different nodes. The
simulation stages locally; the AI reads non-locally. The node-local
backend is excluded (impossible in this pattern) as in the paper.

Shapes to match (§4.2):

* redis: reasonable local write, poor non-local read;
* dragon: high throughput both ways, read peaking near 10 MB then
  declining;
* filesystem: monotonic rise with size, approaching dragon at the largest
  sizes;
* local-write profiles resemble Fig 3's write panels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_series_table
from repro.experiments.common import (
    PATTERN2_BACKENDS,
    SIZE_SWEEP_BYTES,
    SIZE_SWEEP_MB,
    backend_models,
    sweep_values,
)
from repro.telemetry.events import EventKind
from repro.telemetry.stats import mean_throughput
from repro.transport.models import TransportOpContext
from repro.workloads.patterns import ManyToOneConfig, run_many_to_one


def sweep_point(backend: str, nbytes: float, iterations: int) -> tuple[float, float]:
    """One grid cell: (non-local read, local write) throughput."""
    config = ManyToOneConfig(
        n_simulations=1,
        train_iterations=iterations,
        snapshot_nbytes=nbytes,
        reader_lanes=1,
    )
    res = run_many_to_one(
        backend_models()[backend],
        config,
        write_ctx=TransportOpContext(local=True, clients_per_server=12),
        read_ctx=TransportOpContext(
            local=False, clients_per_server=12, fan_in=1, concurrent_clients=2
        ),
    )
    return (
        mean_throughput(res.log, EventKind.READ),
        mean_throughput(res.log, EventKind.WRITE),
    )


@dataclass
class Fig5Result:
    read: dict[str, list[float]] = field(default_factory=dict)  # non-local read
    write: dict[str, list[float]] = field(default_factory=dict)  # local write
    sizes_mb: list[float] = field(default_factory=lambda: list(SIZE_SWEEP_MB))

    def render(self) -> str:
        blocks = []
        for label, data in (("(a) non-local read", self.read), ("(b) local write", self.write)):
            series = {b: [v / 1e9 for v in vals] for b, vals in data.items()}
            blocks.append(
                format_series_table(
                    "size (MB)",
                    self.sizes_mb,
                    series,
                    title=f"Figure 5 {label} throughput (GB/s), 2-node Pattern 2",
                )
            )
        return "\n\n".join(blocks)


def run(quick: bool = False, sweep=None) -> Fig5Result:
    iterations = 300 if quick else 2500
    cells = [
        {"backend": backend, "nbytes": nbytes, "iterations": iterations}
        for backend in PATTERN2_BACKENDS
        for nbytes in SIZE_SWEEP_BYTES
    ]
    values = sweep_values(sweep_point, cells, sweep=sweep)

    result = Fig5Result()
    it = iter(values)
    for backend in PATTERN2_BACKENDS:
        series = [next(it) for _ in SIZE_SWEEP_BYTES]
        result.read[backend] = [read for read, _ in series]
        result.write[backend] = [write for _, write in series]
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
