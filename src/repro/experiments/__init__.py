"""Experiment drivers: one module per table/figure in the paper.

Each exposes ``run(quick=False) -> Result`` where the result has a
``render()`` returning the paper-style table text. The CLI entry point::

    python -m repro.experiments all --quick
    python -m repro.experiments fig3
"""

from repro.experiments import (
    ext_faults,
    ext_futurework,
    ext_inference,
    fig2_timeline,
    fig3_throughput,
    fig4_overhead,
    fig5_twonode,
    fig6_scaling,
    table1_kernels,
    table2_validation,
    table3_iterstats,
)

#: Paper artifacts. "all" on the CLI runs exactly these.
ALL_EXPERIMENTS = {
    "table1": table1_kernels,
    "table2": table2_validation,
    "table3": table3_iterstats,
    "fig2": fig2_timeline,
    "fig3": fig3_throughput,
    "fig4": fig4_overhead,
    "fig5": fig5_twonode,
    "fig6": fig6_scaling,
}

#: Extension studies beyond the paper (run by explicit name).
EXTENSION_EXPERIMENTS = {
    "ext_inference": ext_inference,
    "ext_futurework": ext_futurework,
    "ext_faults": ext_faults,
}

__all__ = ["ALL_EXPERIMENTS", "EXTENSION_EXPERIMENTS"]
