"""Extension experiment — latency-limited coupled inference.

Not a paper artifact: quantifies the intro's claim that inference
coupling is latency-limited ("the cost of data transfer dominating over
the computational one", §1) across the backends, using the blocking
round-trip pattern of :mod:`repro.workloads.inference`.

Expected outcome: at inference-sized messages (~0.1 MB requests) the
round trip is dominated by backend latency, so the ordering follows
per-op latency (node-local < dragon < redis < filesystem) — a different
winner profile than the bandwidth-bound training patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.experiments.common import backend_models, pattern1_context
from repro.transport.models import StreamingBackendModel
from repro.workloads.inference import InferenceLoopConfig, run_inference_loop


@dataclass
class InferenceExtResult:
    #: backend -> (mean round trip s, transport fraction)
    rows: dict[str, tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        table_rows = [
            (name, rt * 1e3, frac * 100.0)
            for name, (rt, frac) in sorted(self.rows.items(), key=lambda kv: kv[1][0])
        ]
        return format_table(
            ["backend", "round trip (ms)", "transport share of loop (%)"],
            table_rows,
            title="Extension: blocking inference round trip (0.1 MB requests)",
        )


def run(quick: bool = False) -> InferenceExtResult:
    iterations = 50 if quick else 500
    config = InferenceLoopConfig(iterations=iterations)
    models = dict(backend_models())
    models["streaming"] = StreamingBackendModel()
    result = InferenceExtResult()
    ctx = pattern1_context(8)
    for name, model in models.items():
        res = run_inference_loop(model, config, ctx=ctx)
        result.rows[name] = (res.mean_round_trip, res.transport_fraction)
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
