"""Extension experiment — latency-limited coupled inference.

Not a paper artifact: quantifies the intro's claim that inference
coupling is latency-limited ("the cost of data transfer dominating over
the computational one", §1) across the backends, using the blocking
round-trip pattern of :mod:`repro.workloads.inference`.

Expected outcome: at inference-sized messages (~0.1 MB requests) the
round trip is dominated by backend latency, so the ordering follows
per-op latency (node-local < dragon < redis < filesystem) — a different
winner profile than the bandwidth-bound training patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.report import format_table
from repro.experiments.common import backend_models, pattern1_context, sweep_values
from repro.transport.models import StreamingBackendModel
from repro.workloads.inference import InferenceLoopConfig, run_inference_loop


def _inference_models():
    models = dict(backend_models())
    models["streaming"] = StreamingBackendModel()
    return models


def sweep_point(backend: str, iterations: int) -> tuple[float, float]:
    """One grid cell: (mean round trip s, transport fraction of the loop)."""
    res = run_inference_loop(
        _inference_models()[backend],
        InferenceLoopConfig(iterations=iterations),
        ctx=pattern1_context(8),
    )
    return res.mean_round_trip, res.transport_fraction


@dataclass
class InferenceExtResult:
    #: backend -> (mean round trip s, transport fraction)
    rows: dict[str, tuple[float, float]] = field(default_factory=dict)

    def render(self) -> str:
        table_rows = [
            (name, rt * 1e3, frac * 100.0)
            for name, (rt, frac) in sorted(self.rows.items(), key=lambda kv: kv[1][0])
        ]
        return format_table(
            ["backend", "round trip (ms)", "transport share of loop (%)"],
            table_rows,
            title="Extension: blocking inference round trip (0.1 MB requests)",
        )


def run(quick: bool = False, sweep=None) -> InferenceExtResult:
    iterations = 50 if quick else 500
    names = list(_inference_models())
    cells = [{"backend": name, "iterations": iterations} for name in names]
    values = sweep_values(sweep_point, cells, sweep=sweep)
    result = InferenceExtResult()
    for name, value in zip(names, values):
        result.rows[name] = value
    return result


if __name__ == "__main__":
    import sys

    print(run(quick="--quick" in sys.argv).render())
