"""Table 3 — iteration-time mean/std fidelity: original vs mini-app.

Paper reference values:

    ==========  ================  ================
                Simulation        Training
                mean (s)  std     mean (s)  std
    Original    0.0312    0.0273  0.0611    0.1
    Mini-app    0.0325    0.0011  0.0633    0.0017
    ==========  ================  ================

The headline behaviours to reproduce: mini-app means within a few percent
of the original's, and a mini-app std that is orders of magnitude smaller
(the executor pins iteration durations to the configured value, §4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.core.validation import IterationComparison, compare_iteration_stats
from repro.telemetry.events import EventKind

PAPER_TABLE3 = {
    "original": {"sim_mean": 0.0312, "sim_std": 0.0273, "train_mean": 0.0611, "train_std": 0.1},
    "miniapp": {"sim_mean": 0.0325, "sim_std": 0.0011, "train_mean": 0.0633, "train_std": 0.0017},
}


@dataclass
class Table3Result:
    sim: IterationComparison
    train: IterationComparison
    train_iterations: int

    def render(self) -> str:
        rows = [
            (
                "Original",
                self.sim.original.mean,
                self.sim.original.std,
                self.train.original.mean,
                self.train.original.std,
            ),
            (
                "Mini-app",
                self.sim.miniapp.mean,
                self.sim.miniapp.std,
                self.train.miniapp.mean,
                self.train.miniapp.std,
            ),
        ]
        table = format_table(
            ["", "Sim mean (s)", "Sim std (s)", "Train mean (s)", "Train std (s)"],
            rows,
            title=(
                "Table 3: iteration time statistics "
                f"({self.train_iterations} training iterations)"
            ),
        )
        p = PAPER_TABLE3
        table += (
            f"\npaper:    original {p['original']['sim_mean']}/{p['original']['sim_std']} sim, "
            f"{p['original']['train_mean']}/{p['original']['train_std']} train; "
            f"mini-app {p['miniapp']['sim_mean']}/{p['miniapp']['sim_std']} sim, "
            f"{p['miniapp']['train_mean']}/{p['miniapp']['train_std']} train"
        )
        return table


def run(quick: bool = False, seed: int = 0, sweep=None) -> Table3Result:
    from repro.experiments.common import nekrs_validation_point, sweep_values

    iterations = 500 if quick else 5000
    cells = [
        {"which": which, "iterations": iterations, "seed": seed}
        for which in ("original", "miniapp")
    ]
    original, miniapp = sweep_values(nekrs_validation_point, cells, sweep=sweep)
    return Table3Result(
        sim=compare_iteration_stats(original.log, miniapp.log, "sim", EventKind.COMPUTE),
        train=compare_iteration_stats(original.log, miniapp.log, "train", EventKind.TRAIN),
        train_iterations=iterations,
    )


if __name__ == "__main__":
    print(run().render())
