"""DES implementations of the paper's two workflow patterns.

These run the *simulated* (Aurora-scale) mode: component compute time is
sampled from configured distributions and charged to the DES clock, and
data transport goes through a :class:`~repro.transport.simstore.
SimDataStore` whose backend model carries the scale context. Real-mode
equivalents (threads + real stores) live in :mod:`repro.workloads.realrun`.

Pattern 1 — one-to-one (§4.1): a simulation and an AI trainer co-located
on each node. The simulation stages a snapshot (``arrays_per_snapshot``
staged values) every ``write_interval`` iterations; the trainer checks for
new snapshots every ``read_interval`` training iterations and ingests
everything pending (fully asynchronous). When the trainer completes
``train_iterations`` it *steers the workflow*, instructing the simulation
to stop. Ranks on other nodes behave statistically identically, so one
node's rank pair is simulated per rank index and backend-scale effects
enter through the model's :class:`~repro.transport.models.
TransportOpContext`.

Pattern 2 — many-to-one (§4.2): ``n_simulations`` producers (one per
node), a single trainer on its own node. Every producer writes every
``write_interval`` iterations; every ``read_interval`` training
iterations the trainer **blocks** until it has read the update from every
producer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.config.distributions import Constant, Distribution
from repro.des import Environment
from repro.des.parallel import run_sharded
from repro.des.partition import Partition, partition_nodes
from repro.des.rng import RngRegistry
from repro.errors import ConfigError, KeyNotStagedError, TransportError
from repro.faults import FaultInjector, FaultPlan, FaultState
from repro.telemetry.events import EventKind, EventLog
from repro.telemetry.hub import Telemetry
from repro.transport.models import BackendModel, TransportOpContext
from repro.transport.resilience import (
    ResilienceConfig,
    ResilienceStats,
    ResilientSimDataStore,
)
from repro.transport.simstore import SimDataStore, SimStagingArea

#: Calibrated iteration times from the paper's production profiling (§4.1.1).
NEKRS_ITER_TIME = 0.03147
NEKRS_MEASURED_MEAN = 0.0312
NEKRS_MEASURED_STD = 0.0273
GNN_ITER_TIME = 0.061
GNN_MEASURED_MEAN = 0.0611
GNN_MEASURED_STD = 0.1
#: The production workflow moves 1.2 MB per rank per staging op (§4.1.2).
DEFAULT_SNAPSHOT_NBYTES = 1.2e6
#: Component initialization spans (gray areas of Fig 2).
SIM_INIT_TIME = 2.0
AI_INIT_TIME = 4.0


@dataclass
class OneToOneConfig:
    """Knobs of the pattern-1 mini-app."""

    sim_iter_time: Distribution = field(default_factory=lambda: Constant(NEKRS_ITER_TIME))
    ai_iter_time: Distribution = field(default_factory=lambda: Constant(GNN_ITER_TIME))
    write_interval: int = 100
    read_interval: int = 10
    train_iterations: int = 5000
    snapshot_nbytes: float = DEFAULT_SNAPSHOT_NBYTES
    arrays_per_snapshot: int = 2
    ranks_per_component: int = 6  # 6 sim + 6 AI tiles per Aurora node
    sim_init_time: float = SIM_INIT_TIME
    ai_init_time: float = AI_INIT_TIME
    seed: int = 0

    def __post_init__(self) -> None:
        if min(self.write_interval, self.read_interval, self.arrays_per_snapshot) < 1:
            raise ConfigError("intervals and arrays_per_snapshot must be >= 1")
        if self.train_iterations < 0:
            raise ConfigError("train_iterations must be >= 0")
        if self.ranks_per_component < 1:
            raise ConfigError("ranks_per_component must be >= 1")


@dataclass
class PatternResult:
    """What a pattern run produces.

    ``resilience`` is None on a healthy run; under an active fault plan
    (or explicit resilience config) it carries the injector summary,
    retry/recovery stats, and the degradation counters (lost snapshots,
    missed reads, quorum misses, staleness violations, downtime).
    """

    log: EventLog
    makespan: float
    sim_iterations: int
    train_iterations: int
    snapshots_written: int
    snapshots_read: int
    resilience: Optional[dict] = None


class _StopFlag:
    """The steering signal: AI tells the simulation to stop (§4.1)."""

    def __init__(self) -> None:
        self.stopped = False

    def set(self) -> None:
        self.stopped = True


class _ShardStop:
    """Cross-shard steering signal (drop-in for :class:`_StopFlag`).

    On the owning shard ``set()`` has plain-boolean semantics, identical
    to serial. Other shards receive the stop *time* over the shard
    protocol; for them ``stopped`` reads true for any event at or after
    that time — which is when the serial flag would read true there,
    since the owning trainer set it at exactly that simulated instant.
    """

    def __init__(self, env: Environment, program: "_ShardProgram") -> None:
        self._env = env
        self._program = program
        self.stop_time: Optional[float] = None  # set locally on the owner
        self._remote_time: Optional[float] = None

    @property
    def stopped(self) -> bool:
        if self.stop_time is not None:
            return True
        remote = self._remote_time
        return remote is not None and self._env.now >= remote

    def set(self) -> None:
        if self.stop_time is None:
            self.stop_time = self._env.now
            self._program.emit(None, ("stop", self._env.now))

    def receive(self, time: float) -> None:
        if self._remote_time is None or time < self._remote_time:
            self._remote_time = time


class _EgressArea(SimStagingArea):
    """Staging area on a producer shard: publishes also cross the fabric.

    The local copy keeps producer-side observations (overwrite checks,
    gauges) serial-identical; the emitted message re-publishes the key
    on the trainer's shard at the same simulated time.
    """

    def __init__(self, program: "_ShardProgram") -> None:
        super().__init__()
        self._program = program

    def publish(self, key: str, nbytes: float) -> None:
        super().publish(key, nbytes)
        self._program.emit(self._program.publishes_to, ("publish", key, nbytes))


class _TrackedSimDataStore(SimDataStore):
    """Producer store that exposes in-flight write completion times.

    A healthy write's completion time is known on entry (the transport
    model is a pure function of size and context), so the open interval
    can feed the shard's publish promise: the trainer's horizon must not
    pass a write that is already on the wire.
    """

    def __init__(self, *args, shard_program: "_ShardProgram", **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._program = shard_program

    def stage_write(self, key: str, nbytes: float, ctx=None):
        eta = self.env.now + self.model.write_time(nbytes, ctx or self.default_ctx)
        token = self._program.track_write(eta)
        try:
            result = yield from super().stage_write(key, nbytes, ctx)
        finally:
            self._program.untrack_write(token)
        return result


class _ShardProgram:
    """One shard's slice of a pattern run.

    Implements the :mod:`repro.des.parallel` shard contract. The pattern
    body (called with ``_shard=<program>``) builds its environment, log,
    and counters exactly as in serial — restricted to this shard's
    member ranks/producers — and binds them here instead of calling
    ``env.run()``; the parallel runtime then drives the rounds.

    Promises:

    * a producer shard promises the trainer's shard
      ``min(in-flight write completions, peek + write_lookahead)`` — no
      publish can appear earlier;
    * the shard owning the steering trainer promises everyone
      ``note_time + remaining_iterations * iteration_floor`` (the stop
      oracle), switching to ``inf`` once the stop has been emitted.
    """

    def __init__(
        self,
        shard_id: int,
        n_shards: int,
        members: list[int],
        owns_stop: bool,
        publishes_to: Optional[int] = None,
        write_lookahead: float = 0.0,
        stop_iter_floor: float = 0.0,
        stop_total_iters: int = 0,
    ) -> None:
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.members = members
        self.owns_stop = owns_stop
        self.publishes_to = publishes_to
        self.write_lookahead = write_lookahead
        self.stop_iter_floor = stop_iter_floor
        self.stop_total_iters = stop_total_iters
        self._outbox: list[tuple] = []
        self._inflight: dict[int, float] = {}
        self._next_token = 0
        self._note_time = 0.0
        self._note_iters = 0
        # Bound by the pattern body before the first round:
        self.env: Optional[Environment] = None
        self.log: Optional[EventLog] = None
        self.counters: Optional[dict] = None
        self.stop: Optional[_ShardStop] = None
        self.area: Optional[SimStagingArea] = None
        self.telemetry: Optional[Telemetry] = None

    # -- hooks for the shard-aware pattern pieces -------------------------
    def emit(self, dest: Optional[int], payload: tuple) -> None:
        self._outbox.append((self.env.now, dest, payload))

    def track_write(self, eta: float) -> int:
        token = self._next_token
        self._next_token += 1
        self._inflight[token] = eta
        return token

    def untrack_write(self, token: int) -> None:
        del self._inflight[token]

    def note_train(self, iteration: int) -> None:
        """Record steering-trainer progress (feeds the stop oracle)."""
        self._note_iters = iteration
        self._note_time = self.env.now

    # -- repro.des.parallel contract --------------------------------------
    def apply(self, payload: tuple) -> None:
        kind = payload[0]
        if kind == "publish":
            self.area.publish(payload[1], payload[2])
        elif kind == "stop":
            self.stop.receive(payload[1])
        else:  # pragma: no cover - protocol misuse
            raise ConfigError(f"unknown cross-shard payload kind {kind!r}")

    def promises(self) -> dict:
        out: dict = {}
        if self.publishes_to is not None:
            peek = self.env.peek()
            bound = peek if peek == float("inf") else peek + self.write_lookahead
            if self._inflight:
                bound = min(bound, min(self._inflight.values()))
            out[self.publishes_to] = bound
        if self.owns_stop:
            if self.stop.stop_time is not None:
                out["*"] = float("inf")
            else:
                remaining = self.stop_total_iters - self._note_iters
                out["*"] = self._note_time + remaining * self.stop_iter_floor
        return out

    def take_outbox(self) -> list[tuple]:
        out = self._outbox
        self._outbox = []
        return out

    def result(self) -> dict:
        return {
            "records": list(self.log),
            "counters": self.counters,
            "telemetry": None if self.telemetry is None else self.telemetry.snapshot(),
        }


def _check_shardable(
    fault_plan: Optional[FaultPlan],
    resilience: Optional[ResilienceConfig],
    ai_iter_time: Distribution,
) -> float:
    """Validate sharded-run preconditions; returns the iteration floor."""
    if fault_plan is not None and fault_plan.is_active:
        raise ConfigError(
            "sharded pattern runs do not support fault injection; "
            "run fault studies serially (shards=1)"
        )
    if resilience is not None:
        raise ConfigError(
            "sharded pattern runs do not support resilience wrapping; "
            "run resilience studies serially (shards=1)"
        )
    floor = ai_iter_time.minimum()
    if not floor > 0.0:
        raise ConfigError(
            "sharded pattern runs need an ai_iter_time with a positive "
            f"lower bound (minimum() = {floor}); the trainer progress "
            "oracle derives its cross-shard lookahead from it"
        )
    return floor


def _merge_sharded(results: list[dict], telemetry: Optional[Telemetry]):
    """Deterministically merge per-shard results into (log, counters).

    Records merge in ``(emission time, shard, local index)`` order.
    Emission time is recoverable from the record itself (every workload
    record is appended at ``start + duration``), local order is the
    shard engine's serial order for its own ranks, and shard order
    matches rank order because partitions are contiguous — so the merged
    stream reproduces the serial log byte for byte.
    """
    keyed = []
    counters: dict = {}
    for shard_id, res in enumerate(results):
        for idx, rec in enumerate(res["records"]):
            keyed.append((rec.start + rec.duration, shard_id, idx, rec))
        for name, value in res["counters"].items():
            counters[name] = counters.get(name, 0) + value
        if telemetry is not None:
            telemetry.merge(res["telemetry"])
    keyed.sort(key=lambda item: (item[0], item[1], item[2]))
    log = EventLog(item[3] for item in keyed)
    return log, counters


def _balanced_rank_partition(n_ranks: int, shards: int) -> Partition:
    """Contiguous balanced spans over pattern-1 rank pairs.

    Pattern 1's rank pairs are self-contained (each trainer reads only
    its co-located simulation's keys), so no fabric traffic crosses a
    cut and the only cross-shard channel is the steering signal, whose
    lookahead comes from the stop oracle — the partition's fabric
    lookahead is irrelevant and recorded as ``inf``.
    """
    if shards > n_ranks:
        raise ConfigError(
            f"cannot split {n_ranks} rank pair(s) into {shards} shards"
        )
    cuts = [k * n_ranks // shards for k in range(shards + 1)]
    return Partition(
        spans=tuple(zip(cuts, cuts[1:])), lookahead=float("inf")
    )


def _bind_telemetry(telemetry: Optional[Telemetry], env: Environment, area: SimStagingArea):
    """Attach the engine sampler and the staging-memory gauge source."""
    if telemetry is None:
        return
    sampler = telemetry.bind_environment(env)
    sampler.add_source("staging.bytes", lambda: area.staged_bytes)
    sampler.add_source("staging.keys", lambda: len(area.keys()))


def _iteration_span(
    telemetry: Optional[Telemetry], component: str, rank: int, iteration: int
):
    """An open workload-iteration span, or None when telemetry is off."""
    if telemetry is None:
        return None
    return telemetry.tracer.span(
        f"iteration.{component}",
        category="workload",
        pid=component,
        tid=rank,
        iteration=iteration,
    )


class _FaultHarness:
    """Per-run fault/resilience wiring shared by both patterns.

    Inactive — no enabled fault plan and no explicit resilience config —
    it is pure pass-through: :meth:`wrap` returns the store unchanged and
    every check short-circuits, so the run's event sequence stays
    bit-identical to a build without the fault subsystem.
    """

    def __init__(
        self,
        env: Environment,
        log: EventLog,
        rngs: RngRegistry,
        telemetry: Optional[Telemetry],
        fault_plan: Optional[FaultPlan],
        resilience: Optional[ResilienceConfig],
    ) -> None:
        self.env = env
        self.telemetry = telemetry
        self.rngs = rngs
        plan_active = fault_plan is not None and fault_plan.is_active
        self.active = plan_active or resilience is not None
        self.state = FaultState(seed=fault_plan.seed) if plan_active else None
        self.config = resilience or (ResilienceConfig() if self.active else None)
        self.stats = ResilienceStats() if self.active else None
        self.injector: Optional[FaultInjector] = None
        if plan_active:
            self.injector = FaultInjector(
                env, fault_plan, self.state, telemetry=telemetry, event_log=log
            )

    def start(self) -> None:
        if self.injector is not None:
            self.injector.start()

    def wrap(
        self, store: SimDataStore
    ) -> Union[SimDataStore, ResilientSimDataStore]:
        if not self.active:
            return store
        return ResilientSimDataStore(
            store,
            policy=self.config.policy,
            breaker=self.config.make_breaker(lambda: self.env.now),
            rng=self.rngs.stream(f"resilience:{store.component}:{store.rank}"),
            stats=self.stats,
            telemetry=self.telemetry,
        )

    def crashed(self, component: str) -> bool:
        """True while ``component``'s node is down (fault runs only)."""
        return self.state is not None and self.state.is_component_down(component)

    @property
    def staleness_bound(self) -> float:
        return self.config.staleness_bound if self.config is not None else float("inf")

    @property
    def quorum(self) -> float:
        return self.config.quorum if self.config is not None else 1.0

    def report(self, extra: dict) -> Optional[dict]:
        """The PatternResult.resilience payload (None when inactive)."""
        if not self.active:
            return None
        out: dict = {"stats": self.stats.as_dict()}
        if self.injector is not None:
            out["faults"] = self.injector.summary()
        out.update(extra)
        return out


def _workload_makespan(log: EventLog) -> float:
    """Makespan over workload records (fault windows may outlast the run)."""
    return log.filter(kinds=[k for k in EventKind if k is not EventKind.FAULT]).makespan()


def run_one_to_one(
    model: BackendModel,
    config: Optional[OneToOneConfig] = None,
    ctx: Optional[TransportOpContext] = None,
    sim_name: str = "sim",
    ai_name: str = "train",
    telemetry: Optional[Telemetry] = None,
    fault_plan: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
    shards: int = 1,
    partition: Optional[Partition] = None,
    _shard: Optional[_ShardProgram] = None,
) -> PatternResult:
    """Simulate the one-to-one pattern; returns logs and counters.

    Passing a :class:`~repro.telemetry.hub.Telemetry` hub records
    workload-iteration and transport spans on virtual time, transport
    histograms, and engine gauge series (link occupancy, staged bytes,
    event-queue depth); with ``telemetry=None`` the run is untouched.

    An enabled ``fault_plan`` injects the planned faults (node/backend
    crashes, degraded links, drops, corruption) through DES events and
    wraps every store with retry/backoff per ``resilience`` (defaults
    apply when omitted). The workload degrades rather than crashes: the
    simulation skips snapshots it cannot stage (counted as data loss)
    and the trainer tolerates stale data up to
    ``resilience.staleness_bound``, skipping snapshots lost for good.
    With the plan disabled (or None) the run is bit-identical to a
    healthy one.
    """
    config = config or OneToOneConfig()
    ctx = ctx or TransportOpContext(local=True, clients_per_server=12)
    if _shard is None and (
        shards > 1 or (partition is not None and partition.n_shards > 1)
    ):
        return _run_one_to_one_sharded(
            model, config, ctx, sim_name, ai_name, telemetry,
            fault_plan, resilience, shards, partition,
        )
    sh = _shard
    env = Environment()
    log = EventLog()
    area = SimStagingArea()
    if sh is not None:
        sh.env = env
    _bind_telemetry(telemetry, env, area)
    rngs = RngRegistry(config.seed)
    stop = _StopFlag() if sh is None else _ShardStop(env, sh)
    harness = _FaultHarness(env, log, rngs, telemetry, fault_plan, resilience)
    counters = {
        "sim_iters": 0,
        "train_iters": 0,
        "written": 0,
        "read": 0,
        "lost": 0,
        "lost_skipped": 0,
        "failed_ingests": 0,
        "staleness": 0,
        "downtime": 0.0,
    }

    def sim_rank(rank: int):
        store = harness.wrap(
            SimDataStore(
                env,
                model,
                area,
                component=sim_name,
                rank=rank,
                event_log=log,
                default_ctx=ctx,
                telemetry=telemetry,
                fault_state=harness.state,
            )
        )
        rng = rngs.stream(f"sim{rank}")
        yield env.timeout(config.sim_init_time)
        if rank == 0:
            log.add(sim_name, EventKind.INIT, 0.0, config.sim_init_time, rank=rank)
        iteration = 0
        snapshot = 0
        while not stop.stopped:
            if harness.crashed(sim_name):
                counters["downtime"] += yield from harness.state.wait_until_up(
                    env, sim_name, should_abort=lambda: stop.stopped
                )
                if stop.stopped:
                    break
            start = env.now
            span = _iteration_span(telemetry, sim_name, rank, iteration + 1)
            yield env.timeout(max(0.0, config.sim_iter_time.sample(rng)))
            if span is not None:
                span.finish()
            log.add(sim_name, EventKind.COMPUTE, start, env.now - start, rank=rank)
            iteration += 1
            if rank == 0:
                counters["sim_iters"] += 1
            if iteration % config.write_interval == 0:
                try:
                    for a in range(config.arrays_per_snapshot):
                        yield from store.stage_write(
                            f"r{rank}_snap{snapshot}_a{a}", config.snapshot_nbytes
                        )
                except TransportError:
                    # Degrade, don't crash: the snapshot is lost, the
                    # simulation carries on.
                    counters["lost"] += 1
                else:
                    if rank == 0:
                        counters["written"] += 1
                snapshot += 1

    def ai_rank(rank: int):
        store = harness.wrap(
            SimDataStore(
                env,
                model,
                area,
                component=ai_name,
                rank=rank,
                event_log=log,
                default_ctx=ctx,
                telemetry=telemetry,
                fault_state=harness.state,
            )
        )
        rng = rngs.stream(f"ai{rank}")
        yield env.timeout(config.ai_init_time)
        if rank == 0:
            log.add(ai_name, EventKind.INIT, 0.0, config.ai_init_time, rank=rank)
        next_snapshot = 0
        last_ingest = env.now
        for iteration in range(1, config.train_iterations + 1):
            if harness.crashed(ai_name):
                counters["downtime"] += yield from harness.state.wait_until_up(
                    env, ai_name
                )
            start = env.now
            span = _iteration_span(telemetry, ai_name, rank, iteration)
            yield env.timeout(max(0.0, config.ai_iter_time.sample(rng)))
            if span is not None:
                span.finish()
            log.add(ai_name, EventKind.TRAIN, start, env.now - start, rank=rank)
            if rank == 0:
                counters["train_iters"] += 1
                if sh is not None:
                    sh.note_train(iteration)
            if iteration % config.read_interval == 0:
                # Asynchronous ingest: drain every snapshot staged so far by
                # the co-located sim rank with the same index.
                while True:
                    key0 = f"r{rank}_snap{next_snapshot}_a0"
                    try:
                        present = yield from store.poll_staged_data(key0)
                    except TransportError:
                        counters["failed_ingests"] += 1
                        break
                    if not present:
                        if harness.state is not None:
                            # Control-plane peek (no modeled transport op):
                            # when a later snapshot exists, this one was
                            # dropped in a fault window — skip it for good.
                            look = next_snapshot + 1
                            horizon = look + 64
                            while look < horizon and not area.contains(
                                f"r{rank}_snap{look}_a0"
                            ):
                                look += 1
                            if look < horizon:
                                counters["lost_skipped"] += look - next_snapshot
                                next_snapshot = look
                                continue
                        break
                    try:
                        for a in range(config.arrays_per_snapshot):
                            yield from store.stage_read(
                                f"r{rank}_snap{next_snapshot}_a{a}"
                            )
                    except KeyNotStagedError:
                        # Partially staged snapshot (write died mid-fault):
                        # unrecoverable, skip past it.
                        counters["lost_skipped"] += 1
                        next_snapshot += 1
                        continue
                    except TransportError:
                        counters["failed_ingests"] += 1
                        break
                    next_snapshot += 1
                    last_ingest = env.now
                    if rank == 0:
                        counters["read"] += 1
                if rank == 0 and env.now - last_ingest > harness.staleness_bound:
                    counters["staleness"] += 1
        if rank == 0:
            stop.set()

    harness.start()
    for rank in (sh.members if sh is not None else range(config.ranks_per_component)):
        env.process(sim_rank(rank), name=f"{sim_name}{rank}")
        env.process(ai_rank(rank), name=f"{ai_name}{rank}")
    if sh is not None:
        sh.log = log
        sh.counters = counters
        sh.stop = stop
        sh.area = area
        sh.telemetry = telemetry
        return sh
    env.run()

    return PatternResult(
        log=log,
        makespan=_workload_makespan(log),
        sim_iterations=counters["sim_iters"],
        train_iterations=counters["train_iters"],
        snapshots_written=counters["written"],
        snapshots_read=counters["read"],
        resilience=harness.report(
            {
                "lost_snapshots": counters["lost"],
                "skipped_snapshots": counters["lost_skipped"],
                "failed_ingests": counters["failed_ingests"],
                "staleness_violations": counters["staleness"],
                "downtime_seconds": counters["downtime"],
            }
        ),
    )


def _run_one_to_one_sharded(
    model: BackendModel,
    config: OneToOneConfig,
    ctx: TransportOpContext,
    sim_name: str,
    ai_name: str,
    telemetry: Optional[Telemetry],
    fault_plan: Optional[FaultPlan],
    resilience: Optional[ResilienceConfig],
    shards: int,
    partition: Optional[Partition],
) -> PatternResult:
    """Pattern 1 across shards: rank pairs split, steering via the oracle."""
    iter_floor = _check_shardable(fault_plan, resilience, config.ai_iter_time)
    if partition is None:
        partition = _balanced_rank_partition(config.ranks_per_component, shards)
    if partition.n_nodes != config.ranks_per_component:
        raise ConfigError(
            f"partition covers {partition.n_nodes} rank pair(s) but the "
            f"config has {config.ranks_per_component}"
        )
    stop_shard = partition.shard_of(0)  # rank 0's trainer steers the run

    def builder(shard_id: int) -> _ShardProgram:
        program = _ShardProgram(
            shard_id,
            partition.n_shards,
            members=list(partition.nodes(shard_id)),
            owns_stop=(shard_id == stop_shard),
            stop_iter_floor=iter_floor,
            stop_total_iters=config.train_iterations,
        )
        child_hub = (
            None
            if telemetry is None
            else Telemetry(sample_interval=telemetry.sample_interval)
        )
        return run_one_to_one(
            model,
            config,
            ctx,
            sim_name=sim_name,
            ai_name=ai_name,
            telemetry=child_hub,
            _shard=program,
        )

    results = run_sharded(builder, partition.n_shards)
    log, counters = _merge_sharded(results, telemetry)
    return PatternResult(
        log=log,
        makespan=_workload_makespan(log),
        sim_iterations=counters["sim_iters"],
        train_iterations=counters["train_iters"],
        snapshots_written=counters["written"],
        snapshots_read=counters["read"],
        resilience=None,
    )


@dataclass
class ManyToOneConfig:
    """Knobs of the pattern-2 mini-app."""

    n_simulations: int = 7  # producers (paper: node count - 1)
    sim_iter_time: Distribution = field(default_factory=lambda: Constant(NEKRS_ITER_TIME))
    ai_iter_time: Distribution = field(default_factory=lambda: Constant(GNN_ITER_TIME))
    write_interval: int = 10
    read_interval: int = 10
    train_iterations: int = 2500
    snapshot_nbytes: float = DEFAULT_SNAPSHOT_NBYTES
    reader_lanes: int = 12  # the AI node's 12 tiles read concurrently
    #: Simulated seconds a reader lane waits for one producer's update
    #: before giving up on it. Bounds the previously unbounded re-poll
    #: loop; generous enough that healthy runs never hit it.
    poll_timeout: float = 300.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_simulations < 1:
            raise ConfigError("need at least one simulation component")
        if min(self.write_interval, self.read_interval, self.reader_lanes) < 1:
            raise ConfigError("intervals and reader_lanes must be >= 1")
        if self.train_iterations < 0:
            raise ConfigError("train_iterations must be >= 0")
        if self.poll_timeout <= 0:
            raise ConfigError("poll_timeout must be positive")


def run_many_to_one(
    model: BackendModel,
    config: Optional[ManyToOneConfig] = None,
    write_ctx: Optional[TransportOpContext] = None,
    read_ctx: Optional[TransportOpContext] = None,
    ai_name: str = "train",
    telemetry: Optional[Telemetry] = None,
    fault_plan: Optional[FaultPlan] = None,
    resilience: Optional[ResilienceConfig] = None,
    shards: int = 1,
    partition: Optional[Partition] = None,
    _shard: Optional[_ShardProgram] = None,
) -> PatternResult:
    """Simulate the many-to-one pattern.

    The trainer blocks at every update until data from *all* producers for
    that update has arrived (§4.2), draining reads over ``reader_lanes``
    concurrent lanes. ``telemetry`` behaves as in :func:`run_one_to_one`.

    Each lane's wait is bounded by ``config.poll_timeout``; under an
    active ``fault_plan`` the trainer proceeds when at least
    ``resilience.quorum`` of the producers' updates arrived, counting the
    rest as missed reads instead of blocking forever on a dead producer.
    """
    config = config or ManyToOneConfig()
    write_ctx = write_ctx or TransportOpContext(local=True, clients_per_server=12)
    read_ctx = read_ctx or TransportOpContext(
        local=False,
        fan_in=config.n_simulations,
        concurrent_peers=min(config.reader_lanes, config.n_simulations),
        concurrent_clients=config.n_simulations + 1,
    )
    if _shard is None and (
        shards > 1 or (partition is not None and partition.n_shards > 1)
    ):
        return _run_many_to_one_sharded(
            model, config, write_ctx, read_ctx, ai_name, telemetry,
            fault_plan, resilience, shards, partition,
        )
    sh = _shard
    env = Environment()
    log = EventLog()
    area = SimStagingArea() if sh is None or sh.publishes_to is None else _EgressArea(sh)
    if sh is not None:
        sh.env = env
    _bind_telemetry(telemetry, env, area)
    rngs = RngRegistry(config.seed)
    stop = _StopFlag() if sh is None else _ShardStop(env, sh)
    harness = _FaultHarness(env, log, rngs, telemetry, fault_plan, resilience)
    counters = {
        "sim_iters": 0,
        "train_iters": 0,
        "written": 0,
        "read": 0,
        "lost": 0,
        "missed": 0,
        "quorum_misses": 0,
        "downtime": 0.0,
    }
    quorum_needed = math.ceil(harness.quorum * config.n_simulations)

    def producer(index: int):
        if sh is None or sh.publishes_to is None:
            raw_store = SimDataStore(
                env,
                model,
                area,
                component=f"sim{index}",
                rank=index,
                event_log=log,
                default_ctx=write_ctx,
                telemetry=telemetry,
                fault_state=harness.state,
            )
        else:
            # Producer on a non-trainer shard: expose in-flight writes so
            # the shard's publish promise covers them.
            raw_store = _TrackedSimDataStore(
                env,
                model,
                area,
                component=f"sim{index}",
                rank=index,
                event_log=log,
                default_ctx=write_ctx,
                telemetry=telemetry,
                fault_state=harness.state,
                shard_program=sh,
            )
        store = harness.wrap(raw_store)
        rng = rngs.stream(f"sim{index}")
        iteration = 0
        update = 0
        while not stop.stopped:
            if harness.crashed(f"sim{index}"):
                counters["downtime"] += yield from harness.state.wait_until_up(
                    env, f"sim{index}", should_abort=lambda: stop.stopped
                )
                if stop.stopped:
                    break
            start = env.now
            span = _iteration_span(telemetry, f"sim{index}", index, iteration + 1)
            yield env.timeout(max(0.0, config.sim_iter_time.sample(rng)))
            if span is not None:
                span.finish()
            log.add(f"sim{index}", EventKind.COMPUTE, start, env.now - start, rank=index)
            iteration += 1
            if index == 0:
                counters["sim_iters"] += 1
            if iteration % config.write_interval == 0:
                try:
                    yield from store.stage_write(
                        f"sim{index}_update{update}", config.snapshot_nbytes
                    )
                except TransportError:
                    counters["lost"] += 1
                else:
                    counters["written"] += 1
                update += 1

    def reader_lane(store, keys: list[str], got: dict):
        for key in keys:
            deadline = env.now + config.poll_timeout
            present = False
            while True:
                try:
                    present = yield from store.poll_staged_data(key)
                except TransportError:
                    present = False
                if present or env.now >= deadline:
                    break
                yield env.timeout(0.01)  # producer not there yet: re-poll
            if not present:
                got[key] = False
                counters["missed"] += 1
                continue
            try:
                yield from store.stage_read(key)
            except TransportError:
                got[key] = False
                counters["missed"] += 1
                continue
            got[key] = True
            counters["read"] += 1

    def trainer():
        store = harness.wrap(
            SimDataStore(
                env,
                model,
                area,
                component=ai_name,
                rank=0,
                event_log=log,
                default_ctx=read_ctx,
                telemetry=telemetry,
                fault_state=harness.state,
            )
        )
        rng = rngs.stream("ai")
        update = 0
        for iteration in range(1, config.train_iterations + 1):
            if harness.crashed(ai_name):
                counters["downtime"] += yield from harness.state.wait_until_up(
                    env, ai_name
                )
            start = env.now
            span = _iteration_span(telemetry, ai_name, 0, iteration)
            yield env.timeout(max(0.0, config.ai_iter_time.sample(rng)))
            if span is not None:
                span.finish()
            log.add(ai_name, EventKind.TRAIN, start, env.now - start, rank=0)
            counters["train_iters"] += 1
            if sh is not None:
                sh.note_train(iteration)
            if iteration % config.read_interval == 0:
                # Blocking collective ingest of this update from every
                # producer, spread over the reader lanes. Lanes give up
                # after poll_timeout, so a dead producer costs bounded
                # time; the quorum check below decides whether enough of
                # the collective arrived.
                keys = [
                    f"sim{index}_update{update}" for index in range(config.n_simulations)
                ]
                lanes = [
                    keys[lane :: config.reader_lanes]
                    for lane in range(min(config.reader_lanes, len(keys)))
                ]
                got: dict = {}
                procs = [
                    env.process(reader_lane(store, lane_keys, got), name=f"lane{j}")
                    for j, lane_keys in enumerate(lanes)
                    if lane_keys
                ]
                yield env.all_of(procs)
                arrived = sum(1 for ok in got.values() if ok)
                if arrived < quorum_needed:
                    counters["quorum_misses"] += 1
                    if telemetry is not None:
                        telemetry.tracer.instant(
                            "quorum.miss",
                            category="resilience",
                            pid=ai_name,
                            update=update,
                            arrived=arrived,
                            needed=quorum_needed,
                        )
                update += 1
        stop.set()

    harness.start()
    for index in (sh.members if sh is not None else range(config.n_simulations)):
        env.process(producer(index), name=f"sim{index}")
    if sh is None or sh.owns_stop:
        env.process(trainer(), name=ai_name)
    if sh is not None:
        sh.log = log
        sh.counters = counters
        sh.stop = stop
        sh.area = area
        sh.telemetry = telemetry
        return sh
    env.run()

    return PatternResult(
        log=log,
        makespan=_workload_makespan(log),
        sim_iterations=counters["sim_iters"],
        train_iterations=counters["train_iters"],
        snapshots_written=counters["written"],
        snapshots_read=counters["read"],
        resilience=harness.report(
            {
                "lost_snapshots": counters["lost"],
                "missed_reads": counters["missed"],
                "quorum_misses": counters["quorum_misses"],
                "downtime_seconds": counters["downtime"],
            }
        ),
    )


def _run_many_to_one_sharded(
    model: BackendModel,
    config: ManyToOneConfig,
    write_ctx: TransportOpContext,
    read_ctx: TransportOpContext,
    ai_name: str,
    telemetry: Optional[Telemetry],
    fault_plan: Optional[FaultPlan],
    resilience: Optional[ResilienceConfig],
    shards: int,
    partition: Optional[Partition],
) -> PatternResult:
    """Pattern 2 across shards: producers split along dragonfly groups.

    The simulated machine has ``n_simulations + 1`` nodes (one per
    producer, the trainer on the last). Cuts follow the default
    group-aligned partition unless an explicit one is passed. Publishes
    from non-trainer shards travel as cross-shard messages; the steering
    stop travels back. Write durations give the forward lookahead, the
    trainer's progress oracle the backward one.
    """
    iter_floor = _check_shardable(fault_plan, resilience, config.ai_iter_time)
    n_nodes = config.n_simulations + 1
    if partition is None:
        from repro.cluster.presets import sharded_dragonfly

        partition = partition_nodes(sharded_dragonfly(n_nodes, shards), shards)
    if partition.n_nodes != n_nodes:
        raise ConfigError(
            f"partition covers {partition.n_nodes} node(s) but the config "
            f"needs {n_nodes} ({config.n_simulations} producers + trainer)"
        )
    trainer_shard = partition.shard_of(config.n_simulations)
    write_lookahead = model.write_time(config.snapshot_nbytes, write_ctx)
    if not write_lookahead > 0.0:
        raise ConfigError(
            "sharded pattern runs need a positive modeled write time "
            f"(got {write_lookahead}); zero-cost publishes cannot bound "
            "cross-shard effects"
        )

    def builder(shard_id: int) -> _ShardProgram:
        program = _ShardProgram(
            shard_id,
            partition.n_shards,
            members=[
                i for i in partition.nodes(shard_id) if i < config.n_simulations
            ],
            owns_stop=(shard_id == trainer_shard),
            publishes_to=(trainer_shard if shard_id != trainer_shard else None),
            write_lookahead=write_lookahead,
            stop_iter_floor=iter_floor,
            stop_total_iters=config.train_iterations,
        )
        child_hub = (
            None
            if telemetry is None
            else Telemetry(sample_interval=telemetry.sample_interval)
        )
        return run_many_to_one(
            model,
            config,
            write_ctx,
            read_ctx,
            ai_name=ai_name,
            telemetry=child_hub,
            _shard=program,
        )

    results = run_sharded(builder, partition.n_shards)
    log, counters = _merge_sharded(results, telemetry)
    return PatternResult(
        log=log,
        makespan=_workload_makespan(log),
        sim_iterations=counters["sim_iters"],
        train_iterations=counters["train_iters"],
        snapshots_written=counters["written"],
        snapshots_read=counters["read"],
        resilience=None,
    )
