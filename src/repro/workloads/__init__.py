"""Workload builders: the paper's two patterns plus the nekRS-ML setup."""

from repro.workloads.nekrs import (
    NekrsValidationSetup,
    nekrs_ai_config,
    nekrs_simulation_config,
    quick_validation_setup,
)
from repro.workloads.patterns import (
    DEFAULT_SNAPSHOT_NBYTES,
    GNN_ITER_TIME,
    NEKRS_ITER_TIME,
    ManyToOneConfig,
    OneToOneConfig,
    PatternResult,
    run_many_to_one,
    run_one_to_one,
)
from repro.workloads.inference import (
    InferenceLoopConfig,
    InferenceResult,
    run_inference_loop,
)
from repro.workloads.profiling import (
    TransportSchedule,
    calibrate_run_time,
    calibrate_simulation_config,
    calibrate_transport_schedule,
)
from repro.workloads.realrun import (
    RealOneToOneConfig,
    RealRunResult,
    run_one_to_one_real,
)

__all__ = [
    "DEFAULT_SNAPSHOT_NBYTES",
    "GNN_ITER_TIME",
    "InferenceLoopConfig",
    "InferenceResult",
    "ManyToOneConfig",
    "NEKRS_ITER_TIME",
    "NekrsValidationSetup",
    "OneToOneConfig",
    "PatternResult",
    "RealOneToOneConfig",
    "RealRunResult",
    "TransportSchedule",
    "calibrate_run_time",
    "calibrate_simulation_config",
    "calibrate_transport_schedule",
    "nekrs_ai_config",
    "nekrs_simulation_config",
    "quick_validation_setup",
    "run_inference_loop",
    "run_many_to_one",
    "run_one_to_one",
    "run_one_to_one_real",
]
