"""Calibrating mini-app configs from profiled traces (paper §4.1.1).

The paper builds its mini-app by profiling a production run — "timers at
the start and end of each iteration" — and configuring the emulated
components with the measured means. This module automates that loop:
feed it the event log of any run (production instrumentation, a previous
mini-app, or a synthetic trace) and it returns the calibrated
configuration pieces:

* :func:`calibrate_run_time` — a Distribution for ``run_time``: the
  measured mean (``jitter="none"``, the paper's choice) or a lognormal
  matching mean *and* std (``jitter="lognormal"``);
* :func:`calibrate_simulation_config` — a ready Listing-2 style config;
* :func:`calibrate_transport_schedule` — measured write/read intervals
  and payload sizes, for setting the pattern's staging cadence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config.distributions import Constant, Distribution, LogNormal
from repro.config.schema import SimulationConfig
from repro.errors import ConfigError
from repro.telemetry.events import EventKind, EventLog
from repro.telemetry.stats import iteration_time_summary


def calibrate_run_time(
    log: EventLog,
    component: str,
    kind: EventKind = EventKind.COMPUTE,
    jitter: str = "none",
) -> Distribution:
    """Derive a ``run_time`` distribution from measured iteration times."""
    summary = iteration_time_summary(log, component, kind)
    if summary.count == 0:
        raise ConfigError(
            f"no {kind.value} events for component {component!r}; cannot calibrate"
        )
    if summary.mean <= 0:
        raise ConfigError(f"measured mean iteration time is 0 for {component!r}")
    if jitter == "none":
        return Constant(summary.mean)
    if jitter == "lognormal":
        if summary.std <= 1e-9 * summary.mean:  # numerically constant trace
            return Constant(summary.mean)
        cv2 = (summary.std / summary.mean) ** 2
        return LogNormal(mean=summary.mean, sigma=math.sqrt(math.log1p(cv2)))
    raise ConfigError(f"unknown jitter mode {jitter!r} (options: none, lognormal)")


def calibrate_simulation_config(
    log: EventLog,
    component: str,
    kernel: str = "MatMulSimple2D",
    data_size: tuple[int, int] = (256, 256),
    device: str = "xpu",
    jitter: str = "none",
) -> SimulationConfig:
    """The paper's calibration step: measured iteration time -> Listing 2."""
    run_time = calibrate_run_time(log, component, EventKind.COMPUTE, jitter=jitter)
    return SimulationConfig.from_dict(
        {
            "kernels": [
                {
                    "name": f"{component}_iter",
                    "run_time": run_time.to_spec(),
                    "data_size": list(data_size),
                    "mini_app_kernel": kernel,
                    "device": device,
                }
            ]
        }
    )


@dataclass(frozen=True)
class TransportSchedule:
    """Measured staging cadence of a component."""

    write_interval: int  # compute iterations between writes (0: no writes)
    read_interval: int  # compute iterations between reads (0: no reads)
    mean_write_nbytes: float
    mean_read_nbytes: float


def _interval(n_compute: int, n_transport: int) -> int:
    if n_transport == 0:
        return 0
    return max(1, round(n_compute / n_transport))


def calibrate_transport_schedule(log: EventLog, component: str) -> TransportSchedule:
    """Derive write/read cadence and payload sizes from a trace."""
    comp = log.filter(component=component)
    n_compute = comp.count(kinds=(EventKind.COMPUTE, EventKind.TRAIN))
    if n_compute == 0:
        raise ConfigError(f"no compute/train events for {component!r}")
    writes = comp.filter(kind=EventKind.WRITE)
    reads = comp.filter(kind=EventKind.READ)
    return TransportSchedule(
        write_interval=_interval(n_compute, len(writes)),
        read_interval=_interval(n_compute, len(reads)),
        mean_write_nbytes=float(np.mean([r.nbytes for r in writes])) if len(writes) else 0.0,
        mean_read_nbytes=float(np.mean([r.nbytes for r in reads])) if len(reads) else 0.0,
    )
