"""Coupled inference pattern: latency-limited AI-in-the-loop simulation.

The paper's introduction names the third common coupling besides online
training: "inference workloads can be latency limited, with the cost of
data transfer dominating over the computational one" (§1). This pattern
models it: every simulation iteration sends the current state to an AI
inference server through the staging backend and **blocks** on the
response before continuing (e.g., a learned turbulence closure or a
steering decision).

Per iteration: sim computes; stages the request; the AI polls, reads,
infers, stages the response; the sim polls and reads it. The round trip
costs four transport operations plus two poll loops — which is why
backend latency (not bandwidth) dominates at the small message sizes
typical of inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.distributions import Constant, Distribution
from repro.des import Environment
from repro.des.rng import RngRegistry
from repro.errors import ConfigError
from repro.telemetry.events import EventKind, EventLog
from repro.transport.models import BackendModel, TransportOpContext
from repro.transport.simstore import SimDataStore, SimStagingArea


@dataclass
class InferenceLoopConfig:
    """Knobs of the coupled-inference mini-app."""

    iterations: int = 100
    sim_iter_time: Distribution = field(default_factory=lambda: Constant(0.03147))
    infer_time: Distribution = field(default_factory=lambda: Constant(0.002))
    request_nbytes: float = 0.1e6
    response_nbytes: float = 0.01e6
    poll_interval: float = 0.5e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ConfigError("iterations must be >= 0")
        if self.request_nbytes < 0 or self.response_nbytes < 0:
            raise ConfigError("message sizes must be >= 0")
        if self.poll_interval <= 0:
            raise ConfigError("poll_interval must be positive")


@dataclass
class InferenceResult:
    log: EventLog
    makespan: float
    iterations: int
    mean_round_trip: float
    transport_fraction: float


def run_inference_loop(
    model: BackendModel,
    config: InferenceLoopConfig | None = None,
    ctx: TransportOpContext | None = None,
) -> InferenceResult:
    """Simulate the blocking inference round trip; returns latency stats."""
    config = config or InferenceLoopConfig()
    ctx = ctx or TransportOpContext(local=True, clients_per_server=12)
    env = Environment()
    log = EventLog()
    area = SimStagingArea()
    rngs = RngRegistry(config.seed)
    round_trips: list[float] = []

    sim_store = SimDataStore(env, model, area, component="sim", event_log=log, default_ctx=ctx)
    ai_store = SimDataStore(env, model, area, component="infer", event_log=log, default_ctx=ctx)
    done = {"count": 0}

    def simulation():
        rng = rngs.stream("sim")
        for i in range(config.iterations):
            start = env.now
            yield env.timeout(max(0.0, config.sim_iter_time.sample(rng)))
            log.add("sim", EventKind.COMPUTE, start, env.now - start)
            rt_start = env.now
            yield from sim_store.stage_write(f"req{i}", config.request_nbytes)
            while True:
                present = yield from sim_store.poll_staged_data(f"resp{i}")
                if present:
                    break
                yield env.timeout(config.poll_interval)
            yield from sim_store.stage_read(f"resp{i}")
            round_trips.append(env.now - rt_start)
            done["count"] += 1

    def inference_server():
        rng = rngs.stream("infer")
        for i in range(config.iterations):
            while True:
                present = yield from ai_store.poll_staged_data(f"req{i}")
                if present:
                    break
                yield env.timeout(config.poll_interval)
            yield from ai_store.stage_read(f"req{i}")
            start = env.now
            yield env.timeout(max(0.0, config.infer_time.sample(rng)))
            log.add("infer", EventKind.COMPUTE, start, env.now - start)
            yield from ai_store.stage_write(f"resp{i}", config.response_nbytes)

    env.process(simulation(), name="sim")
    env.process(inference_server(), name="infer")
    env.run()

    makespan = log.makespan() if len(log) else 0.0
    compute = sum(log.filter(component="sim", kind=EventKind.COMPUTE).durations())
    infer = sum(log.filter(component="infer", kind=EventKind.COMPUTE).durations())
    mean_rt = sum(round_trips) / len(round_trips) if round_trips else 0.0
    transport = max(0.0, sum(round_trips) - infer)
    total_loop = compute + sum(round_trips)
    return InferenceResult(
        log=log,
        makespan=makespan,
        iterations=done["count"],
        mean_round_trip=mean_rt,
        transport_fraction=transport / total_loop if total_loop > 0 else 0.0,
    )
