"""Real-mode pattern runners: actual components, actual byte movement.

These execute the same patterns as :mod:`repro.workloads.patterns` but
with real :class:`~repro.core.Simulation` / :class:`~repro.core.AI`
components on threads and a real data server — what you run on a
workstation to smoke-test a transport deployment before a big job, and
what the examples/integration tests use.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.core.ai import AI
from repro.core.simulation import Simulation
from repro.errors import ConfigError, TransportError, WorkflowError
from repro.ml.data import synthetic_snapshot
from repro.telemetry.events import EventLog
from repro.telemetry.hub import Telemetry
from repro.workloads.nekrs import nekrs_ai_config, nekrs_simulation_config


@dataclass
class RealOneToOneConfig:
    """A scaled-down, wall-clock pattern-1 run."""

    train_iterations: int = 50
    write_interval: int = 10
    read_interval: int = 5
    sim_iter_time: float = 0.004
    ai_iter_time: float = 0.006
    snapshot_samples: int = 64
    input_dim: int = 16
    output_dim: int = 8
    sim_config: Optional[dict] = None
    ai_config: Optional[dict] = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.train_iterations < 1:
            raise ConfigError("train_iterations must be >= 1")
        if min(self.write_interval, self.read_interval) < 1:
            raise ConfigError("intervals must be >= 1")


@dataclass
class RealRunResult:
    log: EventLog
    snapshots_written: int
    snapshots_read: int
    sim_iterations: int
    final_loss: float
    #: Degradation counters — non-zero only under injected chaos or a
    #: genuinely failing backend (writes lost after retries, snapshots
    #: skipped because their read kept failing).
    snapshots_lost: int = 0
    failed_ingests: int = 0


def run_one_to_one_real(
    server_info: Mapping[str, Any],
    config: Optional[RealOneToOneConfig] = None,
    timeout: float = 120.0,
    telemetry: Optional[Telemetry] = None,
) -> RealRunResult:
    """Run pattern 1 for real against a running data server.

    The simulation thread stages a fresh synthetic (x, y) snapshot every
    ``write_interval`` iterations; the AI thread polls every
    ``read_interval`` training iterations, ingests what is new, trains on
    the growing pool, and finally steers the simulation to stop.
    """
    config = config or RealOneToOneConfig()
    log = EventLog()
    log_lock = threading.Lock()
    stop = threading.Event()
    counters = {"written": 0, "read": 0, "sim_iters": 0, "lost": 0, "failed": 0}
    errors: list[BaseException] = []

    sim_cfg = config.sim_config or nekrs_simulation_config(
        run_time=config.sim_iter_time, data_size=(64, 64), device="cpu"
    )
    ai_cfg = config.ai_config or {
        **nekrs_ai_config(
            run_time=config.ai_iter_time,
            input_dim=config.input_dim,
            output_dim=config.output_dim,
        ),
        "hidden_dims": [32],
    }

    def _iteration_span(component: str, iteration: int):
        if telemetry is None:
            return None
        return telemetry.tracer.span(
            f"iteration.{component}",
            category="workload",
            pid=component,
            iteration=iteration,
        )

    def sim_main() -> None:
        sim = Simulation("sim", config=sim_cfg, server_info=server_info, telemetry=telemetry)
        rng = np.random.default_rng(7)
        snapshot = 0
        try:
            while not stop.is_set():
                span = _iteration_span("sim", counters["sim_iters"] + 1)
                sim.run_iteration()
                if span is not None:
                    span.finish()
                counters["sim_iters"] += 1
                if counters["sim_iters"] % config.write_interval == 0:
                    x, y = synthetic_snapshot(
                        config.snapshot_samples,
                        config.input_dim,
                        config.output_dim,
                        rng,
                    )
                    try:
                        sim.stage_write(f"snap{snapshot}", (x, y))
                    except TransportError:
                        # Degrade, don't crash: the snapshot is lost (the
                        # retry budget is already spent), the sim carries on.
                        counters["lost"] += 1
                    else:
                        counters["written"] += 1
                    snapshot += 1
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
            stop.set()
        finally:
            with log_lock:
                log.extend(sim.event_log)
            sim.teardown()

    final_loss = [float("nan")]

    def ai_main() -> None:
        ai = AI("train", config=ai_cfg, server_info=server_info, telemetry=telemetry)
        next_snapshot = 0
        try:
            for iteration in range(1, config.train_iterations + 1):
                span = _iteration_span("train", iteration)
                ai.train_iteration()
                if span is not None:
                    span.finish()
                if iteration % config.read_interval == 0:
                    while True:
                        try:
                            if not ai.ingest_staged(f"snap{next_snapshot}"):
                                break
                        except TransportError:
                            # Unreadable even after retries: skip it and
                            # train on what did arrive.
                            counters["failed"] += 1
                            next_snapshot += 1
                            continue
                        next_snapshot += 1
                        counters["read"] += 1
            final_loss[0] = ai.last_loss
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)
        finally:
            stop.set()  # steer the simulation to stop (§4.1)
            with log_lock:
                log.extend(ai.event_log)
            ai.close()

    threads = [
        threading.Thread(target=sim_main, name="sim", daemon=True),
        threading.Thread(target=ai_main, name="train", daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
        if t.is_alive():
            stop.set()
            raise WorkflowError(f"{t.name} did not finish within {timeout}s")
    if errors:
        raise errors[0]

    return RealRunResult(
        log=log,
        snapshots_written=counters["written"],
        snapshots_read=counters["read"],
        sim_iterations=counters["sim_iters"],
        final_loss=final_loss[0],
        snapshots_lost=counters["lost"],
        failed_ingests=counters["failed"],
    )
