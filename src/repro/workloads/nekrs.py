"""The nekRS-ML workflow (paper §4.1): configs and the original/mini-app pair.

The paper profiles a production run — nekRS (a spectral-element CFD
solver) coupled to a GNN surrogate trainer via SmartSim/Redis — and
builds a SimAI-Bench mini-app matching its iteration times and transport
schedule. We do not have the production workflow either, so we build it
the same way the paper characterizes it: the **original** is a run whose
iteration times carry the measured mean *and the measured (heavy) jitter*
(Table 3: sim 0.0312±0.0273 s, training 0.0611±0.1 s — well modeled as
lognormal), while the **mini-app** holds iteration times essentially
constant at the configured values, exactly as the paper's executor does.
Everything else (write/100, poll-read/10, 5000 training iterations,
steering stop) is identical — so Tables 2-3 and Fig 2 compare the same
quantities the paper compares.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config.distributions import Constant, LogNormal
from repro.transport.models import NodeLocalBackendModel, RedisBackendModel, TransportOpContext
from repro.workloads.patterns import (
    DEFAULT_SNAPSHOT_NBYTES,
    GNN_ITER_TIME,
    GNN_MEASURED_MEAN,
    GNN_MEASURED_STD,
    NEKRS_ITER_TIME,
    NEKRS_MEASURED_MEAN,
    NEKRS_MEASURED_STD,
    OneToOneConfig,
    PatternResult,
    run_one_to_one,
)


def nekrs_simulation_config(
    run_time: float = NEKRS_ITER_TIME,
    data_size: tuple[int, int] = (256, 256),
    device: str = "xpu",
) -> dict:
    """The Listing 2 configuration for real-mode Simulation components."""
    return {
        "kernels": [
            {
                "name": "nekrs_iter",
                "run_time": run_time,
                "data_size": list(data_size),
                "mini_app_kernel": "MatMulSimple2D",
                "device": device,
            }
        ]
    }


def nekrs_ai_config(
    run_time: float = GNN_ITER_TIME,
    input_dim: int = 64,
    output_dim: int = 64,
) -> dict:
    """A lightweight feed-forward net matching the GNN's iteration time."""
    return {
        "input_dim": input_dim,
        "hidden_dims": [128, 128],
        "output_dim": output_dim,
        "batch_size": 32,
        "run_time": run_time,
    }


def _lognormal_from_mean_std(mean: float, std: float) -> LogNormal:
    """A lognormal with the given arithmetic mean and standard deviation."""
    cv2 = (std / mean) ** 2
    sigma = math.sqrt(math.log1p(cv2))
    return LogNormal(mean=mean, sigma=sigma)


@dataclass(frozen=True)
class NekrsValidationSetup:
    """The §4.1.1 validation experiment, scaled by ``train_iterations``."""

    train_iterations: int = 5000
    write_interval: int = 100
    read_interval: int = 10
    snapshot_nbytes: float = DEFAULT_SNAPSHOT_NBYTES
    seed: int = 0

    def original_config(self) -> OneToOneConfig:
        """The production workflow: measured means with measured jitter."""
        return OneToOneConfig(
            sim_iter_time=_lognormal_from_mean_std(
                NEKRS_MEASURED_MEAN, NEKRS_MEASURED_STD
            ),
            ai_iter_time=_lognormal_from_mean_std(GNN_MEASURED_MEAN, GNN_MEASURED_STD),
            write_interval=self.write_interval,
            read_interval=self.read_interval,
            train_iterations=self.train_iterations,
            snapshot_nbytes=self.snapshot_nbytes,
            ranks_per_component=1,  # Table 2/3 statistics are per process
            seed=self.seed,
        )

    def miniapp_config(self) -> OneToOneConfig:
        """The SimAI-Bench replica: configured constants (tiny jitter)."""
        return OneToOneConfig(
            sim_iter_time=Constant(NEKRS_ITER_TIME),
            ai_iter_time=Constant(GNN_ITER_TIME),
            write_interval=self.write_interval,
            read_interval=self.read_interval,
            train_iterations=self.train_iterations,
            snapshot_nbytes=self.snapshot_nbytes,
            ranks_per_component=1,
            seed=self.seed + 1,
        )

    def run_original(self) -> PatternResult:
        """Original production workflow: Redis transport (SmartSim's default)."""
        return run_one_to_one(
            RedisBackendModel(),
            self.original_config(),
            ctx=TransportOpContext(local=True, clients_per_server=12),
        )

    def run_miniapp(self, model=None) -> PatternResult:
        """Mini-app replica (defaults to the same Redis deployment)."""
        return run_one_to_one(
            model or RedisBackendModel(),
            self.miniapp_config(),
            ctx=TransportOpContext(local=True, clients_per_server=12),
        )


def quick_validation_setup(train_iterations: int = 500) -> NekrsValidationSetup:
    """A scaled-down validation run for tests and smoke benchmarks."""
    return NekrsValidationSetup(train_iterations=train_iterations)


__all__ = [
    "DEFAULT_SNAPSHOT_NBYTES",
    "GNN_ITER_TIME",
    "NEKRS_ITER_TIME",
    "NekrsValidationSetup",
    "nekrs_ai_config",
    "nekrs_simulation_config",
    "quick_validation_setup",
]
