"""Live fault state: the injector writes it, the transport layer reads it.

:class:`FaultState` is the meeting point between the DES-driven
:class:`~repro.faults.injector.FaultInjector` (which applies and reverts
:class:`~repro.faults.plan.FaultSpec` windows) and the simulated
transport (:class:`~repro.transport.simstore.SimDataStore`), which
consults it on every operation:

* ``failure_for(component, backend)`` — the typed exception an op must
  raise right now (backend crash, partition), or None;
* ``delay_factor(backend)`` — multiplicative slowdown from link
  degradation and OST/MDS stalls;
* ``drops_message()`` / ``corrupts_message(key)`` — seeded Bernoulli
  draws, made *only* while a matching fault window is open, so healthy
  runs consume no randomness and stay bit-identical.

Overlapping windows of the same kind are reference-counted (crashes,
partitions) or stacked multiplicatively (slowdowns), so any revert order
is correct.
"""

from __future__ import annotations

from collections import Counter
from typing import Generator, Optional

import numpy as np

from repro.des.rng import _derive_seed
from repro.errors import BackendUnavailableError, FaultPlanError
from repro.faults.plan import FaultKind, FaultSpec

#: Simulated seconds a client needs to *notice* an outage (connect/timeout).
DEFAULT_DETECT_SECONDS = 0.05
#: Simulated seconds between "is my node back?" checks by crashed components.
DEFAULT_RESTART_POLL = 0.05


class FaultState:
    """Mutable view of which faults are active right now."""

    def __init__(
        self,
        seed: int = 0,
        detect_seconds: float = DEFAULT_DETECT_SECONDS,
        restart_poll: float = DEFAULT_RESTART_POLL,
    ) -> None:
        self.detect_seconds = detect_seconds
        self.restart_poll = restart_poll
        self._rng = np.random.default_rng(_derive_seed(seed, "fault-state"))
        self._backend_down = 0  # reference count of open backend-crash windows
        self._down_components: Counter[str] = Counter()
        self._partitioned: Counter[str] = Counter()
        self._slowdowns: list[tuple[FaultKind, float]] = []
        self._drop_probs: list[float] = []
        self._corrupt_probs: list[float] = []
        self._corrupt_keys: set[str] = set()
        # Observability counters (reported through PatternResult.resilience).
        self.drops = 0
        self.corruptions = 0

    # -- applied by the injector -------------------------------------------
    def apply(self, spec: FaultSpec) -> None:
        """Open one fault window (crashes count, slowdowns stack)."""
        kind = spec.kind
        if kind is FaultKind.BACKEND_CRASH:
            self._backend_down += 1
        elif kind is FaultKind.NODE_CRASH:
            self._down_components[spec.target] += 1
        elif kind is FaultKind.PARTITION:
            self._partitioned[spec.target] += 1
        elif kind in (FaultKind.LINK_DEGRADE, FaultKind.OST_STALL, FaultKind.MDS_STALL):
            self._slowdowns.append((kind, spec.severity))
        elif kind is FaultKind.MESSAGE_DROP:
            self._drop_probs.append(spec.severity)
        elif kind is FaultKind.MESSAGE_CORRUPT:
            self._corrupt_probs.append(spec.severity)
        else:  # pragma: no cover - enum is exhaustive
            raise FaultPlanError(f"unhandled fault kind {kind}")

    def revert(self, spec: FaultSpec) -> None:
        """Close a window opened by :meth:`apply`; any order is safe."""
        kind = spec.kind
        if kind is FaultKind.BACKEND_CRASH:
            self._backend_down = max(0, self._backend_down - 1)
        elif kind is FaultKind.NODE_CRASH:
            self._down_components[spec.target] -= 1
            if self._down_components[spec.target] <= 0:
                del self._down_components[spec.target]
        elif kind is FaultKind.PARTITION:
            self._partitioned[spec.target] -= 1
            if self._partitioned[spec.target] <= 0:
                del self._partitioned[spec.target]
        elif kind in (FaultKind.LINK_DEGRADE, FaultKind.OST_STALL, FaultKind.MDS_STALL):
            self._slowdowns.remove((kind, spec.severity))
        elif kind is FaultKind.MESSAGE_DROP:
            self._drop_probs.remove(spec.severity)
        elif kind is FaultKind.MESSAGE_CORRUPT:
            self._corrupt_probs.remove(spec.severity)

    # -- consulted by the transport layer ----------------------------------
    @property
    def backend_down(self) -> bool:
        """True while at least one backend-crash window is open."""
        return self._backend_down > 0

    def is_component_down(self, component: str) -> bool:
        """True while ``component``'s node is crashed."""
        return component in self._down_components

    def is_partitioned(self, component: str) -> bool:
        """True while ``component`` is cut off from the backend."""
        return component in self._partitioned

    def failure_for(
        self, component: str, backend: str
    ) -> Optional[BackendUnavailableError]:
        """The exception a transport op from ``component`` hits now, if any."""
        if self._backend_down:
            return BackendUnavailableError(
                f"backend {backend!r} is down (injected fault)"
            )
        if component in self._partitioned:
            return BackendUnavailableError(
                f"component {component!r} is partitioned from backend {backend!r}"
            )
        return None

    def delay_factor(self, backend: str) -> float:
        """Multiplicative op-time slowdown for ``backend`` right now."""
        factor = 1.0
        for kind, severity in self._slowdowns:
            if kind is FaultKind.LINK_DEGRADE:
                factor *= severity
            elif backend == "filesystem":  # OST/MDS stalls only hit Lustre
                factor *= severity
        return factor

    def _combined(self, probs: list[float]) -> float:
        """Probability that at least one of the open windows fires."""
        p_ok = 1.0
        for p in probs:
            p_ok *= 1.0 - p
        return 1.0 - p_ok

    def drops_message(self) -> bool:
        """Seeded draw: is this write silently lost in transit?"""
        if not self._drop_probs:
            return False
        dropped = bool(self._rng.random() < self._combined(self._drop_probs))
        if dropped:
            self.drops += 1
        return dropped

    def corrupts_message(self, key: str) -> bool:
        """Seeded draw: does this staged payload get corrupted?"""
        if not self._corrupt_probs:
            return False
        corrupted = bool(self._rng.random() < self._combined(self._corrupt_probs))
        if corrupted:
            self._corrupt_keys.add(key)
            self.corruptions += 1
        return corrupted

    def consume_corruption(self, key: str) -> bool:
        """True (once) when ``key``'s payload was corrupted.

        The flag clears on consumption: a retried read models a re-fetch
        that received an intact copy.
        """
        if key in self._corrupt_keys:
            self._corrupt_keys.discard(key)
            return True
        return False

    # -- used by workloads ---------------------------------------------------
    def wait_until_up(self, env, component: str, should_abort=None) -> Generator:
        """DES generator: idle (in restart_poll steps) while crashed.

        ``should_abort`` (a nullary predicate) lets the caller bail out of
        a permanent crash once the rest of the workload has finished —
        otherwise a component that never restarts would keep the event
        calendar alive forever. Returns the simulated seconds spent down.
        """
        start = env.now
        while self.is_component_down(component):
            if should_abort is not None and should_abort():
                break
            yield env.timeout(self.restart_poll)
        return env.now - start
