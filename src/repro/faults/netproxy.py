"""Deterministic network chaos proxy: a seeded TCP relay that misbehaves.

The in-process fault machinery (:mod:`repro.faults.state` consulted by
chaos transport clients) can only break operations *it* mediates. The
distributed sweep talks raw TCP between independent processes, so its
robustness claims — bounded frames, request-scoped timeouts, idempotent
retries, reconnect budgets — need faults injected *on the wire*. This
proxy sits between workers (or tenants) and a coordinator/service and
relays every byte through a seeded fault model:

* **connect refusal** — the accepted connection is closed before a
  byte flows (a crashed/restarting server);
* **mid-frame cuts** — the relay severs both directions partway through
  a chunk, tearing RESP frames at arbitrary byte boundaries;
* **latency spikes** — a chunk is held for a fixed delay before
  forwarding (a congested hop);
* **byte-level trickle** — a connection forwards one byte at a time,
  exercising every incremental-parser resume path;
* **one-way partition** — the server's replies are read and discarded
  while client requests still arrive (the nastiest case: the server
  *does* the work, the client never learns — exactly what idempotent
  retries and first-writer-wins acks exist for).

Determinism: every accepted connection gets its own RNG stream derived
from ``(seed, "netproxy", connection_ordinal)`` via
:func:`~repro.sweep.point.derive_seed`, so a given connection ordinal
always draws the same fate regardless of thread scheduling. The fault
*content* is reproducible; the interleaving of concurrent connections
is the OS's business (same contract as the seeded worker backoff).

``NetChaos.from_plan`` projects the existing :class:`~repro.faults.plan.
FaultPlan` vocabulary onto wire behaviour the same way
``FaultPlan.client_probabilities`` projects it onto per-op
probabilities — wall-clock relays cannot replay virtual-time windows,
so scheduled/stochastic entries become per-connection and per-chunk
probabilities.
"""

from __future__ import annotations

import itertools
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import FaultPlanError, ServerError
from repro.faults.plan import FaultKind, FaultPlan
from repro.sweep.point import derive_seed

_RELAY_CHUNK = 1 << 14


@dataclass(frozen=True)
class NetChaos:
    """Wire-fault probabilities for one :class:`ChaosProxy`.

    All fields are probabilities in [0, 1] except the two shaping knobs
    (``latency_seconds``, ``trickle_delay``). Per-*connection* draws
    (refuse, trickle, partition) happen once at accept; per-*chunk*
    draws (cut, latency) happen on every relayed read.
    """

    seed: int = 0
    #: P(close an accepted connection before relaying anything).
    refuse_p: float = 0.0
    #: P(sever both directions mid-chunk) per relayed chunk.
    cut_p: float = 0.0
    #: P(hold a chunk for ``latency_seconds``) per relayed chunk.
    latency_p: float = 0.0
    latency_seconds: float = 0.05
    #: P(a connection forwards byte-by-byte with ``trickle_delay`` gaps).
    trickle_p: float = 0.0
    trickle_delay: float = 0.001
    #: P(a connection's server->client direction silently drops).
    partition_p: float = 0.0

    def __post_init__(self) -> None:
        for name in ("refuse_p", "cut_p", "latency_p", "trickle_p", "partition_p"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1], got {value}")
        if self.latency_seconds < 0 or self.trickle_delay < 0:
            raise FaultPlanError("latency_seconds/trickle_delay must be >= 0")

    @property
    def is_active(self) -> bool:
        return any(
            getattr(self, name) > 0.0
            for name in ("refuse_p", "cut_p", "latency_p", "trickle_p", "partition_p")
        )

    @classmethod
    def from_plan(cls, plan: FaultPlan, seed: Optional[int] = None) -> "NetChaos":
        """Project a :class:`FaultPlan` onto wire-level chaos.

        Mapping (max over entries of each kind, scheduled and stochastic
        alike — stochastic rates are capped at 1 like
        ``client_probabilities``):

        * ``BACKEND_CRASH``/``NODE_CRASH`` -> connect refusal;
        * ``PARTITION`` -> one-way partitions;
        * ``MESSAGE_DROP`` -> mid-frame cuts (severity = probability);
        * ``LINK_DEGRADE``/``OST_STALL``/``MDS_STALL`` -> latency spikes
          (and, above 4x slowdown, byte-trickling).
        """
        if not plan.is_active:
            return cls(seed=plan.seed if seed is None else seed)
        refuse = partition = cut = latency_p = trickle = 0.0
        latency_s = 0.05
        entries = [(f.kind, 1.0, f.severity) for f in plan.faults]
        entries += [
            (s.kind, min(1.0, s.rate), s.severity) for s in plan.stochastic
        ]
        for kind, presence, severity in entries:
            if kind in (FaultKind.BACKEND_CRASH, FaultKind.NODE_CRASH):
                refuse = max(refuse, 0.5 * presence)
            elif kind is FaultKind.PARTITION:
                partition = max(partition, 0.5 * presence)
            elif kind is FaultKind.MESSAGE_DROP:
                cut = max(cut, presence * severity)
            elif kind in (
                FaultKind.LINK_DEGRADE,
                FaultKind.OST_STALL,
                FaultKind.MDS_STALL,
            ):
                latency_p = max(latency_p, 0.5 * presence)
                latency_s = max(latency_s, 0.01 * severity)
                if severity >= 4.0:
                    trickle = max(trickle, 0.25 * presence)
        return cls(
            seed=plan.seed if seed is None else seed,
            refuse_p=refuse,
            cut_p=cut,
            latency_p=latency_p,
            latency_seconds=latency_s,
            trickle_p=trickle,
            partition_p=partition,
        )


class ChaosProxy:
    """A seeded misbehaving TCP relay in front of one upstream address."""

    def __init__(
        self,
        upstream: tuple[str, int],
        chaos: NetChaos,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = upstream
        self.chaos = chaos
        self._conn_ids = itertools.count()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._listener.bind((host, port))
        except OSError as exc:
            raise ServerError(f"cannot bind chaos proxy {host}:{port}: {exc}") from exc
        self._listener.listen(128)
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._running = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None
        self._threads: list[threading.Thread] = []
        self._socks: set[socket.socket] = set()
        self._lock = threading.Lock()
        #: Injection counters, for assertions and artifacts.
        self.stats: dict[str, int] = {
            "accepted": 0,
            "refused": 0,
            "cut": 0,
            "delayed": 0,
            "trickled": 0,
            "partitioned": 0,
            "relayed_bytes": 0,
        }

    # -- lifecycle ----------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ChaosProxy":
        if self._running.is_set():
            raise ServerError("chaos proxy already started")
        self._running.set()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"netproxy-{self.port}", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        if not self._running.is_set():
            return
        self._running.clear()
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            socks = list(self._socks)
        for sock in socks:
            _close(sock)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        for thread in self._threads:
            thread.join(timeout=1.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _count(self, key: str, n: int = 1) -> None:
        with self._lock:
            self.stats[key] = self.stats.get(key, 0) + n

    # -- relay --------------------------------------------------------------
    def _accept_loop(self) -> None:
        while self._running.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn_id = next(self._conn_ids)
            thread = threading.Thread(
                target=self._handle,
                args=(client, conn_id),
                name=f"netproxy-conn-{conn_id}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _handle(self, client: socket.socket, conn_id: int) -> None:
        rng = np.random.default_rng(
            derive_seed(self.chaos.seed, "netproxy", conn_id)
        )
        self._count("accepted")
        # Per-connection fates are drawn in a fixed order so conn_id
        # alone determines them.
        refused = float(rng.random()) < self.chaos.refuse_p
        trickled = float(rng.random()) < self.chaos.trickle_p
        partitioned = float(rng.random()) < self.chaos.partition_p
        if refused:
            self._count("refused")
            _close(client)
            return
        try:
            server = socket.create_connection(self.upstream, timeout=10.0)
        except OSError:
            _close(client)
            return
        for sock in (client, server):
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass
        with self._lock:
            self._socks.update((client, server))
        if trickled:
            self._count("trickled")
        if partitioned:
            self._count("partitioned")
        cut = threading.Event()
        # Distinct per-direction streams, both derived from conn_id.
        up_rng = np.random.default_rng(
            derive_seed(self.chaos.seed, "netproxy", conn_id, "up")
        )
        down_rng = np.random.default_rng(
            derive_seed(self.chaos.seed, "netproxy", conn_id, "down")
        )
        up = threading.Thread(
            target=self._relay,
            args=(client, server, up_rng, trickled, False, cut),
            name=f"netproxy-{conn_id}-up",
            daemon=True,
        )
        down = threading.Thread(
            target=self._relay,
            args=(server, client, down_rng, trickled, partitioned, cut),
            name=f"netproxy-{conn_id}-down",
            daemon=True,
        )
        up.start()
        down.start()
        up.join()
        down.join()
        with self._lock:
            self._socks.difference_update((client, server))
        _close(client)
        _close(server)

    def _relay(
        self,
        src: socket.socket,
        dst: socket.socket,
        rng: np.random.Generator,
        trickled: bool,
        blackhole: bool,
        cut: threading.Event,
    ) -> None:
        """Forward src -> dst applying per-chunk faults until EOF or cut."""
        while self._running.is_set() and not cut.is_set():
            try:
                data = src.recv(_RELAY_CHUNK)
            except OSError:
                break
            if not data:
                break
            if blackhole:
                # One-way partition: keep reading (the server must not
                # block on its send buffer) but deliver nothing.
                continue
            if self.chaos.cut_p and float(rng.random()) < self.chaos.cut_p:
                # Mid-frame cut: forward a strict prefix, then sever.
                keep = int(rng.integers(0, len(data))) if len(data) > 1 else 0
                self._count("cut")
                if keep:
                    try:
                        dst.sendall(data[:keep])
                    except OSError:
                        pass
                cut.set()
                _close(src)
                _close(dst)
                return
            if self.chaos.latency_p and float(rng.random()) < self.chaos.latency_p:
                self._count("delayed")
                time.sleep(self.chaos.latency_seconds)
            try:
                if trickled:
                    for i in range(len(data)):
                        dst.sendall(data[i : i + 1])
                        if self.chaos.trickle_delay:
                            time.sleep(self.chaos.trickle_delay)
                else:
                    dst.sendall(data)
            except OSError:
                break
            self._count("relayed_bytes", len(data))
        # EOF (or error) on one side: half-close towards the other so
        # in-flight replies still drain, then let the peer thread finish.
        try:
            dst.shutdown(socket.SHUT_WR)
        except OSError:
            pass


def _close(sock: socket.socket) -> None:
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


__all__ = ["ChaosProxy", "NetChaos"]
