"""Deterministic fault plans: *what* breaks, *when*, and for *how long*.

A :class:`FaultPlan` is the single source of truth for a chaos run. It
mixes two ingredients:

* **scheduled** faults (:class:`FaultSpec`) — explicit ``(kind, at,
  duration, target, severity)`` tuples, reproducible by construction;
* **stochastic** fault processes (:class:`StochasticFaultSpec`) — a
  Poisson arrival process per entry (``rate`` faults per simulated
  second over ``[start, horizon)``), expanded into concrete
  :class:`FaultSpec` instances with a seeded RNG *before* the run
  starts, so two runs with the same plan see bit-identical injections.

Plans serialize to plain JSON (YAML is accepted when PyYAML happens to
be installed — it is not a dependency)::

    {
      "seed": 7,
      "faults": [
        {"kind": "backend_crash", "at": 5.0, "duration": 2.0}
      ],
      "stochastic": [
        {"kind": "node_crash", "rate": 0.02, "horizon": 60.0,
         "duration": 3.0, "target": "sim0"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional

import numpy as np

from repro.des.rng import _derive_seed
from repro.errors import FaultPlanError


class FaultKind(str, Enum):
    """The failure modes the injector knows how to apply."""

    NODE_CRASH = "node_crash"  # a component's node dies (and later restarts)
    BACKEND_CRASH = "backend_crash"  # the data-server side goes down entirely
    LINK_DEGRADE = "link_degrade"  # NIC/link slowdown: op times x severity
    PARTITION = "partition"  # target component cut off from the backend
    OST_STALL = "ost_stall"  # Lustre data path stall (filesystem backend)
    MDS_STALL = "mds_stall"  # Lustre metadata server stall
    MESSAGE_DROP = "message_drop"  # writes silently lost with prob. severity
    MESSAGE_CORRUPT = "message_corrupt"  # staged payloads corrupted with prob.


#: Kinds whose ``severity`` is a probability in [0, 1].
PROBABILITY_KINDS = frozenset({FaultKind.MESSAGE_DROP, FaultKind.MESSAGE_CORRUPT})
#: Kinds whose ``severity`` is a slowdown factor >= 1.
SLOWDOWN_KINDS = frozenset(
    {FaultKind.LINK_DEGRADE, FaultKind.OST_STALL, FaultKind.MDS_STALL}
)


@dataclass(frozen=True)
class FaultSpec:
    """One concrete fault: inject at ``at``, heal after ``duration``.

    ``duration == 0`` means the fault never heals within the run (a crash
    without restart). ``target`` selects a component (node crash,
    partition) or is ignored for global kinds. ``severity`` is a drop /
    corruption probability for message faults and a slowdown factor for
    degradation faults.
    """

    kind: FaultKind
    at: float
    duration: float = 0.0
    target: str = ""
    severity: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise FaultPlanError(f"fault duration must be >= 0, got {self.duration}")
        if self.kind in PROBABILITY_KINDS and not 0.0 <= self.severity <= 1.0:
            raise FaultPlanError(
                f"{self.kind.value} severity is a probability, got {self.severity}"
            )
        if self.kind in SLOWDOWN_KINDS and self.severity < 1.0:
            raise FaultPlanError(
                f"{self.kind.value} severity is a slowdown factor >= 1, "
                f"got {self.severity}"
            )
        if self.kind in (FaultKind.NODE_CRASH, FaultKind.PARTITION) and not self.target:
            raise FaultPlanError(f"{self.kind.value} needs a target component")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "at": self.at,
            "duration": self.duration,
            "target": self.target,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        try:
            kind = FaultKind(data["kind"])
        except KeyError:
            raise FaultPlanError(f"fault entry missing 'kind': {dict(data)}") from None
        except ValueError:
            raise FaultPlanError(
                f"unknown fault kind {data.get('kind')!r}; "
                f"options {sorted(k.value for k in FaultKind)}"
            ) from None
        if "at" not in data:
            raise FaultPlanError(f"fault entry missing 'at': {dict(data)}")
        return cls(
            kind=kind,
            at=float(data["at"]),
            duration=float(data.get("duration", 0.0)),
            target=str(data.get("target", "")),
            severity=float(data.get("severity", 1.0)),
        )


@dataclass(frozen=True)
class StochasticFaultSpec:
    """A Poisson fault process, expanded deterministically from the seed.

    Arrivals are drawn with exponential inter-arrival times at ``rate``
    events per simulated second over ``[start, horizon)``; each arrival
    becomes a :class:`FaultSpec` with this entry's duration, target, and
    severity. ``max_events`` caps runaway rates.
    """

    kind: FaultKind
    rate: float
    horizon: float
    start: float = 0.0
    duration: float = 0.0
    target: str = ""
    severity: float = 1.0
    max_events: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.rate < 0:
            raise FaultPlanError(f"fault rate must be >= 0, got {self.rate}")
        if self.horizon <= self.start:
            raise FaultPlanError(
                f"horizon ({self.horizon}) must exceed start ({self.start})"
            )
        if self.max_events < 1:
            raise FaultPlanError("max_events must be >= 1")

    def expand(self, rng: np.random.Generator) -> list[FaultSpec]:
        """Materialise concrete faults (empty when rate is 0)."""
        if self.rate == 0.0:
            return []
        faults: list[FaultSpec] = []
        t = self.start
        while len(faults) < self.max_events:
            t += float(rng.exponential(1.0 / self.rate))
            if t >= self.horizon:
                break
            faults.append(
                FaultSpec(
                    kind=self.kind,
                    at=t,
                    duration=self.duration,
                    target=self.target,
                    severity=self.severity,
                )
            )
        return faults

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "rate": self.rate,
            "horizon": self.horizon,
            "start": self.start,
            "duration": self.duration,
            "target": self.target,
            "severity": self.severity,
            "max_events": self.max_events,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StochasticFaultSpec":
        for required in ("kind", "rate", "horizon"):
            if required not in data:
                raise FaultPlanError(f"stochastic entry missing {required!r}")
        try:
            kind = FaultKind(data["kind"])
        except ValueError:
            raise FaultPlanError(f"unknown fault kind {data['kind']!r}") from None
        return cls(
            kind=kind,
            rate=float(data["rate"]),
            horizon=float(data["horizon"]),
            start=float(data.get("start", 0.0)),
            duration=float(data.get("duration", 0.0)),
            target=str(data.get("target", "")),
            severity=float(data.get("severity", 1.0)),
            max_events=int(data.get("max_events", 64)),
        )


@dataclass
class FaultPlan:
    """Scheduled + stochastic faults under one seed.

    ``materialize()`` returns the full, time-sorted list of concrete
    faults; it is deterministic: the i-th stochastic entry draws from a
    stream derived from ``(seed, i, kind)``, so plans are reproducible
    regardless of entry order elsewhere in the run.
    """

    faults: list[FaultSpec] = field(default_factory=list)
    stochastic: list[StochasticFaultSpec] = field(default_factory=list)
    seed: int = 0
    enabled: bool = True

    @classmethod
    def disabled(cls) -> "FaultPlan":
        """A no-op plan: runs with it are identical to runs without one."""
        return cls(enabled=False)

    @property
    def is_active(self) -> bool:
        """True when the plan will actually inject something."""
        return self.enabled and bool(self.faults or self.stochastic)

    def materialize(self) -> list[FaultSpec]:
        """All concrete faults, sorted by injection time."""
        if not self.is_active:
            return []
        out = list(self.faults)
        for i, entry in enumerate(self.stochastic):
            rng = np.random.default_rng(
                _derive_seed(self.seed, f"fault:{i}:{entry.kind.value}")
            )
            out.extend(entry.expand(rng))
        return sorted(out, key=lambda f: (f.at, f.kind.value, f.target))

    # -- real-mode projection ---------------------------------------------
    def client_probabilities(self) -> dict[str, float]:
        """Per-operation fault probabilities for real-mode chaos clients.

        Real (wall-clock, threaded) runs cannot replay virtual-time
        windows, so each stochastic entry's ``rate`` is reinterpreted as
        a per-operation probability: drops/corruptions use their
        severity scaled by rate presence, crashes map to transient
        unavailability.
        """
        probs = {"drop": 0.0, "corrupt": 0.0, "unavailable": 0.0}
        for entry in self.stochastic:
            p = min(1.0, entry.rate)
            if entry.kind is FaultKind.MESSAGE_DROP:
                probs["drop"] = max(probs["drop"], p * entry.severity)
            elif entry.kind is FaultKind.MESSAGE_CORRUPT:
                probs["corrupt"] = max(probs["corrupt"], p * entry.severity)
            elif entry.kind in (FaultKind.BACKEND_CRASH, FaultKind.PARTITION):
                probs["unavailable"] = max(probs["unavailable"], p)
        return probs

    # -- (de)serialisation -------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "enabled": self.enabled,
            "faults": [f.to_dict() for f in self.faults],
            "stochastic": [s.to_dict() for s in self.stochastic],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        if not isinstance(data, Mapping):
            raise FaultPlanError(f"fault plan must be a mapping, got {type(data)}")
        faults = [FaultSpec.from_dict(d) for d in data.get("faults", [])]
        stochastic = [
            StochasticFaultSpec.from_dict(d) for d in data.get("stochastic", [])
        ]
        return cls(
            faults=faults,
            stochastic=stochastic,
            seed=int(data.get("seed", 0)),
            enabled=bool(data.get("enabled", True)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON (or, if PyYAML is installed, YAML) file."""
        text = Path(path).read_text(encoding="utf-8")
        try:
            data = json.loads(text)
        except json.JSONDecodeError:
            try:
                import yaml  # type: ignore[import-untyped]
            except ImportError:
                raise FaultPlanError(
                    f"{path} is not valid JSON and PyYAML is not installed"
                ) from None
            try:
                data = yaml.safe_load(text)
            except yaml.YAMLError as exc:
                raise FaultPlanError(
                    f"{path} is neither valid JSON nor valid YAML: {exc}"
                ) from None
        return cls.from_dict(data)

    def save(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True), encoding="utf-8"
        )


def merge_plans(plans: Iterable[Optional["FaultPlan"]]) -> Optional["FaultPlan"]:
    """Combine plans (first non-None seed wins); None when all are None."""
    merged: Optional[FaultPlan] = None
    for plan in plans:
        if plan is None:
            continue
        if merged is None:
            merged = FaultPlan(seed=plan.seed, enabled=plan.enabled)
        merged.faults.extend(plan.faults)
        merged.stochastic.extend(plan.stochastic)
        merged.enabled = merged.enabled or plan.enabled
    return merged
