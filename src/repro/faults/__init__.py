"""Fault injection: deterministic chaos for coupled AI-simulation runs.

The subsystem has three pieces:

* :mod:`repro.faults.plan` — *what* to break: scheduled and stochastic
  (seeded Poisson) fault specs, serialisable to JSON;
* :mod:`repro.faults.state` — the live fault switchboard the transport
  layer consults on every operation;
* :mod:`repro.faults.injector` — the DES driver that opens and closes
  fault windows at their planned virtual times;
* :mod:`repro.faults.netproxy` — a seeded TCP relay that injects the
  same fault vocabulary on real sockets for the distributed sweep.

Resilience policies that *react* to these faults (retry, backoff,
circuit breaking, quorum reads) live in
:mod:`repro.transport.resilience`.
"""

from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.netproxy import ChaosProxy, NetChaos
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    StochasticFaultSpec,
    merge_plans,
)
from repro.faults.state import FaultState

__all__ = [
    "ChaosProxy",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultState",
    "InjectedFault",
    "NetChaos",
    "StochasticFaultSpec",
    "merge_plans",
]
