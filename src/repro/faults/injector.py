"""The fault injector: replays a :class:`~repro.faults.plan.FaultPlan`
through DES events.

One injector process per materialised fault waits (in virtual time) until
the fault's instant, applies it to the shared
:class:`~repro.faults.state.FaultState`, and — for windowed faults —
reverts it after the duration. Because injections travel through the
same event calendar as the workload, virtual-time determinism is fully
preserved: the same plan against the same workload produces bit-identical
runs.

Observability (all optional, zero-cost when absent):

* telemetry instants ``fault.inject`` / ``fault.recover`` on the
  ``faults`` track (visible as markers in the Chrome trace);
* metrics: counter ``faults.injected{kind=...}``, histogram
  ``faults.recovery.seconds`` (per-fault recovery latency);
* an :class:`~repro.telemetry.events.EventKind.FAULT` record per healed
  window in the run's EventLog (duration = the outage span).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Generator, Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.state import FaultState
from repro.telemetry.events import EventKind, EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment, Process
    from repro.telemetry.hub import Telemetry


@dataclass
class InjectedFault:
    """One fault's lifecycle as observed during the run."""

    spec: FaultSpec
    injected_at: float
    recovered_at: Optional[float] = None

    @property
    def recovery_latency(self) -> Optional[float]:
        """Outage span in virtual seconds; None while still open."""
        if self.recovered_at is None:
            return None
        return self.recovered_at - self.injected_at


class FaultInjector:
    """Drives a plan's faults into a DES run."""

    def __init__(
        self,
        env: "Environment",
        plan: FaultPlan,
        state: FaultState,
        telemetry: Optional["Telemetry"] = None,
        event_log: Optional[EventLog] = None,
        component: str = "faults",
    ) -> None:
        self.env = env
        self.plan = plan
        self.state = state
        self.telemetry = telemetry
        self.event_log = event_log
        self.component = component
        self.injected: list[InjectedFault] = []

    def start(self) -> list["Process"]:
        """Spawn one process per materialised fault; returns them."""
        procs = []
        for i, spec in enumerate(self.plan.materialize()):
            procs.append(
                self.env.process(
                    self._drive(spec), name=f"{self.component}:{spec.kind.value}:{i}"
                )
            )
        return procs

    def _mark(self, name: str, spec: FaultSpec, **extra) -> None:
        """Emit a telemetry instant for an inject/recover edge."""
        if self.telemetry is None:
            return
        self.telemetry.tracer.instant(
            name,
            category="fault",
            pid=self.component,
            kind=spec.kind.value,
            target=spec.target,
            severity=spec.severity,
            **extra,
        )

    def _drive(self, spec: FaultSpec) -> Generator:
        """DES process: wait, apply the fault, and revert it after its window."""
        if spec.at > self.env.now:
            yield self.env.timeout(spec.at - self.env.now)
        record = InjectedFault(spec=spec, injected_at=self.env.now)
        self.injected.append(record)
        self.state.apply(spec)
        self._mark("fault.inject", spec)
        if self.telemetry is not None:
            self.telemetry.metrics.counter(
                "faults.injected", kind=spec.kind.value
            ).inc()
        if spec.duration > 0:
            yield self.env.timeout(spec.duration)
            self.state.revert(spec)
            record.recovered_at = self.env.now
            self._mark("fault.recover", spec, latency=record.recovery_latency)
            if self.telemetry is not None:
                self.telemetry.metrics.histogram(
                    "faults.recovery.seconds", kind=spec.kind.value
                ).observe(record.recovery_latency)
            if self.event_log is not None:
                self.event_log.add(
                    component=self.component,
                    kind=EventKind.FAULT,
                    start=record.injected_at,
                    duration=record.recovery_latency,
                    key=f"{spec.kind.value}:{spec.target}" if spec.target else spec.kind.value,
                )

    # -- reporting ----------------------------------------------------------
    def summary(self) -> dict:
        """Aggregate what was injected and how fast it healed."""
        by_kind: dict[str, int] = {}
        latencies = []
        for rec in self.injected:
            by_kind[rec.spec.kind.value] = by_kind.get(rec.spec.kind.value, 0) + 1
            if rec.recovery_latency is not None:
                latencies.append(rec.recovery_latency)
        return {
            "injected": len(self.injected),
            "by_kind": dict(sorted(by_kind.items())),
            "recovered": len(latencies),
            "mean_recovery_seconds": (
                sum(latencies) / len(latencies) if latencies else 0.0
            ),
            "max_recovery_seconds": max(latencies) if latencies else 0.0,
            "drops": self.state.drops,
            "corruptions": self.state.corruptions,
        }
