"""Machine presets, chiefly the Aurora model used throughout the paper.

Numbers trace to the paper's §4 description and public Aurora documentation:

* 2× Intel Xeon CPU Max per node, 52 physical cores each, 2 HT/core,
  512 GB DDR5 + 64 GB HBM per socket, 105 MB L3 per CPU (§4.1.2: "the
  total L3 cache on an Aurora CPU is 105 MB, which provides approximately
  8 MB per process in our 12-process per node configuration").
* 6× Intel Data Center GPU Max 1550 per node, 2 tiles each → 12 tiles.
* HPE Slingshot dragonfly fabric (~25 GB/s per NIC).
* Lustre ("Flare") parallel file system; the paper uses stripe size 1 MB,
  stripe count 1.

Only *ratios* of these figures matter for reproducing the paper's curve
shapes; EXPERIMENTS.md records how each calibrated constant was chosen.
"""

from __future__ import annotations

import math

from repro.cluster.filesystem import LustreSpec
from repro.cluster.machine import Machine, MachineSpec
from repro.cluster.node import GB, MB, CpuSpec, GpuSpec, NodeSpec
from repro.cluster.storage import NodeLocalSpec
from repro.cluster.topology import DragonflyTopology, LinkSpec


def aurora_node() -> NodeSpec:
    """One Aurora compute node."""
    cpu = CpuSpec(
        model="Intel Xeon CPU Max 9470C",
        cores=52,
        threads_per_core=2,
        l3_cache_bytes=105 * MB,
        ddr_bytes=512 * GB,
        hbm_bytes=64 * GB,
        ddr_bandwidth=300 * GB,
        hbm_bandwidth=1000 * GB,
    )
    gpu = GpuSpec(
        model="Intel Data Center GPU Max 1550",
        tiles=2,
        memory_bytes=128 * GB,
        memory_bandwidth=3200 * GB,
        pcie_bandwidth=64 * GB,
        peak_tflops=52.0,
    )
    return NodeSpec(
        name="aurora",
        cpus=(cpu, cpu),
        gpus=(gpu,) * 6,
        nic_bandwidth=25 * GB,
        nic_latency=2e-6,
        tmpfs_bandwidth=8 * GB,
        tmpfs_latency=15e-6,
        local_ssd_bandwidth=3 * GB,
        local_ssd_latency=80e-6,
    )


def aurora_lustre() -> LustreSpec:
    """The Lustre model calibrated to the paper's observations.

    ``mds_service_time`` and ``mds_capacity`` are the key calibrated pair:
    at 8 nodes × 12 ranks the metadata waves are short (fs is usable; a
    32 MB transfer ≈ one 0.031 s iteration), while at 512 nodes × 12 ranks
    queueing inflates per-op latency by roughly an order of magnitude
    (Fig 4 bottom-right).
    """
    return LustreSpec(
        n_osts=160,
        ost_bandwidth=5 * GB,
        mds_capacity=16,
        mds_service_time=450e-6,
        client_bandwidth=2 * GB,
        stripe_size=1 * MB,
        stripe_count=1,
    )


def aurora_node_local(processes_per_node: int = 12) -> NodeLocalSpec:
    """Node-local tmpfs staging on Aurora.

    Following the paper's arithmetic, the L3 share is one CPU's 105 MB /
    processes_per_node ≈ 8 MB per rank at the paper's 12 ranks per node —
    beyond which Fig 3's in-memory dip appears. Effective bandwidth ≈ 1 GB/s
    per process once serialization is included (Fig 4: a 32 MB transfer ≈
    one 0.031 s iteration).
    """
    return NodeLocalSpec(
        bandwidth=8 * GB,
        latency=15e-6,
        l3_share_bytes=105 * MB / max(1, processes_per_node),
        spill_bandwidth=3 * GB,
    )


def aurora(n_nodes: int = 8) -> Machine:
    """An Aurora partition with ``n_nodes`` nodes."""
    spec = MachineSpec(
        name="aurora",
        n_nodes=n_nodes,
        node=aurora_node(),
        lustre=aurora_lustre(),
        node_local=aurora_node_local(),
        nodes_per_switch=16,
        switches_per_group=32,
        node_link=LinkSpec(25e9, 2e-6),
        group_link=LinkSpec(50e9, 1e-6),
        global_link=LinkSpec(25e9, 2e-6),
    )
    return Machine(spec)


def sharded_dragonfly(n_nodes: int, n_shards: int) -> DragonflyTopology:
    """An Aurora-link dragonfly sized so group cuts can serve ``n_shards``.

    Parallel DES (:mod:`repro.des.parallel`) gets its best lookahead when
    every shard cut lands on a dragonfly group boundary. This preset
    keeps Aurora's link classes and 16-nodes-per-switch packing where
    possible but sizes ``switches_per_group`` so the machine has at
    least ``n_shards`` groups — the partitioner then never has to split
    inside a group (it may merge several groups into one shard, which
    costs nothing). Small machines fall back to fewer nodes per switch
    so enough switches exist to form the groups.
    """
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    nodes_per_switch = max(1, min(16, n_nodes // max(1, n_shards)))
    n_switches = math.ceil(n_nodes / nodes_per_switch)
    switches_per_group = max(1, n_switches // max(1, n_shards))
    return DragonflyTopology(
        n_nodes,
        nodes_per_switch=nodes_per_switch,
        switches_per_group=switches_per_group,
        node_link=LinkSpec(25e9, 2e-6),
        group_link=LinkSpec(50e9, 1e-6),
        global_link=LinkSpec(25e9, 2e-6),
    )


def laptop(n_nodes: int = 2) -> Machine:
    """A small machine for tests: modest everything, 2 GPU tiles per node."""
    node = NodeSpec(
        name="laptop",
        cpus=(CpuSpec(cores=8, l3_cache_bytes=16 * MB, ddr_bytes=32 * GB),),
        gpus=(GpuSpec(tiles=2, memory_bytes=8 * GB),),
        nic_bandwidth=10 * GB,
    )
    spec = MachineSpec(
        name="laptop",
        n_nodes=n_nodes,
        node=node,
        lustre=LustreSpec(n_osts=4, mds_capacity=2),
        node_local=NodeLocalSpec(l3_share_bytes=4 * MB),
        nodes_per_switch=4,
        switches_per_group=4,
    )
    return Machine(spec)
