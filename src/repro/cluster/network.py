"""Network fabric: charges transfer times over the topology with contention.

The fabric tracks active flows per link. A new flow's effective bandwidth is
the minimum over its route of ``link_bandwidth / flows_sharing_link`` — a
max-min-lite model that captures the paper's key effect: in a many-to-one
pattern every producer's flow shares the consumer's terminal link, so
per-flow bandwidth collapses as the ensemble grows (incast).

Transfer time for ``nbytes`` is ``path_latency + per_message_overhead +
nbytes / effective_bandwidth``. Bandwidth sharing is evaluated when the flow
starts (flows do not get retroactively re-timed on churn; at the message
sizes studied this keeps the model simple and errs conservatively).
"""

from __future__ import annotations

from collections import Counter
from typing import Generator

from repro.des import Environment
from repro.cluster.topology import DragonflyTopology
from repro.errors import SimulationError


class NetworkFabric:
    """Stateful contention-aware transfer-time model over a topology."""

    def __init__(
        self,
        env: Environment,
        topology: DragonflyTopology,
        per_message_overhead: float = 5e-6,
        intra_node_bandwidth: float = 50e9,
        intra_node_latency: float = 1e-6,
    ) -> None:
        self.env = env
        self.topology = topology
        self.per_message_overhead = per_message_overhead
        self.intra_node_bandwidth = intra_node_bandwidth
        self.intra_node_latency = intra_node_latency
        self._link_flows: Counter[tuple[str, str]] = Counter()
        self.completed_transfers = 0
        self.bytes_moved = 0.0

    # -- analytic queries ---------------------------------------------------
    def effective_bandwidth(self, src: int, dst: int) -> float:
        """Bandwidth a new src->dst flow would get right now (bytes/s)."""
        if src == dst:
            return self.intra_node_bandwidth
        best = float("inf")
        for link in self.topology.path_links(src, dst):
            bw = self.topology.graph.edges[link]["bandwidth"]
            sharers = self._link_flows[link] + 1  # include the new flow
            best = min(best, bw / sharers)
        return best

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Time a transfer starting now would take (no state change)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if src == dst:
            latency = self.intra_node_latency
        else:
            latency = self.topology.path_latency(src, dst)
        bandwidth = self.effective_bandwidth(src, dst)
        return latency + self.per_message_overhead + nbytes / bandwidth

    def active_flows_on(self, src: int, dst: int) -> int:
        """Max flow count over the links of the src->dst route."""
        if src == dst:
            return 0
        return max(
            (self._link_flows[link] for link in self.topology.path_links(src, dst)),
            default=0,
        )

    # -- DES process --------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: float) -> Generator:
        """DES generator: occupy the route for the duration of the transfer.

        Usage inside a process: ``yield from fabric.transfer(a, b, size)`` or
        ``yield env.process(fabric.transfer(a, b, size))``.
        """
        links = [] if src == dst else self.topology.path_links(src, dst)
        for link in links:
            self._link_flows[link] += 1
        try:
            duration = self.transfer_time_with_current_share(src, dst, nbytes)
            yield self.env.timeout(duration)
        finally:
            for link in links:
                self._link_flows[link] -= 1
        self.completed_transfers += 1
        self.bytes_moved += nbytes
        return duration

    def transfer_time_with_current_share(
        self, src: int, dst: int, nbytes: float
    ) -> float:
        """Like :meth:`transfer_time` but assuming our flow is already
        registered on the route (used internally by :meth:`transfer`)."""
        if src == dst:
            return (
                self.intra_node_latency
                + self.per_message_overhead
                + nbytes / self.intra_node_bandwidth
            )
        best = float("inf")
        for link in self.topology.path_links(src, dst):
            bw = self.topology.graph.edges[link]["bandwidth"]
            sharers = max(1, self._link_flows[link])
            best = min(best, bw / sharers)
        latency = self.topology.path_latency(src, dst)
        return latency + self.per_message_overhead + nbytes / best
