"""Network fabric: charges transfer times over the topology with contention.

The fabric tracks active flows per link. A new flow's effective bandwidth is
the minimum over its route of ``link_bandwidth / flows_sharing_link`` — a
max-min-lite model that captures the paper's key effect: in a many-to-one
pattern every producer's flow shares the consumer's terminal link, so
per-flow bandwidth collapses as the ensemble grows (incast).

Transfer time for ``nbytes`` is ``path_latency + per_message_overhead +
nbytes / effective_bandwidth``. Bandwidth sharing is evaluated when the flow
starts (flows do not get retroactively re-timed on churn; at the message
sizes studied this keeps the model simple and errs conservatively).

Performance (see ARCHITECTURE.md "Performance"): routes, their latencies,
and their per-link bandwidths are immutable once the topology is built, so
the fabric caches them per (src, dst) instead of re-walking the networkx
graph on every transfer. The fair-share bandwidth of a route is cached too,
keyed by an epoch signature: every link carries a counter bumped whenever
its flow count changes, and a route's signature is the sum of its link
epochs. Epochs only increment, so an unchanged signature proves no link on
the route gained or lost a flow since the share was computed — the cached
value is exact, never an approximation, and timing stays bit-identical.
"""

from __future__ import annotations

from collections import Counter
from typing import Generator

from repro.des import Environment
from repro.cluster.topology import DragonflyTopology
from repro.errors import SimulationError


class NetworkFabric:
    """Stateful contention-aware transfer-time model over a topology."""

    def __init__(
        self,
        env: Environment,
        topology: DragonflyTopology,
        per_message_overhead: float = 5e-6,
        intra_node_bandwidth: float = 50e9,
        intra_node_latency: float = 1e-6,
    ) -> None:
        self.env = env
        self.topology = topology
        self.per_message_overhead = per_message_overhead
        self.intra_node_bandwidth = intra_node_bandwidth
        self.intra_node_latency = intra_node_latency
        self._link_flows: Counter[tuple[str, str]] = Counter()
        # (src, dst) -> (links, path latency, per-link bandwidths); all
        # static once the topology graph is built.
        self._route_cache: dict[
            tuple[int, int], tuple[tuple[tuple[str, str], ...], float, tuple[float, ...]]
        ] = {}
        # link -> epoch, bumped on every flow-count change on that link.
        self._link_epoch: dict[tuple[str, str], int] = {}
        # (src, dst) -> (epoch signature, fair share at that signature).
        self._share_cache: dict[tuple[int, int], tuple[int, float]] = {}
        self.completed_transfers = 0
        self.bytes_moved = 0.0

    def _route(
        self, src: int, dst: int
    ) -> tuple[tuple[tuple[str, str], ...], float, tuple[float, ...]]:
        """Cached (links, latency, bandwidths) for a src->dst route."""
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is None:
            links = tuple(self.topology.path_links(src, dst))
            edges = self.topology.graph.edges
            bandwidths = tuple(edges[link]["bandwidth"] for link in links)
            cached = (links, self.topology.path_latency(src, dst), bandwidths)
            self._route_cache[key] = cached
        return cached

    # -- analytic queries ---------------------------------------------------
    def effective_bandwidth(self, src: int, dst: int) -> float:
        """Bandwidth a new src->dst flow would get right now (bytes/s)."""
        if src == dst:
            return self.intra_node_bandwidth
        links, _, bandwidths = self._route(src, dst)
        flows = self._link_flows
        best = float("inf")
        for link, bw in zip(links, bandwidths):
            sharers = flows[link] + 1  # include the new flow
            best = min(best, bw / sharers)
        return best

    def transfer_time(self, src: int, dst: int, nbytes: float) -> float:
        """Time a transfer starting now would take (no state change)."""
        if nbytes < 0:
            raise SimulationError(f"negative transfer size {nbytes}")
        if src == dst:
            latency = self.intra_node_latency
        else:
            latency = self._route(src, dst)[1]
        bandwidth = self.effective_bandwidth(src, dst)
        return latency + self.per_message_overhead + nbytes / bandwidth

    def active_flows_on(self, src: int, dst: int) -> int:
        """Max flow count over the links of the src->dst route."""
        if src == dst:
            return 0
        flows = self._link_flows
        return max((flows[link] for link in self._route(src, dst)[0]), default=0)

    # -- DES process --------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: float) -> Generator:
        """DES generator: occupy the route for the duration of the transfer.

        Usage inside a process: ``yield from fabric.transfer(a, b, size)`` or
        ``yield env.process(fabric.transfer(a, b, size))``.
        """
        links = () if src == dst else self._route(src, dst)[0]
        flows = self._link_flows
        epochs = self._link_epoch
        for link in links:
            flows[link] += 1
            epochs[link] = epochs.get(link, 0) + 1
        try:
            duration = self.transfer_time_with_current_share(src, dst, nbytes)
            yield self.env.timeout(duration)
        finally:
            for link in links:
                flows[link] -= 1
                epochs[link] += 1
        self.completed_transfers += 1
        self.bytes_moved += nbytes
        return duration

    def transfer_time_with_current_share(
        self, src: int, dst: int, nbytes: float
    ) -> float:
        """Like :meth:`transfer_time` but assuming our flow is already
        registered on the route (used internally by :meth:`transfer`)."""
        if src == dst:
            return (
                self.intra_node_latency
                + self.per_message_overhead
                + nbytes / self.intra_node_bandwidth
            )
        links, latency, bandwidths = self._route(src, dst)
        epochs = self._link_epoch
        signature = 0
        for link in links:
            signature += epochs.get(link, 0)
        cached = self._share_cache.get((src, dst))
        if cached is not None and cached[0] == signature:
            best = cached[1]
        else:
            flows = self._link_flows
            best = float("inf")
            for link, bw in zip(links, bandwidths):
                sharers = max(1, flows[link])
                best = min(best, bw / sharers)
            self._share_cache[(src, dst)] = (signature, best)
        return latency + self.per_message_overhead + nbytes / best
