"""Interconnect topology: a dragonfly-style graph built with networkx.

Aurora's Slingshot fabric is a dragonfly: nodes attach to switches, switches
within a group are all-to-all, and groups are connected by global links.
We reproduce that structure so that hop counts (and therefore latency) and
shared-link sets (and therefore contention) are derived from the topology
rather than assumed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigError


@dataclass(frozen=True)
class LinkSpec:
    """A physical link class with bandwidth (bytes/s) and latency (s)."""

    bandwidth: float
    latency: float

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.latency < 0:
            raise ConfigError(f"invalid link spec: {self}")


class DragonflyTopology:
    """A dragonfly network over ``n_nodes`` compute nodes.

    Parameters
    ----------
    n_nodes:
        Number of compute nodes.
    nodes_per_switch:
        Terminal links per switch.
    switches_per_group:
        Switches per group; intra-group links are all-to-all.
    node_link / group_link / global_link:
        Link classes for node-switch, intra-group, inter-group hops.
    """

    def __init__(
        self,
        n_nodes: int,
        nodes_per_switch: int = 16,
        switches_per_group: int = 32,
        node_link: LinkSpec = LinkSpec(25e9, 2e-6),
        group_link: LinkSpec = LinkSpec(50e9, 1e-6),
        global_link: LinkSpec = LinkSpec(25e9, 2e-6),
    ) -> None:
        if n_nodes <= 0:
            raise ConfigError(f"n_nodes must be positive, got {n_nodes}")
        if nodes_per_switch <= 0 or switches_per_group <= 0:
            raise ConfigError("nodes_per_switch and switches_per_group must be positive")

        self.n_nodes = n_nodes
        self.nodes_per_switch = nodes_per_switch
        self.switches_per_group = switches_per_group
        self.node_link = node_link
        self.group_link = group_link
        self.global_link = global_link

        self.n_switches = math.ceil(n_nodes / nodes_per_switch)
        self.n_groups = math.ceil(self.n_switches / switches_per_group)

        self.graph = nx.Graph()
        self._build()
        # Route memo: the graph is immutable after _build(), so every
        # path query is a pure function of (src, dst). Each transfer in
        # the contention model asks for its route; without the memo that
        # is one networkx shortest-path search per simulated message.
        self._path_cache: dict[tuple[int, int], list[str]] = {}
        self._links_cache: dict[tuple[int, int], list[tuple[str, str]]] = {}
        self._latency_cache: dict[tuple[int, int], float] = {}

    # -- construction -----------------------------------------------------
    @staticmethod
    def node_id(i: int) -> str:
        return f"n{i}"

    @staticmethod
    def switch_id(i: int) -> str:
        return f"s{i}"

    def _build(self) -> None:
        g = self.graph
        for i in range(self.n_nodes):
            g.add_node(self.node_id(i), kind="node", group=self.group_of_node(i))
        for s in range(self.n_switches):
            g.add_node(self.switch_id(s), kind="switch", group=s // self.switches_per_group)

        # terminal links
        for i in range(self.n_nodes):
            s = i // self.nodes_per_switch
            g.add_edge(
                self.node_id(i),
                self.switch_id(s),
                bandwidth=self.node_link.bandwidth,
                latency=self.node_link.latency,
                kind="terminal",
            )

        # intra-group all-to-all
        for group in range(self.n_groups):
            members = [
                s
                for s in range(self.n_switches)
                if s // self.switches_per_group == group
            ]
            for idx, a in enumerate(members):
                for b in members[idx + 1 :]:
                    g.add_edge(
                        self.switch_id(a),
                        self.switch_id(b),
                        bandwidth=self.group_link.bandwidth,
                        latency=self.group_link.latency,
                        kind="group",
                    )

        # inter-group: one global link between the lead switches of every
        # pair of groups (idealised all-to-all group connectivity)
        leads = [group * self.switches_per_group for group in range(self.n_groups)]
        for i, a in enumerate(leads):
            for b in leads[i + 1 :]:
                g.add_edge(
                    self.switch_id(a),
                    self.switch_id(b),
                    bandwidth=self.global_link.bandwidth,
                    latency=self.global_link.latency,
                    kind="global",
                )

    # -- queries ----------------------------------------------------------
    def group_of_node(self, node: int) -> int:
        return (node // self.nodes_per_switch) // self.switches_per_group

    def switch_of_node(self, node: int) -> int:
        return node // self.nodes_per_switch

    # -- latency floors (conservative-PDES lookahead) ----------------------
    # A message between nodes in different dragonfly groups traverses at
    # least two terminal links and one global link; within a group but
    # across switches, two terminal links and one all-to-all group link;
    # on a shared switch, two terminal links. These floors are exact
    # lower bounds on :meth:`path_latency` for the respective node pairs,
    # which is what makes them sound lookahead values for conservative
    # parallel simulation: no cross-boundary effect can arrive sooner.
    def min_same_switch_latency(self) -> float:
        """Latency floor between two distinct nodes on one switch."""
        return 2.0 * self.node_link.latency

    def min_intra_group_latency(self) -> float:
        """Latency floor between nodes on different switches of a group."""
        return 2.0 * self.node_link.latency + self.group_link.latency

    def min_inter_group_latency(self) -> float:
        """Latency floor between nodes in different dragonfly groups."""
        if self.n_groups < 2:
            raise ConfigError(
                f"topology has {self.n_groups} group(s); inter-group latency "
                "is undefined"
            )
        return 2.0 * self.node_link.latency + self.global_link.latency

    def path(self, src: int, dst: int) -> list[str]:
        """Minimal-hop route between two compute nodes (graph node ids).

        Cached per (src, dst); callers must treat the list as read-only.
        """
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            route = [self.node_id(src)]
        else:
            route = nx.shortest_path(self.graph, self.node_id(src), self.node_id(dst))
        self._path_cache[(src, dst)] = route
        return route

    def hop_count(self, src: int, dst: int) -> int:
        """Number of links traversed between two nodes (0 when identical)."""
        return len(self.path(src, dst)) - 1

    def path_latency(self, src: int, dst: int) -> float:
        """Sum of link latencies along the minimal route (cached)."""
        cached = self._latency_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self.path(src, dst)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.graph.edges[a, b]["latency"]
        self._latency_cache[(src, dst)] = total
        return total

    def path_bottleneck_bandwidth(self, src: int, dst: int) -> float:
        """Minimum link bandwidth along the route (inf for src == dst)."""
        path = self.path(src, dst)
        if len(path) == 1:
            return float("inf")
        return min(self.graph.edges[a, b]["bandwidth"] for a, b in zip(path, path[1:]))

    def path_links(self, src: int, dst: int) -> list[tuple[str, str]]:
        """Canonically ordered (sorted endpoints) link list along the route.

        Cached per (src, dst); callers must treat the list as read-only.
        """
        cached = self._links_cache.get((src, dst))
        if cached is not None:
            return cached
        path = self.path(src, dst)
        links = [tuple(sorted((a, b))) for a, b in zip(path, path[1:])]
        self._links_cache[(src, dst)] = links
        return links

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ConfigError(
                f"node index {node} out of range [0, {self.n_nodes})"
            )
