"""Compute-node hardware model.

Models the parts of a node that the paper's analysis depends on: GPU
tiles (resource placement — 12 tiles per Aurora node split 6/6 between
simulation and AI), CPU last-level cache (the L3 share per process drives
the throughput dip of in-memory stores at large message sizes, §4.1.2),
and memory capacities/bandwidths (node-local tmpfs staging lives in DDR).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket."""

    model: str = "generic"
    cores: int = 16
    threads_per_core: int = 2
    l3_cache_bytes: int = 32 * MB
    ddr_bytes: int = 64 * GB
    hbm_bytes: int = 0
    ddr_bandwidth: float = 100 * GB  # bytes/s
    hbm_bandwidth: float = 0.0

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads_per_core <= 0:
            raise ConfigError("CPU cores and threads_per_core must be positive")
        if self.l3_cache_bytes <= 0:
            raise ConfigError("l3_cache_bytes must be positive")


@dataclass(frozen=True)
class GpuSpec:
    """One GPU package, possibly split into independently schedulable tiles."""

    model: str = "generic"
    tiles: int = 1
    memory_bytes: int = 16 * GB
    memory_bandwidth: float = 1000 * GB
    pcie_bandwidth: float = 32 * GB  # host<->device link, bytes/s
    peak_tflops: float = 10.0

    def __post_init__(self) -> None:
        if self.tiles <= 0:
            raise ConfigError("GPU tiles must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """A compute node: sockets + GPUs + node-local staging storage."""

    name: str = "node"
    cpus: tuple[CpuSpec, ...] = (CpuSpec(),)
    gpus: tuple[GpuSpec, ...] = (GpuSpec(),)
    nic_bandwidth: float = 25 * GB  # injection bandwidth per node, bytes/s
    nic_latency: float = 2e-6  # seconds
    tmpfs_bandwidth: float = 8 * GB  # effective per-process DRAM-fs bw
    tmpfs_latency: float = 15e-6
    local_ssd_bandwidth: float = 3 * GB
    local_ssd_latency: float = 80e-6

    def __post_init__(self) -> None:
        if not self.cpus:
            raise ConfigError("a node needs at least one CPU socket")
        if self.nic_bandwidth <= 0:
            raise ConfigError("nic_bandwidth must be positive")

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.cpus)

    @property
    def total_gpu_tiles(self) -> int:
        """Total independently schedulable GPU tiles on the node."""
        return sum(g.tiles for g in self.gpus)

    @property
    def total_l3_bytes(self) -> int:
        return sum(c.l3_cache_bytes for c in self.cpus)

    @property
    def total_ddr_bytes(self) -> int:
        return sum(c.ddr_bytes for c in self.cpus)

    @property
    def total_hbm_bytes(self) -> int:
        return sum(c.hbm_bytes for c in self.cpus)

    def l3_share_per_process(self, processes: int) -> float:
        """L3 bytes available per process with ``processes`` per socket-pair.

        Follows the paper's own arithmetic (§4.1.2): one CPU's L3 (105 MB on
        Aurora) divided by the node's process count (12) gives ~8 MB per
        process; transfers past this size spill the cache and slow the
        in-memory stores down.
        """
        if processes <= 0:
            raise ConfigError(f"processes must be positive, got {processes}")
        return self.cpus[0].l3_cache_bytes / processes


@dataclass
class Node:
    """A node instance inside a machine: spec + identity + occupancy."""

    index: int
    spec: NodeSpec
    group: int = 0
    allocated_tiles: int = 0
    labels: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return f"{self.spec.name}{self.index:05d}"

    @property
    def free_tiles(self) -> int:
        return self.spec.total_gpu_tiles - self.allocated_tiles

    def allocate_tiles(self, count: int) -> None:
        """Reserve ``count`` GPU tiles; raises if the node is oversubscribed."""
        if count < 0:
            raise ConfigError(f"cannot allocate {count} tiles")
        if count > self.free_tiles:
            raise ConfigError(
                f"{self.name}: requested {count} tiles but only "
                f"{self.free_tiles} of {self.spec.total_gpu_tiles} free"
            )
        self.allocated_tiles += count

    def release_tiles(self, count: int) -> None:
        if count < 0 or count > self.allocated_tiles:
            raise ConfigError(
                f"{self.name}: cannot release {count} of {self.allocated_tiles} tiles"
            )
        self.allocated_tiles -= count
