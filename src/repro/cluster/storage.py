"""Node-local staging storage model (tmpfs in DRAM, or local SSD).

The defining behaviours (paper §4.1.2, Fig 3):

* Very low, scale-independent latency — staging never leaves the node, so
  performance is identical at 8 and 512 nodes.
* Non-monotonic throughput vs. message size: per-op latency dominates for
  small messages (throughput rises with size), and once a message exceeds
  the per-process L3 share (~8 MB on Aurora with 12 ranks/node) the copy
  spills the cache and effective bandwidth drops.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class NodeLocalSpec:
    """Parameters of a node-local staging area."""

    bandwidth: float = 8e9  # in-cache copy bandwidth per process, bytes/s
    latency: float = 15e-6  # per-op fixed cost (syscalls, rename)
    l3_share_bytes: float = 8 * 1024 * 1024
    spill_bandwidth: float = 3e9  # DRAM-bound copy bandwidth once spilled

    def __post_init__(self) -> None:
        if self.bandwidth <= 0 or self.spill_bandwidth <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.latency < 0:
            raise ConfigError("latency must be >= 0")
        if self.l3_share_bytes <= 0:
            raise ConfigError("l3_share_bytes must be positive")


class NodeLocalModel:
    """Analytic time model for node-local staging operations."""

    def __init__(self, spec: NodeLocalSpec | None = None) -> None:
        self.spec = spec or NodeLocalSpec()

    def effective_bandwidth(self, nbytes: float) -> float:
        """Piecewise-smooth bandwidth: in-cache below the L3 share, blending
        toward DRAM-bound as the message increasingly exceeds it."""
        if nbytes < 0:
            raise SimulationError("nbytes must be >= 0")
        spec = self.spec
        if nbytes <= spec.l3_share_bytes:
            return spec.bandwidth
        # Fraction of the working set that no longer fits in cache.
        spilled = 1.0 - spec.l3_share_bytes / nbytes
        return spec.bandwidth * (1.0 - spilled) + spec.spill_bandwidth * spilled

    def op_time(self, nbytes: float) -> float:
        """Time for one staged write or read of ``nbytes``."""
        return self.spec.latency + nbytes / self.effective_bandwidth(nbytes)

    def poll_time(self) -> float:
        """An existence check costs one fixed latency."""
        return self.spec.latency
