"""Parallel file system (Lustre) model.

Two mechanisms matter for the paper's results:

* **Data path** — a file of ``nbytes`` is striped over ``stripe_count``
  object storage targets (OSTs) in ``stripe_size`` chunks; each OST's
  bandwidth is shared by the streams concurrently hitting it. With the
  paper's default (stripe_count=1) each file lands on one OST, so per-file
  bandwidth is ``ost_bandwidth / concurrent streams on that OST`` —
  throughput *per process* stays roughly flat with node count as long as
  files spread over enough OSTs.
* **Metadata path** — every create/open/stat goes through the metadata
  server (MDS), modeled as a small fixed-capacity queue with a per-op
  service time. At 512 nodes × 12 ranks the concurrent metadata requests
  queue up, and the per-op *latency* explodes — exactly the "metadata
  contention" degradation the paper observes (Fig 3b, Fig 4). Because
  metadata cost is independent of message size, small messages suffer the
  most, preserving the paper's monotonic throughput-vs-size curve.

The model exposes both a DES interface (processes queue on the MDS
Resource) and an analytic interface (closed-form M/M/c-style estimate)
so the experiment drivers can run large sweeps quickly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Generator, Optional

from repro.des import Environment, Resource
from repro.errors import ConfigError, SimulationError


@dataclass(frozen=True)
class LustreSpec:
    """Static parameters of the modeled file system."""

    n_osts: int = 64
    ost_bandwidth: float = 5e9  # bytes/s per OST
    mds_capacity: int = 4  # concurrent metadata ops serviced
    mds_service_time: float = 250e-6  # seconds per metadata op
    client_bandwidth: float = 2.5e9  # per-client max data bandwidth
    stripe_size: int = 1 * 1024 * 1024
    stripe_count: int = 1
    metadata_ops_per_write: int = 2  # create + close
    metadata_ops_per_read: int = 2  # open/lookup + close
    metadata_ops_per_poll: int = 1  # stat

    def __post_init__(self) -> None:
        if self.n_osts <= 0 or self.mds_capacity <= 0:
            raise ConfigError("n_osts and mds_capacity must be positive")
        if min(self.ost_bandwidth, self.client_bandwidth) <= 0:
            raise ConfigError("bandwidths must be positive")
        if self.mds_service_time < 0:
            raise ConfigError("mds_service_time must be >= 0")
        if self.stripe_size <= 0 or self.stripe_count <= 0:
            raise ConfigError("stripe settings must be positive")


class LustreModel:
    """Stateful Lustre model bound to a DES environment."""

    def __init__(self, env: Environment, spec: Optional[LustreSpec] = None) -> None:
        self.env = env
        self.spec = spec or LustreSpec()
        self.mds = Resource(env, capacity=self.spec.mds_capacity)
        self._ost_streams: Counter[int] = Counter()
        self._next_ost = 0
        self.metadata_ops = 0
        self.bytes_written = 0.0
        self.bytes_read = 0.0

    # -- placement ----------------------------------------------------------
    def assign_osts(self, key_hash: int) -> list[int]:
        """OSTs a file with this hash stripes over (round-robin start)."""
        count = min(self.spec.stripe_count, self.spec.n_osts)
        start = key_hash % self.spec.n_osts
        return [(start + i) % self.spec.n_osts for i in range(count)]

    # -- analytic estimates ---------------------------------------------------
    def metadata_latency_estimate(self, concurrent_clients: int) -> float:
        """Expected per-op metadata latency with ``concurrent_clients``
        simultaneously issuing metadata ops (simple queueing estimate:
        service time × ceil(load / capacity))."""
        if concurrent_clients < 0:
            raise SimulationError("concurrent_clients must be >= 0")
        waves = max(1.0, concurrent_clients / self.spec.mds_capacity)
        return self.spec.mds_service_time * waves

    def data_time_estimate(self, nbytes: float, streams_per_ost: float = 1.0) -> float:
        """Expected pure-data time for one file of ``nbytes``."""
        if nbytes < 0:
            raise SimulationError("nbytes must be >= 0")
        count = min(self.spec.stripe_count, self.spec.n_osts)
        per_ost_share = self.spec.ost_bandwidth / max(1.0, streams_per_ost)
        # Aggregate bandwidth over the stripes, capped by the client NIC.
        bandwidth = min(self.spec.client_bandwidth, per_ost_share * count)
        return nbytes / bandwidth

    def op_time_estimate(
        self, nbytes: float, concurrent_clients: int, is_write: bool
    ) -> float:
        """Closed-form estimate of one stage_write/stage_read."""
        n_meta = (
            self.spec.metadata_ops_per_write
            if is_write
            else self.spec.metadata_ops_per_read
        )
        streams_per_ost = max(1.0, concurrent_clients / self.spec.n_osts)
        return n_meta * self.metadata_latency_estimate(
            concurrent_clients
        ) + self.data_time_estimate(nbytes, streams_per_ost)

    # -- DES processes --------------------------------------------------------
    def _metadata_op(self) -> Generator:
        with self.mds.request() as req:
            yield req
            yield self.env.timeout(self.spec.mds_service_time)
        self.metadata_ops += 1

    def _data_transfer(self, nbytes: float, osts: list[int]) -> Generator:
        for ost in osts:
            self._ost_streams[ost] += 1
        try:
            # Bandwidth share evaluated at start of the transfer.
            per_ost = min(
                self.spec.ost_bandwidth / max(1, self._ost_streams[ost])
                for ost in osts
            )
            bandwidth = min(self.spec.client_bandwidth, per_ost * len(osts))
            yield self.env.timeout(nbytes / bandwidth)
        finally:
            for ost in osts:
                self._ost_streams[ost] -= 1

    def write(self, key_hash: int, nbytes: float) -> Generator:
        """DES process: one staged write (metadata ops + striped data)."""
        for _ in range(self.spec.metadata_ops_per_write):
            yield from self._metadata_op()
        yield from self._data_transfer(nbytes, self.assign_osts(key_hash))
        self.bytes_written += nbytes

    def read(self, key_hash: int, nbytes: float) -> Generator:
        """DES process: one staged read."""
        for _ in range(self.spec.metadata_ops_per_read):
            yield from self._metadata_op()
        yield from self._data_transfer(nbytes, self.assign_osts(key_hash))
        self.bytes_read += nbytes

    def poll(self) -> Generator:
        """DES process: a metadata-only existence check."""
        for _ in range(self.spec.metadata_ops_per_poll):
            yield from self._metadata_op()
