"""Machine model: nodes, interconnect topology, file system, presets."""

from repro.cluster.filesystem import LustreModel, LustreSpec
from repro.cluster.machine import Machine, MachineInstance, MachineSpec, make_machine
from repro.cluster.network import NetworkFabric
from repro.cluster.node import GB, MB, CpuSpec, GpuSpec, Node, NodeSpec
from repro.cluster.presets import (
    aurora,
    aurora_lustre,
    aurora_node,
    aurora_node_local,
    laptop,
    sharded_dragonfly,
)
from repro.cluster.storage import NodeLocalModel, NodeLocalSpec
from repro.cluster.topology import DragonflyTopology, LinkSpec

__all__ = [
    "GB",
    "MB",
    "CpuSpec",
    "DragonflyTopology",
    "GpuSpec",
    "LinkSpec",
    "LustreModel",
    "LustreSpec",
    "Machine",
    "MachineInstance",
    "MachineSpec",
    "NetworkFabric",
    "Node",
    "NodeLocalModel",
    "NodeLocalSpec",
    "NodeSpec",
    "aurora",
    "aurora_lustre",
    "aurora_node",
    "aurora_node_local",
    "laptop",
    "make_machine",
    "sharded_dragonfly",
]
