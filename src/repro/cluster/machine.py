"""The Machine: nodes + interconnect + file system, plus job placement.

A :class:`Machine` is a static description (it owns no DES state); binding
it to an :class:`~repro.des.Environment` via :meth:`instantiate` produces a
:class:`MachineInstance` with live contention state (network fabric, Lustre
MDS queue) that simulated workflows charge time against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cluster.filesystem import LustreModel, LustreSpec
from repro.cluster.network import NetworkFabric
from repro.cluster.node import Node, NodeSpec
from repro.cluster.storage import NodeLocalModel, NodeLocalSpec
from repro.cluster.topology import DragonflyTopology, LinkSpec
from repro.des import Environment
from repro.errors import ConfigError


@dataclass
class MachineSpec:
    """Static description of a machine."""

    name: str = "machine"
    n_nodes: int = 8
    node: NodeSpec = field(default_factory=NodeSpec)
    lustre: LustreSpec = field(default_factory=LustreSpec)
    node_local: NodeLocalSpec = field(default_factory=NodeLocalSpec)
    nodes_per_switch: int = 16
    switches_per_group: int = 32
    node_link: LinkSpec = LinkSpec(25e9, 2e-6)
    group_link: LinkSpec = LinkSpec(50e9, 1e-6)
    global_link: LinkSpec = LinkSpec(25e9, 2e-6)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise ConfigError(f"n_nodes must be positive, got {self.n_nodes}")

    def with_nodes(self, n_nodes: int) -> "MachineSpec":
        """A copy of this spec scaled to ``n_nodes`` nodes."""
        return MachineSpec(
            name=self.name,
            n_nodes=n_nodes,
            node=self.node,
            lustre=self.lustre,
            node_local=self.node_local,
            nodes_per_switch=self.nodes_per_switch,
            switches_per_group=self.switches_per_group,
            node_link=self.node_link,
            group_link=self.group_link,
            global_link=self.global_link,
        )


class Machine:
    """A machine: instantiable description + node bookkeeping."""

    def __init__(self, spec: MachineSpec) -> None:
        self.spec = spec
        self.nodes = [Node(index=i, spec=spec.node) for i in range(spec.n_nodes)]
        self.topology = DragonflyTopology(
            spec.n_nodes,
            nodes_per_switch=spec.nodes_per_switch,
            switches_per_group=spec.switches_per_group,
            node_link=spec.node_link,
            group_link=spec.group_link,
            global_link=spec.global_link,
        )
        for node in self.nodes:
            node.group = self.topology.group_of_node(node.index)

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    def node_by_index(self, index: int) -> Node:
        if not 0 <= index < len(self.nodes):
            raise ConfigError(f"node index {index} out of range [0, {len(self.nodes)})")
        return self.nodes[index]

    def allocate_nodes(self, count: int, tiles_per_node: int = 0) -> list[Node]:
        """Reserve ``count`` nodes (optionally claiming GPU tiles on each).

        Nodes are taken in index order from those with enough free tiles.
        """
        if count <= 0:
            raise ConfigError(f"cannot allocate {count} nodes")
        chosen: list[Node] = []
        for node in self.nodes:
            if node.free_tiles >= tiles_per_node:
                chosen.append(node)
                if len(chosen) == count:
                    break
        if len(chosen) < count:
            raise ConfigError(
                f"machine {self.spec.name!r}: requested {count} nodes with "
                f"{tiles_per_node} free tiles each, only {len(chosen)} available"
            )
        for node in chosen:
            node.allocate_tiles(tiles_per_node)
        return chosen

    def release_nodes(self, nodes: list[Node], tiles_per_node: int = 0) -> None:
        for node in nodes:
            node.release_tiles(tiles_per_node)

    def instantiate(self, env: Environment) -> "MachineInstance":
        """Bind this machine to a DES environment (live contention state)."""
        return MachineInstance(env, self)


class MachineInstance:
    """A machine bound to a DES environment: live fabric + Lustre + storage."""

    def __init__(self, env: Environment, machine: Machine) -> None:
        self.env = env
        self.machine = machine
        self.fabric = NetworkFabric(env, machine.topology)
        self.lustre = LustreModel(env, machine.spec.lustre)
        self.node_local = NodeLocalModel(machine.spec.node_local)

    @property
    def spec(self) -> MachineSpec:
        return self.machine.spec

    @property
    def n_nodes(self) -> int:
        return self.machine.n_nodes


def make_machine(spec: Optional[MachineSpec] = None, **overrides) -> Machine:
    """Convenience constructor: ``make_machine(n_nodes=8)``."""
    if spec is None:
        spec = MachineSpec(**overrides)
    elif overrides:
        raise ConfigError("pass either a spec or keyword overrides, not both")
    return Machine(spec)
