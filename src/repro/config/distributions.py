"""Stochastic parameter specifications for mini-app kernels.

The paper (§3.3) lets ``run_time`` and ``run_count`` be either fixed values
or discrete probability density functions sampled at every iteration. We
support a small algebra of distributions, each constructible from a plain
JSON-friendly dict so configurations stay serialisable::

    {"dist": "constant", "value": 0.03}
    {"dist": "discrete", "values": [0.01, 0.02], "weights": [0.7, 0.3]}
    {"dist": "uniform", "low": 0.01, "high": 0.05}
    {"dist": "normal", "mean": 0.03, "std": 0.005, "min": 0.0}
    {"dist": "lognormal", "mean": 0.03, "sigma": 0.5}
    {"dist": "exponential", "scale": 0.02, "shift": 0.01}

``Distribution.from_spec`` accepts either such a dict, a bare number
(treated as constant), or an existing :class:`Distribution`.
"""

from __future__ import annotations

import math
from typing import Any, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigError

SpecLike = Union["Distribution", Mapping[str, Any], int, float]


class Distribution:
    """Base class: a sampleable scalar parameter."""

    kind = "abstract"

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean, used for validation and for sim-mode planning."""
        raise NotImplementedError

    def minimum(self) -> float:
        """Infimum of the support: no sample is ever below this.

        Conservative parallel DES (:mod:`repro.des.parallel`) uses it as
        the per-iteration lookahead of workload progress oracles, so it
        must be a *sound* lower bound; unbounded-below distributions
        return ``-inf`` (sound but useless for lookahead).
        """
        raise NotImplementedError

    def to_spec(self) -> dict[str, Any]:
        """Serialise back to a JSON-friendly dict."""
        raise NotImplementedError

    @staticmethod
    def from_spec(spec: SpecLike) -> "Distribution":
        """Build a distribution from a number, dict spec, or distribution."""
        if isinstance(spec, Distribution):
            return spec
        if isinstance(spec, bool):
            raise ConfigError(f"boolean is not a valid distribution spec: {spec!r}")
        if isinstance(spec, (int, float)):
            return Constant(float(spec))
        if not isinstance(spec, Mapping):
            raise ConfigError(f"cannot build a distribution from {spec!r}")
        spec = dict(spec)
        kind = spec.pop("dist", None)
        if kind is None:
            raise ConfigError(f"distribution spec missing 'dist' key: {spec!r}")
        try:
            cls = _REGISTRY[kind]
        except KeyError:
            raise ConfigError(
                f"unknown distribution {kind!r}; known: {sorted(_REGISTRY)}"
            ) from None
        try:
            return cls(**spec)
        except TypeError as exc:
            raise ConfigError(f"bad parameters for {kind!r} distribution: {exc}") from exc

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in self.to_spec().items() if k != "dist"
        )
        return f"{type(self).__name__}({params})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.to_spec() == other.to_spec()

    def __hash__(self) -> int:
        return hash(tuple(sorted(self.to_spec().items(), key=lambda kv: kv[0])))


class Constant(Distribution):
    """A degenerate distribution: always the same value."""

    kind = "constant"

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def minimum(self) -> float:
        return self.value

    def to_spec(self) -> dict[str, Any]:
        return {"dist": "constant", "value": self.value}


class Discrete(Distribution):
    """A discrete PDF over explicit values with optional weights."""

    kind = "discrete"

    def __init__(
        self, values: Sequence[float], weights: Optional[Sequence[float]] = None
    ) -> None:
        if not values:
            raise ConfigError("discrete distribution needs at least one value")
        self.values = [float(v) for v in values]
        if weights is None:
            weights = [1.0] * len(self.values)
        if len(weights) != len(self.values):
            raise ConfigError(
                f"weights length {len(weights)} != values length {len(self.values)}"
            )
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise ConfigError("discrete weights must be non-negative with positive sum")
        self.weights = [float(w) / total for w in weights]

    def sample(self, rng: np.random.Generator) -> float:
        idx = rng.choice(len(self.values), p=self.weights)
        return self.values[int(idx)]

    def mean(self) -> float:
        return float(sum(v * w for v, w in zip(self.values, self.weights)))

    def minimum(self) -> float:
        return min(self.values)

    def to_spec(self) -> dict[str, Any]:
        return {"dist": "discrete", "values": self.values, "weights": self.weights}


class Uniform(Distribution):
    """Continuous uniform on ``[low, high]``."""

    kind = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if high < low:
            raise ConfigError(f"uniform needs low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def minimum(self) -> float:
        return self.low

    def to_spec(self) -> dict[str, Any]:
        return {"dist": "uniform", "low": self.low, "high": self.high}


class Normal(Distribution):
    """Gaussian, optionally truncated below at ``min`` (by clipping).

    Clipping (rather than rejection) keeps sampling O(1); for the small
    ``std/mean`` ratios used to emulate iteration jitter the induced bias is
    negligible, and the paper itself does not try to match distributions
    closely (§4.1.1).
    """

    kind = "normal"

    def __init__(self, mean: float, std: float, min: Optional[float] = None) -> None:
        if std < 0:
            raise ConfigError(f"normal std must be >= 0, got {std}")
        self._mean = float(mean)
        self.std = float(std)
        self.min = None if min is None else float(min)

    def sample(self, rng: np.random.Generator) -> float:
        x = float(rng.normal(self._mean, self.std))
        if self.min is not None:
            x = max(x, self.min)
        return x

    def mean(self) -> float:
        return self._mean

    def minimum(self) -> float:
        if self.std == 0.0:
            return self._mean
        return float("-inf") if self.min is None else self.min

    def to_spec(self) -> dict[str, Any]:
        spec: dict[str, Any] = {"dist": "normal", "mean": self._mean, "std": self.std}
        if self.min is not None:
            spec["min"] = self.min
        return spec


class LogNormal(Distribution):
    """Log-normal parameterised by its *arithmetic* mean and log-space sigma.

    This matches how one calibrates from measured mean iteration times: the
    underlying mu is solved so that ``E[X] = mean``.
    """

    kind = "lognormal"

    def __init__(self, mean: float, sigma: float) -> None:
        if mean <= 0:
            raise ConfigError(f"lognormal mean must be > 0, got {mean}")
        if sigma < 0:
            raise ConfigError(f"lognormal sigma must be >= 0, got {sigma}")
        self._mean = float(mean)
        self.sigma = float(sigma)
        self._mu = math.log(self._mean) - 0.5 * self.sigma**2

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self._mu, self.sigma))

    def mean(self) -> float:
        return self._mean

    def minimum(self) -> float:
        return self._mean if self.sigma == 0.0 else 0.0

    def to_spec(self) -> dict[str, Any]:
        return {"dist": "lognormal", "mean": self._mean, "sigma": self.sigma}


class Exponential(Distribution):
    """Shifted exponential: ``shift + Exp(scale)``."""

    kind = "exponential"

    def __init__(self, scale: float, shift: float = 0.0) -> None:
        if scale <= 0:
            raise ConfigError(f"exponential scale must be > 0, got {scale}")
        self.scale = float(scale)
        self.shift = float(shift)

    def sample(self, rng: np.random.Generator) -> float:
        return self.shift + float(rng.exponential(self.scale))

    def mean(self) -> float:
        return self.shift + self.scale

    def minimum(self) -> float:
        return self.shift

    def to_spec(self) -> dict[str, Any]:
        return {"dist": "exponential", "scale": self.scale, "shift": self.shift}


_REGISTRY: dict[str, type[Distribution]] = {
    cls.kind: cls
    for cls in (Constant, Discrete, Uniform, Normal, LogNormal, Exponential)
}
