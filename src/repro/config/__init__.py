"""Configuration schema, loaders, and stochastic parameter distributions."""

from repro.config.distributions import (
    Constant,
    Discrete,
    Distribution,
    Exponential,
    LogNormal,
    Normal,
    Uniform,
)
from repro.config.loader import (
    load_ai_config,
    load_config,
    load_server_config,
    load_simulation_config,
    save_config,
)
from repro.config.schema import AIConfig, KernelConfig, ServerConfig, SimulationConfig

__all__ = [
    "AIConfig",
    "Constant",
    "Discrete",
    "Distribution",
    "Exponential",
    "KernelConfig",
    "LogNormal",
    "Normal",
    "ServerConfig",
    "SimulationConfig",
    "Uniform",
    "load_ai_config",
    "load_config",
    "load_server_config",
    "load_simulation_config",
    "save_config",
]
