"""Loading and saving mini-app configurations from JSON files or dicts.

The paper's Simulation class accepts "a Python dictionary or JSON file";
:func:`load_config` accepts either, plus a path-like pointing at a ``.json``
file on disk.
"""

from __future__ import annotations

import json
import os
from typing import Any, Mapping, Type, TypeVar, Union

from repro.config.schema import AIConfig, ServerConfig, SimulationConfig
from repro.errors import ConfigError

C = TypeVar("C", SimulationConfig, AIConfig, ServerConfig)

ConfigLike = Union[Mapping[str, Any], str, os.PathLike]


def _read_json(path: Union[str, os.PathLike]) -> dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            raw = json.load(handle)
    except FileNotFoundError:
        raise ConfigError(f"config file not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ConfigError(f"config file {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict):
        raise ConfigError(f"config file {path} must contain a JSON object")
    return raw


def _as_dict(source: ConfigLike, what: str) -> Mapping[str, Any]:
    if isinstance(source, Mapping):
        return source
    if isinstance(source, (str, os.PathLike)):
        return _read_json(source)
    raise ConfigError(f"cannot load a {what} from {type(source).__name__}")


def load_config(source: ConfigLike, cls: Type[C]) -> C:
    """Load a typed config from a dict, JSON string path, or PathLike."""
    return cls.from_dict(_as_dict(source, cls.__name__))


def load_simulation_config(source: ConfigLike) -> SimulationConfig:
    """Load a :class:`SimulationConfig` (the paper's Listing 2 format)."""
    return load_config(source, SimulationConfig)


def load_ai_config(source: ConfigLike) -> AIConfig:
    """Load an :class:`AIConfig`."""
    return load_config(source, AIConfig)


def load_server_config(source: ConfigLike) -> ServerConfig:
    """Load a :class:`ServerConfig`."""
    return load_config(source, ServerConfig)


def save_config(config: Any, path: Union[str, os.PathLike]) -> None:
    """Write any config object exposing ``to_dict`` to a JSON file."""
    if not hasattr(config, "to_dict"):
        raise ConfigError(f"{type(config).__name__} has no to_dict(); cannot save")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(config.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
