"""Typed configuration schema for SimAI-Bench mini-apps.

Configurations mirror the paper's JSON format (Listing 2)::

    {
      "kernels": [
        {
          "name": "nekrs_iter",
          "run_time": 0.03147,
          "data_size": [256, 256],
          "mini_app_kernel": "MatMulSimple2D",
          "device": "xpu"
        }
      ]
    }

``run_time`` and ``run_count`` accept either a number or a distribution
spec (see :mod:`repro.config.distributions`), enabling the stochastic
emulation of variable-performance workloads described in §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from repro.config.distributions import Distribution
from repro.errors import ConfigError

VALID_DEVICES = ("cpu", "xpu")


def _require(mapping: Mapping[str, Any], key: str, context: str) -> Any:
    try:
        return mapping[key]
    except KeyError:
        raise ConfigError(f"{context}: missing required key {key!r}") from None


def _check_unknown(mapping: Mapping[str, Any], allowed: set[str], context: str) -> None:
    unknown = set(mapping) - allowed
    if unknown:
        raise ConfigError(f"{context}: unknown keys {sorted(unknown)}")


@dataclass
class KernelConfig:
    """One kernel invocation inside a Simulation component.

    Exactly how long the kernel runs is controlled by ``run_time`` (seconds
    per iteration, possibly stochastic) and/or ``run_count`` (number of
    inner repetitions). When ``run_time`` is given, real-mode execution
    repeats the kernel until the wall-clock budget is met and sim-mode
    execution charges the sampled time directly.
    """

    mini_app_kernel: str
    name: str = ""
    device: str = "cpu"
    data_size: tuple[int, ...] = (256, 256)
    run_time: Optional[Distribution] = None
    run_count: Optional[Distribution] = None
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.mini_app_kernel
        if self.device not in VALID_DEVICES:
            raise ConfigError(
                f"kernel {self.name!r}: device must be one of {VALID_DEVICES}, "
                f"got {self.device!r}"
            )
        self.data_size = tuple(int(d) for d in self.data_size)
        if any(d <= 0 for d in self.data_size):
            raise ConfigError(
                f"kernel {self.name!r}: data_size entries must be positive, "
                f"got {self.data_size}"
            )
        if self.run_time is None and self.run_count is None:
            self.run_count = Distribution.from_spec(1)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "KernelConfig":
        context = f"kernel config {raw.get('name', raw.get('mini_app_kernel', '?'))!r}"
        _check_unknown(
            raw,
            {"name", "mini_app_kernel", "device", "data_size", "run_time", "run_count", "params"},
            context,
        )
        kernel = _require(raw, "mini_app_kernel", context)
        kwargs: dict[str, Any] = {"mini_app_kernel": str(kernel)}
        if "name" in raw:
            kwargs["name"] = str(raw["name"])
        if "device" in raw:
            kwargs["device"] = str(raw["device"])
        if "data_size" in raw:
            size = raw["data_size"]
            if isinstance(size, (int, float)):
                size = [int(size)]
            kwargs["data_size"] = tuple(size)
        for key in ("run_time", "run_count"):
            if key in raw and raw[key] is not None:
                kwargs[key] = Distribution.from_spec(raw[key])
        if "params" in raw:
            params = raw["params"]
            if not isinstance(params, Mapping):
                raise ConfigError(f"{context}: params must be a mapping")
            kwargs["params"] = dict(params)
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "mini_app_kernel": self.mini_app_kernel,
            "device": self.device,
            "data_size": list(self.data_size),
        }
        if self.run_time is not None:
            out["run_time"] = self.run_time.to_spec()
        if self.run_count is not None:
            out["run_count"] = self.run_count.to_spec()
        if self.params:
            out["params"] = dict(self.params)
        return out


@dataclass
class SimulationConfig:
    """Configuration of a Simulation component: an ordered kernel sequence."""

    kernels: list[KernelConfig] = field(default_factory=list)
    iterations: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.iterations < 0:
            raise ConfigError(f"iterations must be >= 0, got {self.iterations}")

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "SimulationConfig":
        _check_unknown(raw, {"kernels", "iterations", "seed"}, "simulation config")
        kernels_raw = raw.get("kernels", [])
        if not isinstance(kernels_raw, Sequence) or isinstance(kernels_raw, (str, bytes)):
            raise ConfigError("simulation config: 'kernels' must be a list")
        kernels = [KernelConfig.from_dict(k) for k in kernels_raw]
        return cls(
            kernels=kernels,
            iterations=int(raw.get("iterations", 1)),
            seed=int(raw.get("seed", 0)),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "kernels": [k.to_dict() for k in self.kernels],
            "iterations": self.iterations,
            "seed": self.seed,
        }


@dataclass
class AIConfig:
    """Configuration of an AI component (feed-forward network + schedule).

    Mirrors the Simulation execution control: training runs for
    ``iterations`` steps or, when ``run_time`` is set, each step is padded /
    modeled to take the sampled duration (how the paper matches the GNN's
    0.061 s/iter with a lightweight MLP).
    """

    input_dim: int = 64
    hidden_dims: tuple[int, ...] = (128, 128)
    output_dim: int = 64
    batch_size: int = 32
    learning_rate: float = 1e-3
    iterations: int = 1
    run_time: Optional[Distribution] = None
    device: str = "cpu"
    seed: int = 0
    #: "mlp" (the paper's initial focus) or "gnn" (its future-work
    #: architecture, trained on whole-mesh snapshots of ``mesh_shape``).
    architecture: str = "mlp"
    mesh_shape: tuple[int, int] = (8, 8)

    VALID_ARCHITECTURES = ("mlp", "gnn")

    def __post_init__(self) -> None:
        for label, dim in (("input_dim", self.input_dim), ("output_dim", self.output_dim)):
            if dim <= 0:
                raise ConfigError(f"AI config: {label} must be positive, got {dim}")
        self.hidden_dims = tuple(int(h) for h in self.hidden_dims)
        if any(h <= 0 for h in self.hidden_dims):
            raise ConfigError(f"AI config: hidden_dims must be positive, got {self.hidden_dims}")
        if self.batch_size <= 0:
            raise ConfigError(f"AI config: batch_size must be positive, got {self.batch_size}")
        if self.learning_rate <= 0:
            raise ConfigError(
                f"AI config: learning_rate must be positive, got {self.learning_rate}"
            )
        if self.iterations < 0:
            raise ConfigError(f"AI config: iterations must be >= 0, got {self.iterations}")
        if self.device not in VALID_DEVICES:
            raise ConfigError(
                f"AI config: device must be one of {VALID_DEVICES}, got {self.device!r}"
            )
        if self.architecture not in self.VALID_ARCHITECTURES:
            raise ConfigError(
                f"AI config: architecture must be one of {self.VALID_ARCHITECTURES}, "
                f"got {self.architecture!r}"
            )
        self.mesh_shape = tuple(int(m) for m in self.mesh_shape)
        if len(self.mesh_shape) != 2 or any(m <= 0 for m in self.mesh_shape):
            raise ConfigError(
                f"AI config: mesh_shape must be two positive ints, got {self.mesh_shape}"
            )

    @property
    def n_mesh_nodes(self) -> int:
        return self.mesh_shape[0] * self.mesh_shape[1]

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "AIConfig":
        allowed = {
            "input_dim", "hidden_dims", "output_dim", "batch_size",
            "learning_rate", "iterations", "run_time", "device", "seed",
            "architecture", "mesh_shape",
        }
        _check_unknown(raw, allowed, "AI config")
        kwargs: dict[str, Any] = {}
        for key in allowed:
            if key in raw and raw[key] is not None:
                kwargs[key] = raw[key]
        if "hidden_dims" in kwargs:
            kwargs["hidden_dims"] = tuple(kwargs["hidden_dims"])
        if "mesh_shape" in kwargs:
            kwargs["mesh_shape"] = tuple(kwargs["mesh_shape"])
        if "run_time" in kwargs:
            kwargs["run_time"] = Distribution.from_spec(kwargs["run_time"])
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "input_dim": self.input_dim,
            "hidden_dims": list(self.hidden_dims),
            "output_dim": self.output_dim,
            "batch_size": self.batch_size,
            "learning_rate": self.learning_rate,
            "iterations": self.iterations,
            "device": self.device,
            "seed": self.seed,
            "architecture": self.architecture,
            "mesh_shape": list(self.mesh_shape),
        }
        if self.run_time is not None:
            out["run_time"] = self.run_time.to_spec()
        return out


@dataclass
class ServerConfig:
    """Configuration for a data-transport server deployment.

    ``backend`` selects one of the four transport strategies from the paper:
    ``"node-local"``, ``"filesystem"``, ``"redis"``, or ``"dragon"``.
    """

    backend: str = "node-local"
    path: str = ""
    n_shards: int = 1
    host: str = "127.0.0.1"
    port: int = 0
    cluster_nodes: tuple[str, ...] = ()
    stripe_size_mb: float = 1.0
    stripe_count: int = 1
    options: dict[str, Any] = field(default_factory=dict)
    #: Optional client-side knobs forwarded verbatim through server_info:
    #: ``chaos`` (fault-injection probabilities) and ``resilience``
    #: (retry/backoff/breaker policy) — see repro.transport.resilience.
    chaos: dict[str, Any] = field(default_factory=dict)
    resilience: dict[str, Any] = field(default_factory=dict)

    VALID_BACKENDS = ("node-local", "filesystem", "redis", "dragon")

    def __post_init__(self) -> None:
        if self.backend not in self.VALID_BACKENDS:
            raise ConfigError(
                f"server config: backend must be one of {self.VALID_BACKENDS}, "
                f"got {self.backend!r}"
            )
        if self.n_shards <= 0:
            raise ConfigError(f"server config: n_shards must be positive, got {self.n_shards}")
        if self.stripe_size_mb <= 0 or self.stripe_count <= 0:
            raise ConfigError("server config: stripe settings must be positive")
        self.cluster_nodes = tuple(self.cluster_nodes)

    @classmethod
    def from_dict(cls, raw: Mapping[str, Any]) -> "ServerConfig":
        allowed = {
            "backend", "path", "n_shards", "host", "port", "cluster_nodes",
            "stripe_size_mb", "stripe_count", "options", "chaos", "resilience",
        }
        _check_unknown(raw, allowed, "server config")
        kwargs = {k: raw[k] for k in allowed if k in raw}
        if "cluster_nodes" in kwargs:
            kwargs["cluster_nodes"] = tuple(kwargs["cluster_nodes"])
        for key in ("options", "chaos", "resilience"):
            if key in kwargs:
                kwargs[key] = dict(kwargs[key])
        return cls(**kwargs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "path": self.path,
            "n_shards": self.n_shards,
            "host": self.host,
            "port": self.port,
            "cluster_nodes": list(self.cluster_nodes),
            "stripe_size_mb": self.stripe_size_mb,
            "stripe_count": self.stripe_count,
            "options": dict(self.options),
            **({"chaos": dict(self.chaos)} if self.chaos else {}),
            **({"resilience": dict(self.resilience)} if self.resilience else {}),
        }
