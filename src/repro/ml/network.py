"""Feed-forward network builder + a convenience training step.

The paper's AI class "supports distributed data-parallel training with DDP
from torch.distributed, with an initial focus on a feed-forward, fully-
connected neural network models" (§3.4). :func:`build_mlp` constructs that
model family from an :class:`~repro.config.AIConfig`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.config.schema import AIConfig
from repro.errors import MLError
from repro.ml.layers import ACTIVATIONS, Linear, Module, Sequential
from repro.ml.loss import Loss, MSELoss


def build_mlp(
    config: AIConfig,
    rng: Optional[np.random.Generator] = None,
    activation: str = "relu",
) -> Sequential:
    """Build the fully-connected network an AIConfig describes."""
    try:
        act_cls = ACTIVATIONS[activation]
    except KeyError:
        raise MLError(
            f"unknown activation {activation!r}; options {sorted(ACTIVATIONS)}"
        ) from None
    rng = rng or np.random.default_rng(config.seed)
    dims = [config.input_dim, *config.hidden_dims, config.output_dim]
    modules: list[Module] = []
    for i, (d_in, d_out) in enumerate(zip(dims, dims[1:])):
        modules.append(Linear(d_in, d_out, rng=rng))
        if i < len(dims) - 2:
            modules.append(act_cls())
    return Sequential(*modules)


def train_step(
    model: Sequential,
    optimizer,
    x: np.ndarray,
    y: np.ndarray,
    loss_fn: Optional[Loss] = None,
) -> float:
    """One SGD step: forward, loss, backward, update. Returns the loss."""
    loss_fn = loss_fn or MSELoss()
    optimizer.zero_grad()
    pred = model(x)
    value, grad = loss_fn(pred, y)
    model.backward(grad)
    optimizer.step()
    return value


def evaluate(model: Sequential, x: np.ndarray, y: np.ndarray, loss_fn: Optional[Loss] = None) -> float:
    """Loss on a batch without updating parameters."""
    loss_fn = loss_fn or MSELoss()
    model.eval()
    try:
        value, _ = loss_fn(model(x), y)
    finally:
        model.train()
    return value
