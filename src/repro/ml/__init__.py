"""A from-scratch neural-network library (the PyTorch stand-in).

Provides exactly what the paper's AI component needs: feed-forward
fully-connected models, MSE/cross-entropy losses, SGD/Adam, and a DDP
wrapper doing gradient allreduce over :mod:`repro.mpi`.
"""

from repro.ml.data import DataLoader, ReplayDataset, synthetic_snapshot
from repro.ml.ddp import DistributedDataParallel, shard_batch
from repro.ml.graph import (
    GraphConv,
    HaloExchangeModel,
    build_gnn,
    mesh_graph,
    normalized_adjacency,
)
from repro.ml.layers import (
    ACTIVATIONS,
    GELU,
    Linear,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.ml.loss import CrossEntropyLoss, Loss, MSELoss
from repro.ml.network import build_mlp, evaluate, train_step
from repro.ml.optim import Adam, Optimizer, SGD

__all__ = [
    "ACTIVATIONS",
    "Adam",
    "CrossEntropyLoss",
    "DataLoader",
    "DistributedDataParallel",
    "GELU",
    "GraphConv",
    "HaloExchangeModel",
    "Linear",
    "Loss",
    "MSELoss",
    "Module",
    "Optimizer",
    "ReLU",
    "ReplayDataset",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "build_gnn",
    "build_mlp",
    "evaluate",
    "mesh_graph",
    "normalized_adjacency",
    "shard_batch",
    "synthetic_snapshot",
    "train_step",
]
