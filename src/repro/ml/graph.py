"""Graph neural networks (the paper's future-work AI architecture).

The paper's Pattern-1 science case couples nekRS with a *graph* neural
network over the CFD mesh (Barwey et al.), but SimAI-Bench's AI class
initially supports only feed-forward models; GNNs are named future work
(§3.4, §5). This module adds them:

* :class:`GraphConv` — a GCN layer ``X' = act(Â X W)`` over a fixed
  normalized adjacency ``Â = D^{-1/2}(A + I)D^{-1/2}``, with full
  backprop through the aggregation;
* :func:`build_gnn` — stacks GraphConv layers into a node-regression
  model (the surrogate's flow-field forecasting shape);
* :func:`mesh_graph` — structured 2-D mesh adjacency, the topology a
  spectral-element CFD surrogate trains over;
* :class:`HaloExchangeModel` — the communication cost a *distributed*
  mesh GNN adds per training step (each partition exchanges its halo
  nodes every layer), so sim-mode AI components can model GNN
  communication the way the paper's DDP allreduce is modeled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.layers import ACTIVATIONS, Module, Sequential


def normalized_adjacency(adjacency: np.ndarray) -> np.ndarray:
    """Symmetric GCN normalization with self-loops."""
    a = np.asarray(adjacency, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise MLError(f"adjacency must be square, got {a.shape}")
    if not np.allclose(a, a.T):
        raise MLError("adjacency must be symmetric")
    a_hat = a + np.eye(a.shape[0])
    degree = a_hat.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(degree)
    return a_hat * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]


def mesh_graph(nx_cells: int, ny_cells: int) -> np.ndarray:
    """Adjacency of an ``nx x ny`` structured mesh (4-neighbour stencil)."""
    if nx_cells <= 0 or ny_cells <= 0:
        raise MLError("mesh dimensions must be positive")
    n = nx_cells * ny_cells
    a = np.zeros((n, n))

    def node(i: int, j: int) -> int:
        return i * ny_cells + j

    for i in range(nx_cells):
        for j in range(ny_cells):
            if i + 1 < nx_cells:
                a[node(i, j), node(i + 1, j)] = a[node(i + 1, j), node(i, j)] = 1.0
            if j + 1 < ny_cells:
                a[node(i, j), node(i, j + 1)] = a[node(i, j + 1), node(i, j)] = 1.0
    return a


class GraphConv(Module):
    """GCN layer: ``X' = Â X W + b`` over a fixed graph.

    Input/output are ``(n_nodes, features)``; the layer is built for one
    graph (the mesh is fixed across a simulation campaign).
    """

    def __init__(
        self,
        adjacency_norm: np.ndarray,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise MLError("GraphConv needs positive feature dims")
        self.a_hat = np.asarray(adjacency_norm, dtype=np.float64)
        if self.a_hat.ndim != 2 or self.a_hat.shape[0] != self.a_hat.shape[1]:
            raise MLError("normalized adjacency must be square")
        rng = rng or np.random.default_rng(0)
        scale = math.sqrt(2.0 / in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.params["W"] = rng.normal(0.0, scale, size=(in_features, out_features))
        self.has_bias = bias
        if bias:
            self.params["b"] = np.zeros(out_features)
        self.zero_grad()
        self._ax: Optional[np.ndarray] = None

    @property
    def n_nodes(self) -> int:
        return self.a_hat.shape[0]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape != (self.n_nodes, self.in_features):
            raise MLError(
                f"GraphConv expects ({self.n_nodes}, {self.in_features}), got {x.shape}"
            )
        self._ax = self.a_hat @ x  # aggregate, cache for backward
        y = self._ax @ self.params["W"]
        if self.has_bias:
            y = y + self.params["b"]
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._ax is None:
            raise MLError("backward called before forward")
        self.grads["W"] += self._ax.T @ grad_out
        if self.has_bias:
            self.grads["b"] += grad_out.sum(axis=0)
        # d/dX of (ÂXW): Â^T (grad W^T); Â is symmetric.
        return self.a_hat.T @ (grad_out @ self.params["W"].T)


def build_gnn(
    adjacency: np.ndarray,
    in_features: int,
    hidden_features: tuple[int, ...],
    out_features: int,
    rng: Optional[np.random.Generator] = None,
    activation: str = "relu",
) -> Sequential:
    """Stack GraphConv layers (activations between) over one graph."""
    try:
        act_cls = ACTIVATIONS[activation]
    except KeyError:
        raise MLError(
            f"unknown activation {activation!r}; options {sorted(ACTIVATIONS)}"
        ) from None
    rng = rng or np.random.default_rng(0)
    a_hat = normalized_adjacency(adjacency)
    dims = [in_features, *hidden_features, out_features]
    modules: list[Module] = []
    for i, (d_in, d_out) in enumerate(zip(dims, dims[1:])):
        modules.append(GraphConv(a_hat, d_in, d_out, rng=rng))
        if i < len(dims) - 2:
            modules.append(act_cls())
    return Sequential(*modules)


@dataclass(frozen=True)
class HaloExchangeModel:
    """Per-training-step communication of a distributed mesh GNN.

    A mesh partitioned over ``p`` ranks exchanges its halo (boundary)
    nodes with neighbours once per GraphConv layer, forward and backward.
    For a 2-D partition of an ``n``-node mesh, the halo is O(sqrt(n/p))
    nodes per neighbour edge.
    """

    alpha: float = 5e-6  # per-message latency, s
    beta: float = 1.0 / 20e9  # per-byte, s
    neighbours: int = 4  # 2-D partitioning
    bytes_per_feature: int = 8

    def halo_nodes(self, n_nodes: int, n_ranks: int) -> int:
        if n_nodes <= 0 or n_ranks <= 0:
            raise MLError("n_nodes and n_ranks must be positive")
        side = math.sqrt(n_nodes / n_ranks)
        return max(1, int(math.ceil(side)))

    def step_time(
        self, n_nodes: int, n_ranks: int, features: int, n_layers: int
    ) -> float:
        """Communication seconds per training step (fwd + bwd exchanges)."""
        if n_ranks <= 1:
            return 0.0
        halo_bytes = (
            self.halo_nodes(n_nodes, n_ranks) * features * self.bytes_per_feature
        )
        per_exchange = self.neighbours * (self.alpha + halo_bytes * self.beta)
        return 2.0 * n_layers * per_exchange
