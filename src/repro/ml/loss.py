"""Loss functions with analytic gradients."""

from __future__ import annotations

import numpy as np

from repro.errors import MLError


class Loss:
    """Interface: ``value, grad = loss(pred, target)``."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error over all elements."""

    def __call__(self, pred: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if pred.shape != target.shape:
            raise MLError(f"MSE shape mismatch: {pred.shape} vs {target.shape}")
        diff = pred - target
        value = float(np.mean(diff**2))
        grad = 2.0 * diff / diff.size
        return value, grad


class CrossEntropyLoss(Loss):
    """Softmax cross-entropy over logits with integer class targets."""

    def __call__(self, logits: np.ndarray, target: np.ndarray) -> tuple[float, np.ndarray]:
        logits = np.asarray(logits, dtype=np.float64)
        target = np.asarray(target)
        if logits.ndim != 2:
            raise MLError(f"cross-entropy expects (batch, classes), got {logits.shape}")
        batch, classes = logits.shape
        if target.shape != (batch,):
            raise MLError(f"targets must be ({batch},), got {target.shape}")
        if target.dtype.kind not in "iu":
            raise MLError("cross-entropy targets must be integer class indices")
        if np.any(target < 0) or np.any(target >= classes):
            raise MLError(f"target class out of range [0, {classes})")

        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        value = float(-np.mean(np.log(probs[np.arange(batch), target] + 1e-300)))
        grad = probs.copy()
        grad[np.arange(batch), target] -= 1.0
        grad /= batch
        return value, grad
