"""Optimizers: SGD (with momentum) and Adam.

Optimizers operate on a :class:`~repro.ml.layers.Sequential` model via its
``all_grads``/``get_param``/``set_param`` interface, so they work with any
parameter layout.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.layers import Sequential


class Optimizer:
    def __init__(self, model: Sequential, lr: float) -> None:
        if lr <= 0:
            raise MLError(f"learning rate must be positive, got {lr}")
        self.model = model
        self.lr = lr
        self.steps = 0

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        self.model.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent, optional momentum and weight decay."""

    def __init__(
        self,
        model: Sequential,
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(model, lr)
        if not 0.0 <= momentum < 1.0:
            raise MLError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        self.steps += 1
        for name, grad in self.model.all_grads():
            param = self.model.get_param(name)
            g = grad
            if self.weight_decay:
                g = g + self.weight_decay * param
            if self.momentum:
                v = self._velocity.get(name)
                if v is None:
                    v = np.zeros_like(param)
                v = self.momentum * v + g
                self._velocity[name] = v
                g = v
            self.model.set_param(name, param - self.lr * g)


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(
        self,
        model: Sequential,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(model, lr)
        b1, b2 = betas
        if not (0 <= b1 < 1 and 0 <= b2 < 1):
            raise MLError(f"betas must be in [0, 1), got {betas}")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}

    def step(self) -> None:
        self.steps += 1
        t = self.steps
        for name, grad in self.model.all_grads():
            param = self.model.get_param(name)
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.b1 * m + (1 - self.b1) * grad
            v = self.b2 * v + (1 - self.b2) * grad**2
            self._m[name], self._v[name] = m, v
            m_hat = m / (1 - self.b1**t)
            v_hat = v / (1 - self.b2**t)
            self.model.set_param(name, param - self.lr * m_hat / (np.sqrt(v_hat) + self.eps))
