"""Data pipelines for online training.

:class:`ReplayDataset` is the in-memory pool a coupled AI component trains
from: the simulation keeps staging new snapshots, the trainer keeps
mixing them in (the paper's "update its data loader" step, §4.1), and
batches are sampled uniformly from the current pool.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Optional

import numpy as np

from repro.errors import MLError


class ReplayDataset:
    """A bounded pool of (x, y) samples supporting online refresh."""

    def __init__(self, capacity: int = 100_000, rng: Optional[np.random.Generator] = None) -> None:
        if capacity <= 0:
            raise MLError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rng = rng or np.random.default_rng(0)
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None
        self.updates = 0

    def __len__(self) -> int:
        return 0 if self._x is None else self._x.shape[0]

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        """Mix new samples into the pool, evicting the oldest past capacity."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        y = np.atleast_2d(np.asarray(y, dtype=np.float64))
        if x.shape[0] != y.shape[0]:
            raise MLError(f"x/y row mismatch: {x.shape[0]} vs {y.shape[0]}")
        if self._x is None:
            self._x, self._y = x.copy(), y.copy()
        else:
            if x.shape[1] != self._x.shape[1] or y.shape[1] != self._y.shape[1]:
                raise MLError(
                    f"feature mismatch: pool ({self._x.shape[1]},{self._y.shape[1]}) "
                    f"vs new ({x.shape[1]},{y.shape[1]})"
                )
            self._x = np.concatenate([self._x, x])
            self._y = np.concatenate([self._y, y])
        if self._x.shape[0] > self.capacity:
            self._x = self._x[-self.capacity :]
            self._y = self._y[-self.capacity :]
        self.updates += 1

    def sample(self, batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Uniformly sample a batch (with replacement when pool is small)."""
        if len(self) == 0:
            raise MLError("cannot sample from an empty dataset")
        if batch_size <= 0:
            raise MLError(f"batch_size must be positive, got {batch_size}")
        replace = batch_size > len(self)
        idx = self.rng.choice(len(self), size=batch_size, replace=replace)
        return self._x[idx], self._y[idx]


class SnapshotDataset:
    """A bounded pool of whole (x, y) snapshots for mesh-structured models.

    GNN surrogates train on complete mesh snapshots (node ordering is the
    graph structure), so rows cannot be shuffled across snapshots the way
    :class:`ReplayDataset` does. Snapshots are kept intact; sampling
    returns one uniformly at random.
    """

    def __init__(self, capacity: int = 256, rng: Optional[np.random.Generator] = None) -> None:
        if capacity <= 0:
            raise MLError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.rng = rng or np.random.default_rng(0)
        # maxlen makes eviction O(1): appending past capacity drops the
        # oldest snapshot, where list.pop(0) shifted the whole pool.
        self._snapshots: deque[tuple[np.ndarray, np.ndarray]] = deque(maxlen=capacity)
        self.updates = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def add(self, x: np.ndarray, y: np.ndarray) -> None:
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.ndim != 2 or y.ndim != 2 or x.shape[0] != y.shape[0]:
            raise MLError(
                f"snapshots must be 2-D with matching node counts, got "
                f"{x.shape} / {y.shape}"
            )
        if self._snapshots:
            x0, y0 = self._snapshots[0]
            if x.shape != x0.shape or y.shape != y0.shape:
                raise MLError(
                    f"snapshot shape mismatch: pool {x0.shape}/{y0.shape} vs "
                    f"new {x.shape}/{y.shape}"
                )
        self._snapshots.append((x.copy(), y.copy()))
        self.updates += 1

    def sample(self) -> tuple[np.ndarray, np.ndarray]:
        """One uniformly chosen snapshot."""
        if not self._snapshots:
            raise MLError("cannot sample from an empty snapshot pool")
        idx = int(self.rng.integers(0, len(self._snapshots)))
        return self._snapshots[idx]


class DataLoader:
    """Iterates batches from a :class:`ReplayDataset` forever."""

    def __init__(self, dataset: ReplayDataset, batch_size: int) -> None:
        if batch_size <= 0:
            raise MLError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.dataset.sample(self.batch_size)


def synthetic_snapshot(
    n_samples: int,
    input_dim: int,
    output_dim: int,
    rng: np.random.Generator,
    noise: float = 0.05,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a (x, y) snapshot with a smooth learnable mapping.

    Used by the Simulation component to stage "flow field" training data:
    y is a fixed random linear map of sin(x) plus noise, so the AI
    component's loss actually decreases during online training.
    """
    if min(n_samples, input_dim, output_dim) <= 0:
        raise MLError("n_samples, input_dim, output_dim must be positive")
    x = rng.uniform(-1.0, 1.0, size=(n_samples, input_dim))
    # Derive the map from a fixed seed so all snapshots share one ground truth.
    map_rng = np.random.default_rng(12345)
    w = map_rng.normal(0.0, 1.0 / np.sqrt(input_dim), size=(input_dim, output_dim))
    y = np.sin(x) @ w + noise * rng.normal(size=(n_samples, output_dim))
    return x, y
