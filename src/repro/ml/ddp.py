"""Distributed data parallel (DDP) training.

Mirrors ``torch.nn.parallel.DistributedDataParallel`` semantics over our
MPI layer: every rank holds a model replica; after the local backward
pass, gradients are averaged across ranks with an allreduce, so replicas
take identical optimizer steps and stay bit-for-bit synchronized (given
identical initial parameters, which :meth:`DistributedDataParallel.
broadcast_parameters` establishes).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import MLError
from repro.ml.layers import Sequential
from repro.ml.loss import Loss, MSELoss
from repro.mpi.api import SUM, Communicator


class DistributedDataParallel:
    """Wraps a model replica with gradient-averaging collectives."""

    def __init__(self, model: Sequential, comm: Optional[Communicator] = None) -> None:
        self.model = model
        self.comm = comm
        if comm is not None and comm.size > 1:
            self.broadcast_parameters()

    @property
    def world_size(self) -> int:
        return 1 if self.comm is None else self.comm.size

    def broadcast_parameters(self, root: int = 0) -> None:
        """Copy rank ``root``'s parameters onto every replica."""
        if self.comm is None:
            return
        for name, _ in list(self.model.all_grads()):
            param = self.model.get_param(name)
            synced = self.comm.bcast(param, root=root)
            self.model.set_param(name, np.array(synced, copy=True))

    def allreduce_gradients(self) -> float:
        """Average gradients across ranks; returns bytes communicated."""
        if self.comm is None or self.comm.size == 1:
            return 0.0
        nbytes = 0.0
        for name, grad in list(self.model.all_grads()):
            total = self.comm.allreduce(grad, op=SUM)
            self.model.set_grad(name, np.asarray(total) / self.comm.size)
            nbytes += grad.nbytes
        return nbytes

    def gradient_nbytes(self) -> float:
        """Bytes of gradient data one allreduce moves (the DDP payload)."""
        return float(sum(g.nbytes for _, g in self.model.all_grads()))

    def train_step(
        self,
        optimizer,
        x: np.ndarray,
        y: np.ndarray,
        loss_fn: Optional[Loss] = None,
    ) -> float:
        """One synchronized step; returns the *global mean* loss."""
        loss_fn = loss_fn or MSELoss()
        optimizer.zero_grad()
        pred = self.model(x)
        value, grad = loss_fn(pred, y)
        self.model.backward(grad)
        self.allreduce_gradients()
        optimizer.step()
        if self.comm is not None and self.comm.size > 1:
            value = self.comm.allreduce(value, op=SUM) / self.comm.size
        return value

    def check_synchronized(self, atol: float = 0.0) -> bool:
        """True when all replicas hold identical parameters (collective)."""
        if self.comm is None or self.comm.size == 1:
            return True
        for name, _ in self.model.all_grads():
            param = self.model.get_param(name)
            reference = self.comm.bcast(param, root=0)
            if not np.allclose(param, reference, atol=atol, rtol=0.0):
                return False
        return True


def shard_batch(x: np.ndarray, y: np.ndarray, comm: Optional[Communicator]) -> tuple[np.ndarray, np.ndarray]:
    """Split a global batch into this rank's contiguous shard.

    Ranks receive near-equal shards; the batch must be at least world-size
    rows so no rank is left empty (that would desynchronize batch-norm-free
    DDP only silently, so we raise instead).
    """
    if comm is None or comm.size == 1:
        return x, y
    n = x.shape[0]
    if n < comm.size:
        raise MLError(f"global batch {n} smaller than world size {comm.size}")
    bounds = np.linspace(0, n, comm.size + 1, dtype=int)
    lo, hi = bounds[comm.rank], bounds[comm.rank + 1]
    return x[lo:hi], y[lo:hi]
