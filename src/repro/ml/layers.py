"""Neural-network layers with explicit forward/backward passes.

A minimal ``torch.nn`` stand-in sufficient for the paper's AI component
(feed-forward fully-connected networks, §3.4). Each :class:`Module` caches
what its backward pass needs during ``forward`` and accumulates parameter
gradients into ``.grads``.

Conventions: inputs are ``(batch, features)`` float64 arrays; ``backward``
takes dL/d(output) and returns dL/d(input).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from repro.errors import MLError


class Module:
    """Base class: parameters, gradients, forward/backward."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        for name in self.params:
            self.grads[name] = np.zeros_like(self.params[name])

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, value in self.params.items():
            yield (f"{prefix}{name}", value)

    def parameter_count(self) -> int:
        return sum(p.size for p in self.params.values())

    def train(self) -> None:
        self.training = True

    def eval(self) -> None:
        self.training = False


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Kaiming/He initialisation."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        bias: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise MLError(
                f"Linear needs positive dims, got {in_features}x{out_features}"
            )
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        scale = np.sqrt(2.0 / in_features)
        self.params["W"] = rng.normal(0.0, scale, size=(in_features, out_features))
        self.has_bias = bias
        if bias:
            self.params["b"] = np.zeros(out_features)
        self.zero_grad()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise MLError(
                f"Linear({self.in_features}->{self.out_features}) got input "
                f"shape {x.shape}"
            )
        self._x = x
        y = x @ self.params["W"]
        if self.has_bias:
            y = y + self.params["b"]
        return y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise MLError("backward called before forward")
        self.grads["W"] += self._x.T @ grad_out
        if self.has_bias:
            self.grads["b"] += grad_out.sum(axis=0)
        return grad_out @ self.params["W"].T


class _Activation(Module):
    """Stateless elementwise activation; caches input for backward."""

    def __init__(self) -> None:
        super().__init__()
        self._x: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = np.asarray(x, dtype=np.float64)
        return self._fn(self._x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise MLError("backward called before forward")
        return grad_out * self._dfn(self._x)

    def _fn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _dfn(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class ReLU(_Activation):
    def _fn(self, x):
        return np.maximum(x, 0.0)

    def _dfn(self, x):
        return (x > 0).astype(np.float64)


class Tanh(_Activation):
    def _fn(self, x):
        return np.tanh(x)

    def _dfn(self, x):
        return 1.0 - np.tanh(x) ** 2


class Sigmoid(_Activation):
    def _fn(self, x):
        return 1.0 / (1.0 + np.exp(-x))

    def _dfn(self, x):
        s = self._fn(x)
        return s * (1.0 - s)


class GELU(_Activation):
    """Gaussian error linear unit (tanh approximation)."""

    _C = np.sqrt(2.0 / np.pi)

    def _fn(self, x):
        return 0.5 * x * (1.0 + np.tanh(self._C * (x + 0.044715 * x**3)))

    def _dfn(self, x):
        inner = self._C * (x + 0.044715 * x**3)
        t = np.tanh(inner)
        dinner = self._C * (1.0 + 3 * 0.044715 * x**2)
        return 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * dinner


ACTIVATIONS: dict[str, type[_Activation]] = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "gelu": GELU,
}


class Sequential(Module):
    """A chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_out = module.backward(grad_out)
        return grad_out

    def zero_grad(self) -> None:
        for module in self.modules:
            module.zero_grad()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for i, module in enumerate(self.modules):
            yield from module.named_parameters(prefix=f"{prefix}{i}.")

    def parameter_count(self) -> int:
        return sum(m.parameter_count() for m in self.modules)

    def train(self) -> None:
        super().train()
        for m in self.modules:
            m.train()

    def eval(self) -> None:
        super().eval()
        for m in self.modules:
            m.eval()

    def all_grads(self) -> Iterator[tuple[str, np.ndarray]]:
        """(name, grad) pairs in deterministic order."""
        for i, module in enumerate(self.modules):
            for name in module.params:
                yield (f"{i}.{name}", module.grads[name])

    def set_grad(self, name: str, value: np.ndarray) -> None:
        idx, pname = name.split(".", 1)
        self.modules[int(idx)].grads[pname] = value

    def get_param(self, name: str) -> np.ndarray:
        idx, pname = name.split(".", 1)
        return self.modules[int(idx)].params[pname]

    def set_param(self, name: str, value: np.ndarray) -> None:
        idx, pname = name.split(".", 1)
        self.modules[int(idx)].params[pname] = value
