"""Collective-communication kernels from Table 1.

Both kernels run over the context's communicator (our mpi4py stand-in;
see :mod:`repro.mpi`). Without a communicator they degrade to size-1
semantics, so single-rank configurations stay runnable.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel, KernelResult, register_kernel
from repro.mpi.api import SUM


def _array_size(data_size: tuple[int, ...]) -> int:
    n = 1
    for d in data_size:
        n *= int(d)
    return n


@register_kernel
class AllReduce(Kernel):
    """Performs an all-reduce (sum) over the configured array."""

    name = "AllReduce"
    category = "collective"

    def setup(self) -> None:
        self.x = self.ctx.rng.random(_array_size(self.data_size))

    def run_once(self) -> KernelResult:
        comm = self.ctx.comm
        if comm is None or comm.size == 1:
            result = self.x
        else:
            result = comm.allreduce(self.x, op=SUM)
        p = 1 if comm is None else comm.size
        return KernelResult(
            bytes_processed=float(result.nbytes) * max(1, p - 1),
            flops=float(result.size) * max(0, p - 1),
        )


@register_kernel
class AllGather(Kernel):
    """Performs an all-gather of the configured array."""

    name = "AllGather"
    category = "collective"

    def setup(self) -> None:
        self.x = self.ctx.rng.random(_array_size(self.data_size))

    def run_once(self) -> KernelResult:
        comm = self.ctx.comm
        if comm is None or comm.size == 1:
            gathered = [self.x]
        else:
            gathered = comm.allgather(self.x)
        total = float(sum(np.asarray(g).nbytes for g in gathered))
        return KernelResult(bytes_processed=total, flops=0.0)
