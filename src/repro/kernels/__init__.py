"""Mini-app kernels (Table 1): compute, IO, collectives, copies.

Importing this package registers every built-in kernel. Add custom
kernels with :func:`register_kernel`::

    from repro.kernels import Kernel, KernelResult, register_kernel

    @register_kernel
    class MyStencil(Kernel):
        name = "MyStencil"
        category = "compute"
        def setup(self): ...
        def run_once(self): return KernelResult(...)
"""

from repro.kernels import collective, compute, copy, io  # noqa: F401 - registration
from repro.kernels.base import (
    Kernel,
    KernelContext,
    KernelExecutor,
    KernelResult,
    kernel_class,
    list_kernels,
    make_kernel,
    register_kernel,
)
from repro.kernels.device import Device, DeviceArray, TransferModel, device_from_name

__all__ = [
    "Device",
    "DeviceArray",
    "Kernel",
    "KernelContext",
    "KernelExecutor",
    "KernelResult",
    "TransferModel",
    "device_from_name",
    "kernel_class",
    "list_kernels",
    "make_kernel",
    "register_kernel",
]
