"""Kernel base class, registry, and execution control.

A kernel is a small, self-contained operation (Table 1 of the paper). The
registry makes the set extensible: third parties call
:func:`register_kernel` and reference their kernel by name in a
configuration, exactly like the built-ins.

Execution control implements the paper's §3.3 semantics:

* ``run_count`` — run the operation that many times per iteration;
* ``run_time`` — repeat the operation until the (sampled) wall-clock
  budget is spent, then sleep off the remainder so the iteration duration
  closely matches the requested value (this is why the mini-app's
  iteration-time std in Table 3 is tiny compared to the original's).

Both parameters may be stochastic (:mod:`repro.config.distributions`),
sampled fresh every iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Type

import numpy as np

from repro.config.schema import KernelConfig
from repro.errors import KernelError
from repro.kernels.device import Device, device_from_name
from repro.mpi.api import Communicator
from repro.telemetry.timer import Clock, RealClock


@dataclass
class KernelContext:
    """Everything a kernel may need at setup/run time."""

    device: Device = field(default_factory=Device)
    rng: np.random.Generator = field(default_factory=lambda: np.random.default_rng(0))
    comm: Optional[Communicator] = None
    workdir: Optional[Path] = None

    def require_workdir(self, kernel: str) -> Path:
        if self.workdir is None:
            raise KernelError(f"kernel {kernel!r} needs a workdir (IO kernel)")
        self.workdir.mkdir(parents=True, exist_ok=True)
        return self.workdir


@dataclass(frozen=True)
class KernelResult:
    """What one ``run_once`` call did (for roofline-style accounting)."""

    bytes_processed: float = 0.0
    flops: float = 0.0


class Kernel:
    """Base class for all mini-app kernels."""

    #: registry name; subclasses must set it
    name: str = ""
    #: Table 1 category: compute | io | collective | copy
    category: str = "compute"

    def __init__(self, config: KernelConfig, ctx: KernelContext) -> None:
        self.config = config
        self.ctx = ctx
        self.setup()

    # -- subclass interface -----------------------------------------------------
    def setup(self) -> None:
        """Allocate arrays / open files. Called once at construction."""

    def run_once(self) -> KernelResult:
        """Execute the operation once."""
        raise NotImplementedError

    def teardown(self) -> None:
        """Release any resources (files, buffers)."""

    # -- helpers ------------------------------------------------------------------
    @property
    def data_size(self) -> tuple[int, ...]:
        return self.config.data_size

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r} size={self.data_size}>"


_REGISTRY: dict[str, Type[Kernel]] = {}


def register_kernel(cls: Type[Kernel]) -> Type[Kernel]:
    """Class decorator adding a kernel to the global registry."""
    if not cls.name:
        raise KernelError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise KernelError(f"kernel name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


def kernel_class(name: str) -> Type[Kernel]:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelError(
            f"unknown kernel {name!r}; known kernels: {sorted(_REGISTRY)}"
        ) from None


def list_kernels(category: Optional[str] = None) -> list[str]:
    """Registered kernel names, optionally filtered by category."""
    return sorted(
        name
        for name, cls in _REGISTRY.items()
        if category is None or cls.category == category
    )


def make_kernel(config: KernelConfig, ctx: Optional[KernelContext] = None) -> Kernel:
    """Instantiate the kernel a config names.

    When ``ctx`` is omitted a fresh context is created from the config's
    device string.
    """
    if ctx is None:
        ctx = KernelContext(device=device_from_name(config.device))
    return kernel_class(config.mini_app_kernel)(config, ctx)


class KernelExecutor:
    """Drives a kernel per the config's run_time / run_count control."""

    def __init__(
        self,
        kernel: Kernel,
        rng: Optional[np.random.Generator] = None,
        clock: Optional[Clock] = None,
        min_reps_for_run_time: int = 1,
    ) -> None:
        self.kernel = kernel
        self.rng = rng if rng is not None else kernel.ctx.rng
        self.clock = clock or RealClock()
        self.min_reps_for_run_time = min_reps_for_run_time
        self.total_runs = 0

    def run_iteration(self) -> float:
        """Execute one iteration; returns its duration on ``clock``."""
        config = self.kernel.config
        start = self.clock.now()
        if config.run_time is not None:
            budget = max(0.0, config.run_time.sample(self.rng))
            reps = 0
            while True:
                self.kernel.run_once()
                reps += 1
                self.total_runs += 1
                elapsed = self.clock.now() - start
                if elapsed >= budget and reps >= self.min_reps_for_run_time:
                    break
                if elapsed < budget and self._would_overshoot(elapsed, budget, reps):
                    # Pad the remainder with sleep for a tight duration match.
                    self.clock.sleep(budget - elapsed)
                    break
        else:
            assert config.run_count is not None  # guaranteed by KernelConfig
            count = max(0, int(round(config.run_count.sample(self.rng))))
            for _ in range(count):
                self.kernel.run_once()
                self.total_runs += 1
        return self.clock.now() - start

    def _would_overshoot(self, elapsed: float, budget: float, reps: int) -> bool:
        """True when one more rep would overshoot the budget by more than the
        sleep-padding error."""
        if reps < self.min_reps_for_run_time:
            return False
        per_rep = elapsed / reps
        return elapsed + per_rep > budget
