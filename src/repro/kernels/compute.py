"""Compute kernels from Table 1.

Every kernel allocates its working set at setup (on the configured device)
and performs one operation per ``run_once``, reporting bytes touched and
floating-point operations so analyses can reason about arithmetic
intensity.
"""

from __future__ import annotations

import numpy as np

from repro.errors import KernelError
from repro.kernels.base import Kernel, KernelResult, register_kernel


def _shape2d(data_size: tuple[int, ...], kernel: str) -> tuple[int, int]:
    if len(data_size) == 1:
        return (int(data_size[0]), int(data_size[0]))
    if len(data_size) == 2:
        return (int(data_size[0]), int(data_size[1]))
    raise KernelError(f"{kernel}: data_size must be 1-D or 2-D, got {data_size}")


def _length(data_size: tuple[int, ...]) -> int:
    n = 1
    for d in data_size:
        n *= int(d)
    return n


@register_kernel
class MatMulSimple2D(Kernel):
    """Simple 2D matrix multiplication: ``C = A @ B`` with square-ish A, B.

    The kernel the paper uses to emulate the nekRS iteration (Listing 2).
    """

    name = "MatMulSimple2D"
    category = "compute"

    def setup(self) -> None:
        m, n = _shape2d(self.data_size, self.name)
        rng = self.ctx.rng
        self.a, _ = self.ctx.device.from_host(rng.random((m, n)))
        self.b, _ = self.ctx.device.from_host(rng.random((n, m)))

    def run_once(self) -> KernelResult:
        self.a.same_device(self.b)
        c = self.a.data @ self.b.data
        m, n = self.a.data.shape
        return KernelResult(
            bytes_processed=self.a.nbytes + self.b.nbytes + c.nbytes,
            flops=2.0 * m * n * c.shape[1],
        )


@register_kernel
class MatMulGeneral(Kernel):
    """General matrix multiplication (GEMM): ``C = alpha*A@B + beta*C``."""

    name = "MatMulGeneral"
    category = "compute"

    def setup(self) -> None:
        m, n = _shape2d(self.data_size, self.name)
        k = int(self.config.params.get("k", n))
        self.alpha = float(self.config.params.get("alpha", 1.0))
        self.beta = float(self.config.params.get("beta", 0.0))
        rng = self.ctx.rng
        self.a, _ = self.ctx.device.from_host(rng.random((m, k)))
        self.b, _ = self.ctx.device.from_host(rng.random((k, n)))
        self.c, _ = self.ctx.device.from_host(np.zeros((m, n)))

    def run_once(self) -> KernelResult:
        self.a.same_device(self.b)
        self.b.same_device(self.c)
        np.multiply(self.c.data, self.beta, out=self.c.data)
        self.c.data += self.alpha * (self.a.data @ self.b.data)
        m, k = self.a.data.shape
        n = self.b.data.shape[1]
        return KernelResult(
            bytes_processed=self.a.nbytes + self.b.nbytes + 2 * self.c.nbytes,
            flops=2.0 * m * n * k + 3.0 * m * n,
        )


@register_kernel
class FFT(Kernel):
    """Fast Fourier transform over the configured array."""

    name = "FFT"
    category = "compute"

    def setup(self) -> None:
        rng = self.ctx.rng
        self.x, _ = self.ctx.device.from_host(rng.random(self.data_size))

    def run_once(self) -> KernelResult:
        out = np.fft.fftn(self.x.data)
        n = self.x.data.size
        return KernelResult(
            bytes_processed=self.x.nbytes + out.nbytes,
            flops=5.0 * n * max(1.0, np.log2(max(n, 2))),
        )


@register_kernel
class AXPY(Kernel):
    """Scalar-vector multiply-add: ``y = a*x + y``."""

    name = "AXPY"
    category = "compute"

    def setup(self) -> None:
        n = _length(self.data_size)
        self.alpha = float(self.config.params.get("alpha", 2.0))
        rng = self.ctx.rng
        self.x, _ = self.ctx.device.from_host(rng.random(n))
        self.y, _ = self.ctx.device.from_host(rng.random(n))

    def run_once(self) -> KernelResult:
        self.x.same_device(self.y)
        self.y.data += self.alpha * self.x.data
        n = self.x.data.size
        return KernelResult(bytes_processed=3.0 * 8 * n, flops=2.0 * n)


@register_kernel
class InplaceCompute(Kernel):
    """In-place elementwise computation ``x = f(x)``.

    ``params.fn`` selects the function: sin (default), cos, exp-decay,
    sqrt-abs, square-mod — all chosen to keep values bounded across
    unbounded repetition.
    """

    name = "InplaceCompute"
    category = "compute"

    _FUNCS = {
        "sin": lambda x: np.sin(x, out=x),
        "cos": lambda x: np.cos(x, out=x),
        "expdecay": lambda x: np.multiply(x, 0.5, out=x),
        "sqrtabs": lambda x: np.sqrt(np.abs(x, out=x), out=x),
        "squaremod": lambda x: np.mod(np.multiply(x, x, out=x), 1.0, out=x),
    }

    def setup(self) -> None:
        fn_name = str(self.config.params.get("fn", "sin"))
        try:
            self.fn = self._FUNCS[fn_name]
        except KeyError:
            raise KernelError(
                f"InplaceCompute: unknown fn {fn_name!r}; options {sorted(self._FUNCS)}"
            ) from None
        self.x, _ = self.ctx.device.from_host(self.ctx.rng.random(self.data_size))

    def run_once(self) -> KernelResult:
        self.fn(self.x.data)
        n = self.x.data.size
        return KernelResult(bytes_processed=2.0 * 8 * n, flops=float(n))


@register_kernel
class GenerateRandomNumber(Kernel):
    """Fills an array with fresh random numbers."""

    name = "GenerateRandomNumber"
    category = "compute"

    def setup(self) -> None:
        self.out, _ = self.ctx.device.from_host(np.empty(self.data_size))

    def run_once(self) -> KernelResult:
        self.out.data[...] = self.ctx.rng.random(self.out.data.shape)
        return KernelResult(bytes_processed=float(self.out.nbytes), flops=0.0)


@register_kernel
class ScatterAdd(Kernel):
    """Scatters and adds values into an array: ``target[idx] += values``."""

    name = "ScatterAdd"
    category = "compute"

    def setup(self) -> None:
        n = _length(self.data_size)
        rng = self.ctx.rng
        self.target, _ = self.ctx.device.from_host(np.zeros(n))
        values = rng.random(n)
        indices = rng.integers(0, n, size=n)
        self.values, _ = self.ctx.device.from_host(values)
        self.indices, _ = self.ctx.device.from_host(indices)

    def run_once(self) -> KernelResult:
        self.target.same_device(self.values)
        np.add.at(self.target.data, self.indices.data, self.values.data)
        n = self.target.data.size
        return KernelResult(bytes_processed=3.0 * 8 * n, flops=float(n))
