"""Device abstraction: CPU and emulated GPU ("xpu") execution targets.

Aurora's Intel Data Center GPU Max tiles are not available here, so the
``xpu`` device *emulates* one: arrays live in numpy either way, but device
residency is tracked, host<->device copies are explicit (as with dpnp/CuPy)
and charged against a bandwidth/latency model, and mixing arrays from
different devices is an error — the same discipline real GPU code needs.

The paper's kernels only need to reproduce iteration *timings* and data
volumes (§4.1.1), so a residency-tracking emulation preserves exactly the
behaviours being benchmarked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError


@dataclass(frozen=True)
class TransferModel:
    """Host<->device copy cost: latency + bytes/bandwidth."""

    bandwidth: float = 32e9  # bytes/s (PCIe-ish)
    latency: float = 10e-6

    def time(self, nbytes: float) -> float:
        if nbytes < 0:
            raise DeviceError(f"negative copy size {nbytes}")
        return self.latency + nbytes / self.bandwidth


class Device:
    """An execution target: ``cpu`` or an emulated ``xpu`` tile."""

    def __init__(
        self,
        kind: str = "cpu",
        index: int = 0,
        transfer: TransferModel | None = None,
    ) -> None:
        if kind not in ("cpu", "xpu"):
            raise DeviceError(f"unknown device kind {kind!r}")
        self.kind = kind
        self.index = index
        self.transfer = transfer or TransferModel()
        self.bytes_to_device = 0.0
        self.bytes_to_host = 0.0

    @property
    def is_gpu(self) -> bool:
        return self.kind == "xpu"

    def __repr__(self) -> str:
        return f"Device({self.kind}:{self.index})"

    # -- array management -----------------------------------------------------
    def empty(self, shape, dtype=np.float64) -> "DeviceArray":
        return DeviceArray(np.empty(shape, dtype=dtype), self)

    def zeros(self, shape, dtype=np.float64) -> "DeviceArray":
        return DeviceArray(np.zeros(shape, dtype=dtype), self)

    def from_host(self, array: np.ndarray) -> tuple["DeviceArray", float]:
        """Copy a host array onto this device; returns (array, modeled time).

        On the CPU device the "copy" is free (data is already host-resident).
        """
        array = np.asarray(array)
        if not self.is_gpu:
            return DeviceArray(array, self), 0.0
        self.bytes_to_device += array.nbytes
        return DeviceArray(array.copy(), self), self.transfer.time(array.nbytes)

    def to_host(self, darray: "DeviceArray") -> tuple[np.ndarray, float]:
        """Copy a device array back to the host; returns (array, modeled time)."""
        if darray.device is not self:
            raise DeviceError(f"{darray} does not live on {self}")
        if not self.is_gpu:
            return darray.data, 0.0
        self.bytes_to_host += darray.data.nbytes
        return darray.data.copy(), self.transfer.time(darray.data.nbytes)


class DeviceArray:
    """A numpy array tagged with the device it lives on."""

    __slots__ = ("data", "device")

    def __init__(self, data: np.ndarray, device: Device) -> None:
        self.data = data
        self.device = device

    @property
    def shape(self):
        return self.data.shape

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def same_device(self, other: "DeviceArray") -> None:
        """Raise unless both arrays live on the same device."""
        if self.device is not other.device:
            raise DeviceError(
                f"arrays live on different devices: {self.device} vs {other.device}"
            )

    def __repr__(self) -> str:
        return f"DeviceArray(shape={self.data.shape}, device={self.device})"


def device_from_name(name: str, index: int = 0) -> Device:
    """Build a device from a config string (``"cpu"`` or ``"xpu"``)."""
    return Device(kind=name, index=index)
