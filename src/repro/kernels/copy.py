"""Host<->device copy kernels from Table 1.

These exercise the :class:`~repro.kernels.device.Device` transfer path:
actual bytes are copied between buffers, residency counters advance, and
the modeled transfer time is reported in the result metadata.
"""

from __future__ import annotations

from repro.kernels.base import Kernel, KernelResult, register_kernel


def _array_size(data_size: tuple[int, ...]) -> int:
    n = 1
    for d in data_size:
        n *= int(d)
    return n


@register_kernel
class CopyHostToDevice(Kernel):
    """Copies data from CPU to GPU memory."""

    name = "CopyHostToDevice"
    category = "copy"

    def setup(self) -> None:
        self.host = self.ctx.rng.random(_array_size(self.data_size))
        self.modeled_time = 0.0

    def run_once(self) -> KernelResult:
        _, t = self.ctx.device.from_host(self.host)
        self.modeled_time += t
        return KernelResult(bytes_processed=float(self.host.nbytes))


@register_kernel
class CopyDeviceToHost(Kernel):
    """Copies data from GPU to CPU memory."""

    name = "CopyDeviceToHost"
    category = "copy"

    def setup(self) -> None:
        host = self.ctx.rng.random(_array_size(self.data_size))
        self.darray, _ = self.ctx.device.from_host(host)
        self.modeled_time = 0.0

    def run_once(self) -> KernelResult:
        data, t = self.ctx.device.to_host(self.darray)
        self.modeled_time += t
        return KernelResult(bytes_processed=float(data.nbytes))
