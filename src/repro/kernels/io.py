"""IO kernels from Table 1.

The paper's IO kernels use HDF5; h5py is not installed here, so files are
raw little-endian float64 blocks (the access *pattern* — who writes, how
the file is shared, collective vs independent — is what the kernels model,
not the container format):

* ``WriteSingleRank`` — rank 0 gathers and writes everything;
* ``WriteNonMPI`` / ``ReadNonMPI`` — file-per-rank independent IO;
* ``WriteWithMPI`` / ``ReadWithMPI`` — a single shared file accessed
  collectively at rank offsets (``os.pwrite``/``os.pread``, which is what
  MPI-IO degenerates to on one node), with a barrier to mimic the
  collective's synchronization semantics.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.kernels.base import Kernel, KernelResult, register_kernel


def _array_size(data_size: tuple[int, ...]) -> int:
    n = 1
    for d in data_size:
        n *= int(d)
    return n


class _IOKernel(Kernel):
    """Shared setup: working array + target paths in ctx.workdir."""

    category = "io"

    def setup(self) -> None:
        self.workdir = self.ctx.require_workdir(self.name)
        n = _array_size(self.data_size)
        self.array = self.ctx.rng.random(n)
        self.rank = self.ctx.comm.rank if self.ctx.comm else 0
        self.nranks = self.ctx.comm.size if self.ctx.comm else 1
        self.counter = 0

    def _per_rank_path(self) -> Path:
        return self.workdir / f"{self.config.name}_rank{self.rank}.bin"

    def _shared_path(self) -> Path:
        return self.workdir / f"{self.config.name}_shared.bin"

    def teardown(self) -> None:
        for path in (self._per_rank_path(), self._shared_path()):
            try:
                path.unlink()
            except FileNotFoundError:
                pass


@register_kernel
class WriteSingleRank(_IOKernel):
    """A single process (rank 0) writes all ranks' data to one file."""

    name = "WriteSingleRank"

    def run_once(self) -> KernelResult:
        comm = self.ctx.comm
        if comm is not None and comm.size > 1:
            gathered = comm.gather(self.array, root=0)
            if comm.rank != 0:
                return KernelResult(bytes_processed=float(self.array.nbytes))
            data = np.concatenate(gathered)
        else:
            data = self.array
        with open(self._shared_path(), "wb") as handle:
            handle.write(data.tobytes())
        return KernelResult(bytes_processed=float(data.nbytes))


@register_kernel
class WriteNonMPI(_IOKernel):
    """Each rank writes its own file independently (no MPI-IO)."""

    name = "WriteNonMPI"

    def run_once(self) -> KernelResult:
        with open(self._per_rank_path(), "wb") as handle:
            handle.write(self.array.tobytes())
        return KernelResult(bytes_processed=float(self.array.nbytes))


@register_kernel
class ReadNonMPI(_IOKernel):
    """Each rank reads its own file independently."""

    name = "ReadNonMPI"

    def setup(self) -> None:
        super().setup()
        # Make sure there is something to read.
        with open(self._per_rank_path(), "wb") as handle:
            handle.write(self.array.tobytes())

    def run_once(self) -> KernelResult:
        data = np.fromfile(self._per_rank_path(), dtype=np.float64)
        return KernelResult(bytes_processed=float(data.nbytes))


@register_kernel
class WriteWithMPI(_IOKernel):
    """Collective write: every rank writes its block of one shared file."""

    name = "WriteWithMPI"

    def run_once(self) -> KernelResult:
        path = self._shared_path()
        offset = self.rank * self.array.nbytes
        # Pre-size the file once so concurrent pwrites land in place.
        if self.rank == 0 and not path.exists():
            with open(path, "wb") as handle:
                handle.truncate(self.nranks * self.array.nbytes)
        if self.ctx.comm is not None:
            self.ctx.comm.barrier()
        fd = os.open(path, os.O_WRONLY | os.O_CREAT)
        try:
            os.pwrite(fd, self.array.tobytes(), offset)
        finally:
            os.close(fd)
        if self.ctx.comm is not None:
            self.ctx.comm.barrier()  # collective completion semantics
        return KernelResult(bytes_processed=float(self.array.nbytes))


@register_kernel
class ReadWithMPI(_IOKernel):
    """Collective read: every rank reads its block of one shared file."""

    name = "ReadWithMPI"

    def setup(self) -> None:
        super().setup()
        path = self._shared_path()
        if self.rank == 0:
            with open(path, "wb") as handle:
                handle.write(
                    np.tile(self.array, self.nranks).tobytes()
                )
        if self.ctx.comm is not None:
            self.ctx.comm.barrier()  # readers wait for the file to exist

    def run_once(self) -> KernelResult:
        offset = self.rank * self.array.nbytes
        fd = os.open(self._shared_path(), os.O_RDONLY)
        try:
            blob = os.pread(fd, self.array.nbytes, offset)
        finally:
            os.close(fd)
        if self.ctx.comm is not None:
            self.ctx.comm.barrier()
        data = np.frombuffer(blob, dtype=np.float64)
        return KernelResult(bytes_processed=float(data.nbytes))
