"""Text rendering of paper-style tables and figure series.

Figures are rendered as aligned numeric tables (one row per x-value, one
column per series) plus an optional log-scale ASCII chart, so benchmark
output can be compared against the paper's plots at a glance.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.stats import Summary


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """Render an aligned text table."""
    if any(len(row) != len(headers) for row in rows):
        raise ReproError("all rows must match the header length")

    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in text_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
    float_format: str = "{:.4g}",
) -> str:
    """A figure as a table: x column + one column per named series."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(x_values):
            raise ReproError(
                f"series {name!r} has {len(series[name])} points, expected {len(x_values)}"
            )
    headers = [x_label, *names]
    rows = [
        [x, *(series[name][i] for name in names)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title, float_format=float_format)


def ascii_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    width: int = 60,
    log_y: bool = True,
    title: Optional[str] = None,
) -> str:
    """A crude horizontal-bar chart, one block of bars per x value.

    Bars share one (optionally log) scale so relative magnitudes across
    series and x-values read correctly.
    """
    if width <= 10:
        raise ReproError("chart width must be > 10")
    values = [v for vs in series.values() for v in vs if v > 0]
    if not values:
        return (title or "") + "\n(no positive data)"
    vmax = max(values)
    vmin = min(values)
    if log_y and vmin > 0 and vmax > vmin:
        scale = lambda v: (math.log10(v) - math.log10(vmin)) / (
            math.log10(vmax) - math.log10(vmin)
        )
    else:
        scale = lambda v: v / vmax
    label_width = max(len(name) for name in series)
    lines = [title] if title else []
    for i, x in enumerate(x_values):
        lines.append(f"x={x:g}")
        for name, vs in series.items():
            v = vs[i]
            bar = "#" * max(1, int(scale(v) * width)) if v > 0 else ""
            lines.append(f"  {name:<{label_width}} |{bar} {v:.3g}")
    return "\n".join(lines)


def format_summary_table(
    summaries: Mapping[str, "Summary"],
    title: Optional[str] = None,
    unit_scale: float = 1.0,
    unit: str = "s",
) -> str:
    """One row per named :class:`~repro.telemetry.stats.Summary`, with
    mean/std and the p50/p95/p99 percentile columns.

    ``unit_scale`` multiplies every duration column (e.g. ``1e3`` to show
    milliseconds); ``unit`` labels the headers.
    """
    headers = [
        "series",
        "count",
        f"mean ({unit})",
        f"std ({unit})",
        f"p50 ({unit})",
        f"p95 ({unit})",
        f"p99 ({unit})",
        f"max ({unit})",
    ]
    rows = [
        [
            name,
            s.count,
            s.mean * unit_scale,
            s.std * unit_scale,
            s.p50 * unit_scale,
            s.p95 * unit_scale,
            s.p99 * unit_scale,
            s.max * unit_scale,
        ]
        for name, s in summaries.items()
    ]
    return format_table(headers, rows, title=title)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference| (inf when reference is 0)."""
    if reference == 0:
        return 0.0 if measured == 0 else float("inf")
    return abs(measured - reference) / abs(reference)
