"""Analysis helpers: table/series formatting and error metrics."""

from repro.analysis.report import (
    ascii_chart,
    format_series_table,
    format_summary_table,
    format_table,
    relative_error,
)

__all__ = [
    "ascii_chart",
    "format_series_table",
    "format_summary_table",
    "format_table",
    "relative_error",
]
