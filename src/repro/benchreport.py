"""Performance baseline tooling: ``python -m repro bench``.

The DES engine's event throughput is the hard ceiling on every number
this reproduction produces, so its trajectory is tracked in the repo:
``repro bench`` runs the DES micro-benchmarks plus one quick round of
each paper experiment, writes a machine-readable ``BENCH_<date>.json``
(events/sec, per-experiment wall seconds, peak RSS), and prints a delta
table against the most recent committed baseline. CI runs
``repro bench --quick --check`` as a perf-smoke job that fails on a
>25% events/sec regression against the baseline in ``benchmarks/``.

Report schema (``schema_version`` 1)::

    {
      "schema_version": 1,
      "created": "2026-08-05T12:00:00",
      "quick": false,
      "python": "3.12.1",
      "platform": "Linux-...",
      "environment": {
        "hostname": "...", "cpu_model": "...", "cpu_count": N,
        "python": "3.12.1", "platform": "Linux-..."
      },
      "des": {
        "event_throughput": {"events": N, "seconds": s, "events_per_sec": r},
        "resource_contention": {...},
        "calendar_throughput": {...},   # event_throughput on the calendar core
        "shard_scaling": {
          "shards": 2, "serial_seconds": s, "sharded_seconds": s,
          "speedup": x, "identical": 1.0
        }
      },
      "service": {
        "grids": N, "points": N, "claimed": N,
        "submits_per_sec": r, "claims_per_sec": r
      },
      "experiments": {"fig3": {"seconds": s}, ...},
      "peak_rss_bytes": B
    }

Benchmarks are wall-clock measurements: absolute numbers move between
machines, so ``--check`` compares the stored ``environment`` fingerprint
(cpu_model, cpu_count) first and downgrades the regression gate to a
warning when the baseline came from a different machine (the committed
baseline is refreshed whenever the CI image or the engine changes
materially).
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import os
import pathlib
import platform
import resource
import socket
import sys
import time
from typing import Any, Optional

#: Experiments timed by ``--quick`` (CI smoke) vs the full bench.
QUICK_EXPERIMENTS = ("table2", "fig3")

#: Fail ``--check`` when events/sec drops below this fraction of baseline.
DEFAULT_REGRESSION_THRESHOLD = 0.25


# -- DES micro-benchmarks ---------------------------------------------------
def _ticker_workload(env) -> None:
    """The ``test_micro_substrates`` event-throughput workload."""

    def ticker(env):
        for _ in range(1000):
            yield env.timeout(1.0)

    for _ in range(10):
        env.process(ticker(env))


def _contention_workload(env) -> None:
    """The ``test_micro_substrates`` resource-contention workload."""
    from repro.des import Resource

    res = Resource(env, capacity=4)

    def user(env, res):
        for _ in range(50):
            with res.request() as req:
                yield req
                yield env.timeout(0.1)

    for _ in range(40):
        env.process(user(env, res))


def _measure_des(build, repeats: int, core: Optional[str] = None) -> dict[str, float]:
    """Best-of-``repeats`` wall time for one DES workload.

    The event count is taken once from a probed run (deterministic, so
    it is identical for every repeat); the timed runs are unprobed so
    the number reflects what experiments actually pay.
    """
    from repro.des import Environment
    from repro.des.probe import CountingProbe

    counter = CountingProbe()
    env = Environment(probe=counter, core=core)
    build(env)
    env.run()
    events = counter.processed

    best = float("inf")
    for _ in range(repeats):
        env = Environment(core=core)
        build(env)
        start = time.perf_counter()
        env.run()
        best = min(best, time.perf_counter() - start)
    return {
        "events": float(events),
        "seconds": best,
        "events_per_sec": events / best,
    }


def run_des_benchmarks(repeats: int = 5) -> dict[str, dict[str, float]]:
    """The DES micro-benchmarks as ``{name: {events, seconds, events_per_sec}}``.

    ``calendar_throughput`` is the ticker workload on the calendar-queue
    core, so the two event cores are tracked side by side.
    """
    return {
        "event_throughput": _measure_des(_ticker_workload, repeats),
        "resource_contention": _measure_des(_contention_workload, repeats),
        "calendar_throughput": _measure_des(_ticker_workload, repeats, core="calendar"),
    }


def run_shard_scaling_benchmark(shards: int = 2) -> dict[str, float]:
    """One fig6-style pattern-2 cell, serial vs ``shards``-way sharded.

    Reports both wall times and the speedup, and asserts the sharded
    event log is byte-identical to the serial one (``identical`` is 1.0;
    a mismatch raises, because a wrong-but-fast parallel run must never
    become a committed baseline). On single-core hosts the "speedup" is
    honestly below 1 — the fingerprint check keeps such baselines from
    gating runs on other machines.
    """
    from repro.experiments.common import backend_models
    from repro.transport.models import TransportOpContext
    from repro.workloads.patterns import ManyToOneConfig, run_many_to_one

    n_sims = 127  # the paper's 128-node cell: one trainer + 127 simulations
    config = ManyToOneConfig(
        n_simulations=n_sims,
        train_iterations=200,
        snapshot_nbytes=1e6,
    )
    n_clients = n_sims + min(12, n_sims)
    kwargs = dict(
        write_ctx=TransportOpContext(
            local=True, clients_per_server=12, concurrent_clients=n_clients
        ),
        read_ctx=TransportOpContext(
            local=False,
            clients_per_server=12,
            fan_in=n_sims,
            concurrent_peers=min(12, n_sims),
            concurrent_clients=n_clients,
        ),
    )
    models = backend_models()["filesystem"]

    start = time.perf_counter()
    serial = run_many_to_one(models, config, **kwargs)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sharded = run_many_to_one(models, config, shards=shards, **kwargs)
    sharded_seconds = time.perf_counter() - start

    if serial.log.to_jsonl() != sharded.log.to_jsonl():
        raise RuntimeError(
            f"{shards}-shard event log diverged from serial; refusing to "
            "record a shard-scaling baseline for a non-equivalent run"
        )
    return {
        "shards": float(shards),
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": serial_seconds / sharded_seconds if sharded_seconds > 0 else 0.0,
        "identical": 1.0,
    }


# -- sweep service throughput -----------------------------------------------
def _bench_point(x: float) -> float:
    """Trivial grid point for the service bench (must be importable)."""
    return float(x)


def run_service_benchmark(
    n_grids: int = 8, points_per_grid: int = 25
) -> dict[str, float]:
    """SUBMIT and CLAIM round-trip rates against a loopback sweep service.

    Tracks the control-plane ceiling of the durable multi-tenant
    service: how fast grids are admitted (SUBMIT includes the quota
    check, signature dedup, and the store write) and how fast workers
    can pull points (CLAIM includes lease bookkeeping). One persistent
    connection per phase, so the numbers measure dispatch + store cost,
    not TCP handshakes. Advisory in ``--check`` — the regression gate
    stays on the DES engine numbers.
    """
    import tempfile

    from repro.sweep.dist.service import ServiceClient, SweepService
    from repro.sweep.point import SweepPoint
    from repro.transport.redis_backend import MiniRedisConnection

    total_points = n_grids * points_per_grid
    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        service = SweepService(
            pathlib.Path(tmp) / "store.sqlite", host="127.0.0.1", port=0,
            lease_seconds=300.0,
        )
        service.start()
        try:
            client = ServiceClient(f"127.0.0.1:{service.port}")
            start = time.perf_counter()
            for g in range(n_grids):
                points = [
                    (
                        i,
                        SweepPoint(
                            func=_bench_point,
                            kwargs={"x": float(g * points_per_grid + i)},
                        ),
                    )
                    for i in range(points_per_grid)
                ]
                client.submit(f"bench-{g}", points, tenant="bench")
            submit_seconds = time.perf_counter() - start

            conn = MiniRedisConnection("127.0.0.1", service.port, timeout=10.0)
            claimed = 0
            start = time.perf_counter()
            try:
                while claimed < total_points:
                    reply = conn.command("CLAIM", "bench-worker")
                    if reply in (None, b"DRAINED") or str(reply) == "DRAINED":
                        break
                    claimed += 1
            finally:
                conn.close()
            claim_seconds = time.perf_counter() - start
        finally:
            service.stop()
    return {
        "grids": float(n_grids),
        "points": float(total_points),
        "claimed": float(claimed),
        "submits_per_sec": n_grids / submit_seconds if submit_seconds > 0 else 0.0,
        "claims_per_sec": claimed / claim_seconds if claim_seconds > 0 else 0.0,
    }


# -- experiment rounds ------------------------------------------------------
def run_experiment_rounds(names: Optional[list[str]] = None) -> dict[str, dict[str, float]]:
    """Wall seconds for one quick round of each named paper experiment."""
    from repro.experiments import ALL_EXPERIMENTS

    chosen = list(ALL_EXPERIMENTS) if names is None else list(names)
    timings: dict[str, dict[str, float]] = {}
    for name in chosen:
        module = ALL_EXPERIMENTS[name]
        start = time.perf_counter()
        module.run(quick=True)
        timings[name] = {"seconds": time.perf_counter() - start}
    return timings


def peak_rss_bytes() -> int:
    """Peak resident set size of this process (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * (1 if sys.platform == "darwin" else 1024)


def cpu_model() -> str:
    """Human CPU model name (``/proc/cpuinfo`` on Linux, else platform)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def environment_info() -> dict[str, Any]:
    """Where this bench ran: baselines are only comparable within one
    environment, so the report records enough to tell them apart."""
    return {
        "hostname": socket.gethostname(),
        "cpu_model": cpu_model(),
        "cpu_count": os.cpu_count() or 1,
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


# -- report assembly --------------------------------------------------------
def collect(quick: bool = False, repeats: int = 5) -> dict[str, Any]:
    """Run the whole bench and assemble the report payload."""
    names = list(QUICK_EXPERIMENTS) if quick else None
    des = run_des_benchmarks(repeats=repeats)
    des["shard_scaling"] = run_shard_scaling_benchmark()
    service = run_service_benchmark()
    experiments = run_experiment_rounds(names)
    return {
        "schema_version": 1,
        "created": _dt.datetime.now().isoformat(timespec="seconds"),
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "environment": environment_info(),
        "des": des,
        "service": service,
        "experiments": experiments,
        "peak_rss_bytes": peak_rss_bytes(),
    }


def report_path(out_dir: pathlib.Path, date: Optional[str] = None) -> pathlib.Path:
    """Next free ``BENCH_<date>[_N].json`` path under ``out_dir``.

    The suffix keeps same-day reports distinct, and ``_N`` sorts after
    the bare name lexicographically ('.' < '_'), so ``sorted()`` order
    is chronological within a day too.
    """
    date = date or _dt.date.today().isoformat()
    path = out_dir / f"BENCH_{date}.json"
    n = 2
    while path.exists():
        path = out_dir / f"BENCH_{date}_{n}.json"
        n += 1
    return path


def find_baseline(baseline_dir: pathlib.Path) -> Optional[pathlib.Path]:
    """Most recent committed ``BENCH_*.json`` (lexicographically greatest)."""
    candidates = sorted(baseline_dir.glob("BENCH_*.json"))
    return candidates[-1] if candidates else None


def write_report(payload: dict[str, Any], out_dir: pathlib.Path) -> pathlib.Path:
    out_dir.mkdir(parents=True, exist_ok=True)
    path = report_path(out_dir)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


# -- comparison -------------------------------------------------------------
def _fmt_delta(current: float, baseline: float, higher_is_better: bool) -> str:
    if baseline <= 0:
        return "n/a"
    ratio = current / baseline
    sign = "+" if ratio >= 1 else ""
    arrow = ratio >= 1 if higher_is_better else ratio <= 1
    return f"{sign}{100.0 * (ratio - 1.0):.1f}% {'ok' if arrow else 'worse'}"


def delta_table(current: dict[str, Any], baseline: dict[str, Any]) -> str:
    """Human-readable comparison of two bench payloads."""
    rows: list[tuple[str, str, str, str]] = []
    for name, cur in current.get("des", {}).items():
        base = baseline.get("des", {}).get(name)
        if base is None or "events_per_sec" not in cur or "events_per_sec" not in base:
            continue
        rows.append(
            (
                f"des.{name} (events/sec)",
                f"{base['events_per_sec']:,.0f}",
                f"{cur['events_per_sec']:,.0f}",
                _fmt_delta(cur["events_per_sec"], base["events_per_sec"], True),
            )
        )
    cur_scaling = current.get("des", {}).get("shard_scaling", {})
    base_scaling = baseline.get("des", {}).get("shard_scaling", {})
    if "speedup" in cur_scaling and "speedup" in base_scaling:
        rows.append(
            (
                f"des.shard_scaling (x{cur_scaling.get('shards', 2):.0f} speedup)",
                f"{base_scaling['speedup']:.2f}",
                f"{cur_scaling['speedup']:.2f}",
                _fmt_delta(cur_scaling["speedup"], base_scaling["speedup"], True),
            )
        )
    cur_service = current.get("service", {})
    base_service = baseline.get("service", {})
    for metric in ("submits_per_sec", "claims_per_sec"):
        if metric in cur_service and metric in base_service:
            rows.append(
                (
                    f"service.{metric}",
                    f"{base_service[metric]:,.0f}",
                    f"{cur_service[metric]:,.0f}",
                    _fmt_delta(cur_service[metric], base_service[metric], True),
                )
            )
    for name, cur in current.get("experiments", {}).items():
        base = baseline.get("experiments", {}).get(name)
        if base is None:
            continue
        rows.append(
            (
                f"{name} (s)",
                f"{base['seconds']:.2f}",
                f"{cur['seconds']:.2f}",
                _fmt_delta(cur["seconds"], base["seconds"], False),
            )
        )
    cur_rss = current.get("peak_rss_bytes", 0)
    base_rss = baseline.get("peak_rss_bytes", 0)
    if cur_rss and base_rss:
        rows.append(
            (
                "peak RSS (MB)",
                f"{base_rss / 1e6:.0f}",
                f"{cur_rss / 1e6:.0f}",
                _fmt_delta(cur_rss, base_rss, False),
            )
        )
    if not rows:
        return "(no comparable metrics in baseline)"
    headers = ("metric", "baseline", "current", "delta")
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows)) for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    return "\n".join(lines)


#: Environment fields that must match for wall-clock numbers to be comparable.
FINGERPRINT_FIELDS = ("cpu_model", "cpu_count")


def fingerprint_mismatches(
    current: dict[str, Any], baseline: dict[str, Any]
) -> list[str]:
    """Why the baseline's machine differs from this one (empty = same).

    Wall-clock baselines only gate runs from the same hardware; a report
    predating the ``environment`` block counts as mismatched because its
    provenance is unknowable.
    """
    cur_env = current.get("environment") or {}
    base_env = baseline.get("environment")
    if base_env is None:
        return ["baseline has no environment fingerprint (pre-schema report)"]
    return [
        f"{field}: baseline {base_env.get(field)!r} vs current {cur_env.get(field)!r}"
        for field in FINGERPRINT_FIELDS
        if base_env.get(field) != cur_env.get(field)
    ]


def check_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list[str]:
    """Events/sec regressions beyond ``threshold`` (empty = pass).

    Only the DES throughput numbers gate: experiment wall times include
    process startup and numpy noise, so they are reported but advisory.
    """
    failures = []
    for name, cur in current.get("des", {}).items():
        base = baseline.get("des", {}).get(name)
        if base is None or "events_per_sec" not in cur or "events_per_sec" not in base:
            continue
        floor = (1.0 - threshold) * base["events_per_sec"]
        if cur["events_per_sec"] < floor:
            failures.append(
                f"des.{name}: {cur['events_per_sec']:,.0f} events/sec is below "
                f"{floor:,.0f} ({(1.0 - threshold) * 100:.0f}% of baseline "
                f"{base['events_per_sec']:,.0f})"
            )
    return failures


# -- CLI --------------------------------------------------------------------
def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"time only {', '.join(QUICK_EXPERIMENTS)} (CI smoke)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=5,
        metavar="N",
        help="DES micro-bench repeats (best-of-N wall time)",
    )
    parser.add_argument(
        "--out-dir",
        default="benchmarks",
        metavar="DIR",
        help="where BENCH_<date>.json is written",
    )
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks",
        metavar="DIR",
        help="where the committed baseline BENCH_*.json files live",
    )
    parser.add_argument(
        "--no-write",
        action="store_true",
        help="print the report and delta table without writing a file",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero on a DES events/sec regression beyond --threshold",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_REGRESSION_THRESHOLD,
        metavar="FRACTION",
        help="allowed events/sec regression fraction for --check (default 0.25)",
    )


def cmd_bench(args: argparse.Namespace) -> int:
    baseline_dir = pathlib.Path(args.baseline_dir)
    baseline_path = find_baseline(baseline_dir)
    payload = collect(quick=args.quick, repeats=args.repeats)

    for name, numbers in payload["des"].items():
        if "events_per_sec" in numbers:
            print(
                f"des.{name}: {numbers['events_per_sec']:,.0f} events/sec "
                f"({numbers['events']:.0f} events in "
                f"{numbers['seconds'] * 1e3:.1f} ms)"
            )
        elif "speedup" in numbers:
            print(
                f"des.{name}: {numbers['speedup']:.2f}x at "
                f"{numbers['shards']:.0f} shards "
                f"(serial {numbers['serial_seconds']:.2f} s, sharded "
                f"{numbers['sharded_seconds']:.2f} s, output identical)"
            )
    service = payload.get("service", {})
    if service:
        print(
            f"service: {service['submits_per_sec']:,.0f} submits/sec, "
            f"{service['claims_per_sec']:,.0f} claims/sec "
            f"({service['grids']:.0f} grids x "
            f"{service['points'] / max(service['grids'], 1):.0f} points)"
        )
    for name, numbers in payload["experiments"].items():
        print(f"{name}: {numbers['seconds']:.2f} s")
    print(f"peak RSS: {payload['peak_rss_bytes'] / 1e6:.0f} MB")

    if baseline_path is not None:
        baseline = json.loads(baseline_path.read_text())
        print(f"\ndelta vs {baseline_path}:")
        print(delta_table(payload, baseline))
    else:
        baseline = None
        print(f"\nno baseline BENCH_*.json in {baseline_dir} (first run?)")

    if not args.no_write:
        path = write_report(payload, pathlib.Path(args.out_dir))
        print(f"\nreport written to {path}")

    if args.check:
        if baseline is None:
            print("--check: no baseline to compare against", file=sys.stderr)
            return 1
        mismatches = fingerprint_mismatches(payload, baseline)
        failures = check_regression(payload, baseline, args.threshold)
        if mismatches:
            # Foreign baseline: wall-clock deltas are machine noise, not
            # regressions. Report, but do not gate.
            for mismatch in mismatches:
                print(f"bench environment mismatch: {mismatch}", file=sys.stderr)
            for failure in failures:
                print(f"PERF WARNING (foreign baseline): {failure}", file=sys.stderr)
            print(
                "perf check skipped: baseline recorded on different hardware",
                file=sys.stderr,
            )
            return 0
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("perf check passed")
    return 0
