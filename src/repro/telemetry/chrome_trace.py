"""Chrome trace-event JSON export: open runs in Perfetto / chrome://tracing.

Writes the *JSON array* flavour of the Trace Event Format: a list of
event objects with ``ph`` (phase), ``ts`` (microseconds), ``pid``,
``tid``, ``name``. Spans become complete events (``ph: "X"`` with
``dur``), counter samples become counter events (``ph: "C"``), instants
become ``ph: "i"``, and metadata events (``ph: "M"``) name each
process/thread track after the component/rank it represents — plus
``process_sort_index``/``thread_sort_index`` metadata so merged
fleet traces (one pid track per worker, named from its HELLO
``hostname:pid`` identity) render in stable name order with the
coordinator track first.

Both :class:`~repro.telemetry.tracing.Tracer` contents and plain
:class:`~repro.telemetry.events.EventLog` records can be rendered, so
pre-existing JSONL event logs are loadable in Perfetto too.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from repro.errors import ReproError
from repro.telemetry.events import EventLog
from repro.telemetry.tracing import Tracer

#: Trace timestamps are integer-ish microseconds.
_US = 1e6

#: Keys every exported event carries (the format's structural core).
REQUIRED_EVENT_KEYS = ("ph", "ts", "pid", "tid", "name")


class _TrackIds:
    """Stable string->int id assignment for pid/tid tracks.

    Historically this assumed one process's tracer: pids were numbered
    in first-seen order and viewers sorted tracks however they pleased.
    A merged *fleet* trace (coordinator + N workers, each a pid track
    named ``worker HOST:PID`` from its HELLO identity) needs an explicit
    order, so :meth:`sort_metadata` emits ``process_sort_index`` /
    ``thread_sort_index`` metadata ranking tracks by *name* — the
    coordinator track sorts before every ``worker ...`` track, and
    workers appear in stable identity order regardless of which one
    happened to emit its first span first.
    """

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[str, int], int] = {}
        self.metadata: list[dict] = []

    def pid(self, name: str) -> int:
        pid = self._pids.get(name)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[name] = pid
            self.metadata.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": pid,
                    "tid": 0,
                    "name": "process_name",
                    "args": {"name": name},
                }
            )
        return pid

    def tid(self, pid_name: str, tid: int) -> int:
        key = (pid_name, tid)
        mapped = self._tids.get(key)
        if mapped is None:
            mapped = tid
            self._tids[key] = mapped
            self.metadata.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": self.pid(pid_name),
                    "tid": mapped,
                    "name": "thread_name",
                    "args": {"name": f"{pid_name}/rank{tid}"},
                }
            )
        return mapped

    def sort_metadata(self) -> list[dict]:
        """Track-ordering metadata: rank pids (and tids within) by name."""
        events: list[dict] = []
        for rank, name in enumerate(sorted(self._pids)):
            events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": self._pids[name],
                    "tid": 0,
                    "name": "process_sort_index",
                    "args": {"sort_index": rank},
                }
            )
        for pid_name, tid in sorted(self._tids):
            events.append(
                {
                    "ph": "M",
                    "ts": 0,
                    "pid": self._pids[pid_name],
                    "tid": self._tids[(pid_name, tid)],
                    "name": "thread_sort_index",
                    "args": {"sort_index": tid},
                }
            )
        return events

    def all_metadata(self) -> list[dict]:
        return self.metadata + self.sort_metadata()


def _json_safe(args: dict) -> dict:
    return {str(k): (v if isinstance(v, (int, float, bool, str)) else repr(v)) for k, v in args.items()}


def tracer_events(tracer: Tracer) -> list[dict]:
    """Render a tracer's spans/instants/counters as trace events."""
    tracks = _TrackIds()
    events: list[dict] = []
    for span in tracer.spans:
        if not span.finished:
            continue
        events.append(
            {
                "ph": "X",
                "ts": span.start * _US,
                "dur": max(0.0, span.duration) * _US,
                "pid": tracks.pid(span.pid),
                "tid": tracks.tid(span.pid, span.tid),
                "name": span.name,
                "cat": span.category or "span",
                "args": _json_safe(span.args),
            }
        )
    for inst in tracer.instants:
        events.append(
            {
                "ph": "i",
                "ts": inst.time * _US,
                "pid": tracks.pid(inst.pid),
                "tid": tracks.tid(inst.pid, inst.tid),
                "name": inst.name,
                "cat": inst.category or "instant",
                "s": "t",
                "args": _json_safe(inst.args),
            }
        )
    for sample in tracer.counters:
        events.append(
            {
                "ph": "C",
                "ts": sample.time * _US,
                "pid": tracks.pid(sample.pid),
                "tid": 0,
                "name": sample.name,
                "args": {k: float(v) for k, v in sample.values.items()},
            }
        )
    return tracks.all_metadata() + events


def eventlog_events(log: EventLog) -> list[dict]:
    """Render a flat EventLog as one complete event per record."""
    tracks = _TrackIds()
    events: list[dict] = []
    for record in log:
        events.append(
            {
                "ph": "X",
                "ts": record.start * _US,
                "dur": record.duration * _US,
                "pid": tracks.pid(record.component),
                "tid": tracks.tid(record.component, record.rank),
                "name": record.kind.value if record.key == "" else f"{record.kind.value}:{record.key}",
                "cat": record.kind.value,
                "args": _json_safe(
                    {"nbytes": record.nbytes, "key": record.key, **record.meta}
                ),
            }
        )
    return tracks.all_metadata() + events


def trace_events(
    tracer: Optional[Tracer] = None, event_log: Optional[EventLog] = None
) -> list[dict]:
    """Combine tracer and/or event-log content into one event array."""
    if tracer is None and event_log is None:
        raise ReproError("need a tracer and/or an event log to export")
    events: list[dict] = []
    if tracer is not None:
        events.extend(tracer_events(tracer))
    if event_log is not None:
        events.extend(eventlog_events(event_log))
    return events


def write_chrome_trace(
    path,
    tracer: Optional[Tracer] = None,
    event_log: Optional[EventLog] = None,
) -> int:
    """Write the JSON-array trace file; returns the number of events."""
    events = trace_events(tracer=tracer, event_log=event_log)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(events, handle)
        handle.write("\n")
    return len(events)


def load_trace(path) -> list[dict]:
    """Read a trace file (array form or ``{"traceEvents": [...]}``)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        data = data.get("traceEvents")
    if not isinstance(data, list):
        raise ReproError(f"{path} is not a Chrome trace (expected an event array)")
    return data


def validate_trace_events(events: Iterable[dict]) -> int:
    """Structurally validate trace events; returns the count or raises."""
    count = 0
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ReproError(f"trace event #{i} is not an object: {event!r}")
        missing = [k for k in REQUIRED_EVENT_KEYS if k not in event]
        if missing:
            raise ReproError(f"trace event #{i} missing keys {missing}: {event!r}")
        if event["ph"] == "X" and "dur" not in event:
            raise ReproError(f"complete event #{i} missing 'dur': {event!r}")
        count += 1
    return count


def summarize_trace(events: list[dict], top_k: int = 5) -> list[tuple[str, list[dict]]]:
    """Top-k slowest complete spans per process track.

    Returns ``[(process_name, [event, ...]), ...]`` with each event list
    sorted by descending ``dur``. Counter/metadata/instant events are
    ignored; processes appear in first-seen order.
    """
    if top_k < 1:
        raise ReproError(f"top_k must be >= 1, got {top_k}")
    names: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            names[event["pid"]] = event.get("args", {}).get("name", str(event["pid"]))
    per_process: dict[int, list[dict]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        per_process.setdefault(event["pid"], []).append(event)
    out = []
    for pid, spans in per_process.items():
        spans.sort(key=lambda e: -float(e.get("dur", 0.0)))
        out.append((names.get(pid, str(pid)), spans[:top_k]))
    return out
