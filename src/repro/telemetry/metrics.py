"""Metrics registry: counters, gauges, and percentile histograms.

Transport clients and kernels publish into a shared
:class:`MetricsRegistry`; the DES probe samplers append gauge
time-series; experiments and the CLI read the result back as text or a
JSON document. Metric names are dotted paths with optional
``{label=value,...}`` suffixes, e.g. ``transport.write.seconds{backend=redis}``.

Histogram percentiles use linear interpolation over the full retained
sample set (bounded by a reservoir cap), so p50/p95/p99 of a known
distribution match ``numpy.percentile`` exactly while memory stays
bounded on long runs.
"""

from __future__ import annotations

import json
from typing import Optional

import numpy as np

from repro.errors import ReproError


def _check_name(name: str) -> str:
    if not isinstance(name, str) or not name:
        raise ReproError(f"metric names must be non-empty strings, got {name!r}")
    return name


def labeled_name(name: str, **labels: object) -> str:
    """``labeled_name("x.seconds", backend="redis")`` -> ``x.seconds{backend=redis}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (events, bytes, ...)."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self._value}

    def render(self) -> str:
        return f"{self.name} {self._value:g}"


class Gauge:
    """A point-in-time level, optionally retained as a time-series.

    ``set(value, t=...)`` appends a ``(t, value)`` sample when a timestamp
    is given (the DES samplers always pass ``env.now``); without one only
    the last value is tracked.
    """

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0
        self.samples: list[tuple[float, float]] = []

    def set(self, value: float, t: Optional[float] = None) -> None:
        self._value = float(value)
        if t is not None:
            self.samples.append((float(t), self._value))

    def inc(self, amount: float = 1.0, t: Optional[float] = None) -> None:
        self.set(self._value + amount, t=t)

    def dec(self, amount: float = 1.0, t: Optional[float] = None) -> None:
        self.set(self._value - amount, t=t)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max_sample(self) -> float:
        return max((v for _, v in self.samples), default=self._value)

    def nonzero_samples(self) -> list[tuple[float, float]]:
        return [(t, v) for t, v in self.samples if v != 0]

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "value": self._value,
            "n_samples": len(self.samples),
            "max": self.max_sample,
        }

    def render(self) -> str:
        return f"{self.name} {self._value:g} (samples={len(self.samples)}, max={self.max_sample:g})"


class Histogram:
    """A distribution with exact interpolated percentiles.

    Retains at most ``max_samples`` observations; past the cap, samples
    are thinned deterministically (every other retained sample is
    dropped and the stride doubles) so long runs stay bounded while the
    tail shape survives. Count/sum/min/max always cover *all*
    observations.
    """

    kind = "histogram"

    def __init__(self, name: str, max_samples: int = 65536) -> None:
        if max_samples < 2:
            raise ReproError(f"max_samples must be >= 2, got {max_samples}")
        self.name = _check_name(name)
        self.max_samples = int(max_samples)
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if self._skip:
            self._skip -= 1
            return
        self._samples.append(value)
        self._skip = self._stride - 1
        if len(self._samples) >= self.max_samples:
            self._samples = self._samples[::2]
            self._stride *= 2

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The q-th percentile (0-100) of retained samples."""
        if not 0 <= q <= 100:
            raise ReproError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, q))

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p95(self) -> float:
        return self.percentile(95)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }

    def render(self) -> str:
        return (
            f"{self.name} count={self.count} mean={self.mean:g} "
            f"p50={self.p50:g} p95={self.p95:g} p99={self.p99:g}"
        )


class MetricsRegistry:
    """Name -> metric instrument, with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ReproError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(labeled_name(name, **labels), Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(labeled_name(name, **labels), Gauge)

    def histogram(self, name: str, max_samples: int = 65536, **labels) -> Histogram:
        return self._get(labeled_name(name, **labels), Histogram, max_samples=max_samples)

    def get(self, name: str) -> Optional[Counter | Gauge | Histogram]:
        """Look up a metric without creating it."""
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def gauges(self) -> list[Gauge]:
        return [m for m in self._metrics.values() if isinstance(m, Gauge)]

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- cross-process state transfer --------------------------------------
    def export_state(self, name: str) -> dict:
        """Full mergeable state of one metric (plain data, picklable).

        Unlike :meth:`to_dict` summaries, the exported state carries
        everything needed to *combine* two registries: gauge sample
        series and histogram retained samples included. Consumed by
        :meth:`merge_state`; used by
        :class:`~repro.telemetry.snapshot.TelemetrySnapshot` to ship
        worker-process metrics back to the parent sweep hub.
        """
        metric = self._metrics.get(name)
        if metric is None:
            raise ReproError(f"unknown metric {name!r}")
        if isinstance(metric, Counter):
            return {"kind": "counter", "value": metric.value}
        if isinstance(metric, Gauge):
            return {
                "kind": "gauge",
                "value": metric.value,
                "samples": list(metric.samples),
            }
        return {
            "kind": "histogram",
            "count": metric.count,
            "sum": metric.sum,
            "min": metric.min,
            "max": metric.max,
            "samples": list(metric._samples),
            "max_samples": metric.max_samples,
        }

    def merge_state(self, name: str, state: dict) -> None:
        """Fold one :meth:`export_state` dict into this registry.

        Counters add; gauges concatenate their sample series (kept in
        time order) and adopt the later last-value; histograms combine
        count/sum/min/max exactly and pool their retained percentile
        samples (re-thinned if the pool exceeds the cap).
        """
        kind = state.get("kind")
        if kind == "counter":
            self._get(name, Counter).inc(state["value"])
        elif kind == "gauge":
            gauge = self._get(name, Gauge)
            gauge.samples.extend((float(t), float(v)) for t, v in state["samples"])
            gauge.samples.sort(key=lambda tv: tv[0])
            gauge.set(state["value"])
        elif kind == "histogram":
            hist = self._get(
                name, Histogram, max_samples=state.get("max_samples", 65536)
            )
            if state["count"]:
                hist.count += state["count"]
                hist.sum += state["sum"]
                hist.min = min(hist.min, state["min"])
                hist.max = max(hist.max, state["max"])
                hist._samples.extend(float(v) for v in state["samples"])
                while len(hist._samples) >= hist.max_samples:
                    hist._samples = hist._samples[::2]
                    hist._stride *= 2
        else:
            raise ReproError(f"cannot merge metric state of kind {kind!r}")

    # -- exposition --------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready {name: metric summary} document."""
        return {name: self._metrics[name].to_dict() for name in self.names()}

    def render_text(self) -> str:
        """One metric per line, histograms with their percentiles."""
        return "\n".join(self._metrics[name].render() for name in self.names())

    def save_json(self, path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
