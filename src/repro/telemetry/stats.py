"""Summary statistics over event logs: the numbers in Tables 2-3 and the
per-process averages behind Figs 3-6.

All statistics follow the paper's methodology: "All statistics are
obtained by averaging over all the processes and events in the
experiment" (§4.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import ReproError
from repro.telemetry.events import TRANSPORT_KINDS, EventKind, EventLog


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max/count plus p50/p95/p99 percentiles of a sample.

    Percentiles use linear interpolation (``numpy.percentile`` defaults),
    so they are exact for the retained sample set.
    """

    count: int
    mean: float
    std: float
    min: float
    max: float
    total: float
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0

    @classmethod
    def of(cls, values: Iterable[float]) -> "Summary":
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            return cls(count=0, mean=0.0, std=0.0, min=0.0, max=0.0, total=0.0)
        p50, p95, p99 = np.percentile(arr, (50, 95, 99))
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            std=float(arr.std(ddof=0)),
            min=float(arr.min()),
            max=float(arr.max()),
            total=float(arr.sum()),
            p50=float(p50),
            p95=float(p95),
            p99=float(p99),
        )

    def as_dict(self) -> dict[str, float]:
        """Plain-dict form for JSON output (field order preserved)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "total": self.total,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def iteration_time_summary(log: EventLog, component: str, kind: EventKind) -> Summary:
    """Mean/std of iteration durations for a component (Table 3)."""
    return Summary.of(log.filter(component=component, kind=kind).durations())


def event_counts(log: EventLog, component: str) -> dict[str, int]:
    """Timestep and data-transport event counts for a component (Table 2)."""
    comp = log.filter(component=component)
    timesteps = comp.count(kinds=(EventKind.COMPUTE, EventKind.TRAIN))
    transport = comp.count(kinds=TRANSPORT_KINDS)
    return {"timestep": timesteps, "data_transport": transport}


def mean_throughput(log: EventLog, kind: EventKind, component: str | None = None) -> float:
    """Per-process mean throughput (bytes/s), averaged over all events.

    The paper averages per-event throughputs over all processes and events
    rather than dividing total bytes by total time.
    """
    if kind not in TRANSPORT_KINDS:
        raise ReproError(f"{kind} is not a transport kind")
    events = log.filter(component=component, kind=kind)
    samples = [r.throughput for r in events if r.duration > 0]
    if not samples:
        return 0.0
    return float(np.mean(samples))


def mean_transport_time(log: EventLog, kind: EventKind, component: str | None = None) -> float:
    """Mean per-message transport time (Fig 4's read/write bars)."""
    if kind not in TRANSPORT_KINDS:
        raise ReproError(f"{kind} is not a transport kind")
    durations = log.filter(component=component, kind=kind).durations()
    if not durations:
        return 0.0
    return float(np.mean(durations))


def runtime_per_iteration(log: EventLog, component: str, iterations: int) -> float:
    """Total component execution time / iterations (Fig 6's metric).

    "execution time per iteration is obtained by computing the total
    execution time of the training component divided by the number of
    iterations. Hence, this includes both compute and data transport
    times." (§4.2)
    """
    if iterations <= 0:
        raise ReproError(f"iterations must be positive, got {iterations}")
    comp = log.filter(component=component)
    if len(comp) == 0:
        raise ReproError(
            f"no events recorded for component {component!r}; "
            f"known components: {log.components()}"
        )
    return comp.makespan() / iterations
