"""The Telemetry hub: one object to thread through a whole run.

Bundles a :class:`~repro.telemetry.tracing.Tracer` and a
:class:`~repro.telemetry.metrics.MetricsRegistry`, plus the shared
run-level state both need (in-flight transport ops for the
link-occupancy gauge). Workloads, transport clients, and experiments all
accept ``telemetry=None``; passing one hub to everything produces a
single coherent trace + metrics document::

    telemetry = Telemetry()
    result = run_one_to_one(model, config, telemetry=telemetry)
    telemetry.save_trace("out.json")      # open in Perfetto
    telemetry.save_metrics("metrics.json")

For simulated runs the hub binds itself to the DES environment
(:meth:`bind_environment`): span timestamps switch to virtual time and a
:class:`~repro.des.probe.PeriodicSampler` starts recording engine gauge
series (event-heap depth, plus whatever the workload registers).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.core import Environment
    from repro.des.probe import PeriodicSampler

#: Default simulated-seconds between engine gauge samples.
DEFAULT_SAMPLE_INTERVAL = 0.25


class Telemetry:
    """Tracer + metrics registry + run-level occupancy tracking."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        sample_interval: float = DEFAULT_SAMPLE_INTERVAL,
    ) -> None:
        self.tracer = tracer or Tracer()
        self.metrics = metrics or MetricsRegistry()
        self.sample_interval = sample_interval
        self.sampler: Optional["PeriodicSampler"] = None
        self._inflight = 0

    # -- convenience passthroughs ----------------------------------------
    def span(self, name: str, **kwargs):
        return self.tracer.span(name, **kwargs)

    def now(self) -> float:
        return self.tracer.now()

    # -- link occupancy ----------------------------------------------------
    @property
    def inflight(self) -> int:
        """Transport operations currently on the wire."""
        return self._inflight

    def transport_started(self, t: Optional[float] = None) -> None:
        """Note one more in-flight transport op (event-driven gauge)."""
        self._inflight += 1
        self.metrics.gauge("link.occupancy").set(self._inflight, t=t)

    def transport_finished(self, t: Optional[float] = None) -> None:
        self._inflight -= 1
        self.metrics.gauge("link.occupancy").set(self._inflight, t=t)

    # -- DES binding -------------------------------------------------------
    def bind_environment(self, env: "Environment") -> "PeriodicSampler":
        """Switch to virtual time and start the engine gauge sampler."""
        from repro.des.probe import PeriodicSampler, attach_probe

        self.tracer.bind_clock(lambda: env.now)
        sampler = PeriodicSampler(
            self.sample_interval, metrics=self.metrics, tracer=self.tracer
        )
        sampler.watch_heap(env)
        sampler.add_source("link.occupancy.sampled", lambda: self._inflight)
        attach_probe(env, sampler)
        self.sampler = sampler
        return sampler

    # -- cross-process transfer --------------------------------------------
    def snapshot(self):
        """Flatten collected state into a picklable
        :class:`~repro.telemetry.snapshot.TelemetrySnapshot` (for shipping
        a worker process's telemetry back to a parent hub)."""
        from repro.telemetry.snapshot import TelemetrySnapshot

        return TelemetrySnapshot.capture(self)

    def merge(self, snapshot) -> None:
        """Replay a :class:`~repro.telemetry.snapshot.TelemetrySnapshot`
        (e.g. from a sweep worker) into this hub; None is a no-op."""
        if snapshot is not None:
            snapshot.merge_into(self)

    # -- output ------------------------------------------------------------
    def save_trace(self, path, event_log=None) -> int:
        """Write the Chrome trace file; returns the event count."""
        from repro.telemetry.chrome_trace import write_chrome_trace

        return write_chrome_trace(path, tracer=self.tracer, event_log=event_log)

    def save_metrics(self, path) -> None:
        self.metrics.save_json(path)
