"""Telemetry: clocks, event records, summary statistics, timelines."""

from repro.telemetry.events import TRANSPORT_KINDS, EventKind, EventLog, EventRecord
from repro.telemetry.stats import (
    Summary,
    event_counts,
    iteration_time_summary,
    mean_throughput,
    mean_transport_time,
    runtime_per_iteration,
)
from repro.telemetry.timeline import Lane, Timeline
from repro.telemetry.timer import Clock, RealClock, Stopwatch, VirtualClock

__all__ = [
    "Clock",
    "EventKind",
    "EventLog",
    "EventRecord",
    "Lane",
    "RealClock",
    "Stopwatch",
    "Summary",
    "Timeline",
    "TRANSPORT_KINDS",
    "VirtualClock",
    "event_counts",
    "iteration_time_summary",
    "mean_throughput",
    "mean_transport_time",
    "runtime_per_iteration",
]
