"""Telemetry: clocks, event records, summary statistics, timelines,
hierarchical spans, metrics, and Chrome-trace export."""

from repro.telemetry.chrome_trace import (
    load_trace,
    summarize_trace,
    trace_events,
    validate_trace_events,
    write_chrome_trace,
)
from repro.telemetry.events import TRANSPORT_KINDS, EventKind, EventLog, EventRecord
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.hub import Telemetry
from repro.telemetry.log import (
    ComponentLogger,
    JsonLineFormatter,
    configure_logging,
    get_logger,
    host_identity,
    remove_handler,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labeled_name,
)
from repro.telemetry.snapshot import TelemetrySnapshot
from repro.telemetry.stats import (
    Summary,
    event_counts,
    iteration_time_summary,
    mean_throughput,
    mean_transport_time,
    runtime_per_iteration,
)
from repro.telemetry.timeline import Lane, Timeline
from repro.telemetry.timer import Clock, RealClock, Stopwatch, VirtualClock
from repro.telemetry.tracing import CounterSample, InstantEvent, Span, Tracer

__all__ = [
    "Clock",
    "ComponentLogger",
    "Counter",
    "CounterSample",
    "EventKind",
    "EventLog",
    "EventRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonLineFormatter",
    "InstantEvent",
    "Lane",
    "MetricsRegistry",
    "RealClock",
    "Span",
    "Stopwatch",
    "Summary",
    "Telemetry",
    "TelemetrySnapshot",
    "Timeline",
    "TRANSPORT_KINDS",
    "Tracer",
    "VirtualClock",
    "configure_logging",
    "event_counts",
    "get_logger",
    "host_identity",
    "iteration_time_summary",
    "labeled_name",
    "load_trace",
    "remove_handler",
    "mean_throughput",
    "mean_transport_time",
    "runtime_per_iteration",
    "summarize_trace",
    "trace_events",
    "validate_trace_events",
    "write_chrome_trace",
]
