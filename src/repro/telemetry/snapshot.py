"""Picklable telemetry snapshots: move a hub's contents across processes.

The sweep engine (:mod:`repro.sweep`) runs every grid point in a worker
process with its own :class:`~repro.telemetry.hub.Telemetry` hub — a
live hub is not picklable (spans hold tracer back-references, gauges may
hold closures). A :class:`TelemetrySnapshot` is the flattened, plain-data
form of everything the hub collected:

* finished **spans** (name/category/track/start/end/args),
* **instants** (zero-duration markers, e.g. ``fault.inject``),
* **counter samples** (the Chrome counter tracks),
* **metric state** (counter totals, gauge time-series, histogram
  aggregates *plus* their retained percentile samples).

``TelemetrySnapshot.capture(hub)`` serialises a worker's hub;
``snapshot.merge_into(hub)`` replays it into the parent hub so one trace
file and one metrics document cover the whole sweep. Merging preserves
the worker's internal event order (spans in finish order, instants in
emission order) and is associative across workers: merging snapshots in
deterministic point order yields a deterministic parent hub regardless
of which worker finished first.

Snapshots are also what the sweep's result cache stores next to each
point value, so cache *hits* replay the same telemetry the original
computation produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.telemetry.tracing import InstantEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.hub import Telemetry


@dataclass
class TelemetrySnapshot:
    """Plain-data copy of one Telemetry hub's collected state."""

    #: {name, category, pid, tid, start, end, args} per finished span.
    spans: list[dict] = field(default_factory=list)
    #: {name, time, pid, tid, category, args} per instant marker.
    instants: list[dict] = field(default_factory=list)
    #: {name, time, values, pid} per counter-track sample.
    counters: list[dict] = field(default_factory=list)
    #: metric name -> mergeable state dict (see ``MetricsRegistry.merge_state``).
    metrics: dict[str, dict] = field(default_factory=dict)

    # -- capture -----------------------------------------------------------
    @classmethod
    def capture(cls, telemetry: Optional["Telemetry"]) -> Optional["TelemetrySnapshot"]:
        """Flatten ``telemetry`` into a picklable snapshot (None -> None)."""
        if telemetry is None:
            return None
        tracer = telemetry.tracer
        snap = cls()
        for span in tracer.spans:
            if not span.finished:  # open spans cannot be replayed faithfully
                continue
            snap.spans.append(
                {
                    "name": span.name,
                    "category": span.category,
                    "pid": span.pid,
                    "tid": span.tid,
                    "start": span.start,
                    "end": span.end,
                    "args": dict(span.args),
                }
            )
        for inst in tracer.instants:
            snap.instants.append(
                {
                    "name": inst.name,
                    "time": inst.time,
                    "pid": inst.pid,
                    "tid": inst.tid,
                    "category": inst.category,
                    "args": dict(inst.args),
                }
            )
        for sample in tracer.counters:
            snap.counters.append(
                {
                    "name": sample.name,
                    "time": sample.time,
                    "values": dict(sample.values),
                    "pid": sample.pid,
                }
            )
        for name in telemetry.metrics.names():
            snap.metrics[name] = telemetry.metrics.export_state(name)
        return snap

    # -- merge -------------------------------------------------------------
    def merge_into(self, telemetry: "Telemetry") -> None:
        """Replay this snapshot into ``telemetry`` (append semantics).

        Spans/instants/counter samples are appended in this snapshot's
        internal order with their original timestamps and tracks, so a
        worker's relative event ordering survives the round trip. Metric
        instruments are merged additively (counter totals add, gauge
        sample series concatenate in time order, histogram aggregates
        and retained samples combine).
        """
        tracer: Tracer = telemetry.tracer
        for rec in self.spans:
            tracer.add_span(
                rec["name"],
                rec["start"],
                rec["end"] - rec["start"],
                category=rec["category"],
                pid=rec["pid"],
                tid=rec["tid"],
                **rec["args"],
            )
        for rec in self.instants:
            tracer.instants.append(
                InstantEvent(
                    name=rec["name"],
                    time=rec["time"],
                    pid=rec["pid"],
                    tid=rec["tid"],
                    category=rec["category"],
                    args=dict(rec["args"]),
                )
            )
        for rec in self.counters:
            tracer.counter(
                rec["name"], rec["values"], pid=rec["pid"], time=rec["time"]
            )
        for name, state in self.metrics.items():
            telemetry.metrics.merge_state(name, state)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def is_empty(self) -> bool:
        return not (self.spans or self.instants or self.counters or self.metrics)
