"""Hierarchical spans: where time goes *inside* a run.

The flat :class:`~repro.telemetry.events.EventLog` answers "how long did
each iteration/transport op take"; spans answer "what happened *within*
it and in what nesting" — queueing vs. wire time vs. metadata contention.

A :class:`Tracer` collects finished :class:`Span` records plus counter
samples. It is clock-agnostic: in real mode it reads a wall clock, in
sim mode it is bound to a DES :class:`~repro.des.core.Environment` so
spans carry *virtual* timestamps (:meth:`Tracer.bind_clock`). Spans nest
per track — a track is a ``(pid, tid)`` pair, by convention the
component name and rank — so concurrently simulated processes do not
corrupt each other's parent/child chains::

    tracer = Tracer()
    with tracer.span("iteration", category="workload", pid="train"):
        with tracer.span("transport.write", category="transport", pid="train"):
            ...  # parented under "iteration"

Export with :mod:`repro.telemetry.chrome_trace` to view the result in
Perfetto / chrome://tracing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.telemetry.timer import Clock, RealClock


class Span:
    """One named, timed region on a track, possibly nested in a parent.

    Use as a context manager (via :meth:`Tracer.span`) or finish manually
    with :meth:`finish`. ``args`` carries arbitrary attributes (key,
    nbytes, backend, ...) that the Chrome exporter surfaces in the UI.
    """

    __slots__ = ("name", "category", "pid", "tid", "start", "end", "args", "parent", "_tracer")

    def __init__(
        self,
        name: str,
        category: str,
        pid: str,
        tid: int,
        start: float,
        args: dict[str, Any],
        parent: Optional["Span"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.pid = pid
        self.tid = tid
        self.start = start
        self.end: Optional[float] = None
        self.args = args
        self.parent = parent
        self._tracer = tracer

    @property
    def duration(self) -> float:
        """Seconds between start and finish (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def finished(self) -> bool:
        return self.end is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; chainable."""
        self.args.update(attrs)
        return self

    def finish(self, end: Optional[float] = None) -> "Span":
        """Close the span (idempotent) and hand it to the tracer."""
        if self.end is None:
            if self._tracer is not None:
                self._tracer._finish(self, end)
            else:
                self.start = float(self.start)
                self.end = self.start if end is None else float(end)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self.finish()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"{self.duration:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, pid={self.pid!r}, tid={self.tid}, {state})"


@dataclass(frozen=True)
class CounterSample:
    """One sample of one or more co-plotted counter series."""

    name: str
    time: float
    values: dict[str, float]
    pid: str = "counters"


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (Chrome ``ph: "i"``)."""

    name: str
    time: float
    pid: str
    tid: int
    category: str = ""
    args: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans, instants, and counter samples for one run."""

    def __init__(self, clock: Optional[Clock | Callable[[], float]] = None) -> None:
        self._now: Callable[[], float] = self._resolve_clock(clock)
        self.spans: list[Span] = []
        self.counters: list[CounterSample] = []
        self.instants: list[InstantEvent] = []
        # Open-span stack per (pid, tid) track: nesting is per track, so
        # interleaved DES processes keep independent parent chains.
        self._stacks: dict[tuple[str, int], list[Span]] = {}

    @staticmethod
    def _resolve_clock(clock: Optional[Clock | Callable[[], float]]) -> Callable[[], float]:
        if clock is None:
            return RealClock().now
        if isinstance(clock, Clock):
            return clock.now
        if callable(clock):
            return clock
        raise ReproError(f"clock must be a Clock or callable, got {clock!r}")

    def bind_clock(self, clock: Clock | Callable[[], float]) -> None:
        """Re-point the tracer at another time source (e.g. ``env.now``)."""
        self._now = self._resolve_clock(clock)

    def now(self) -> float:
        return self._now()

    # -- spans ------------------------------------------------------------
    def span(
        self,
        name: str,
        category: str = "",
        pid: str = "main",
        tid: int = 0,
        **args: Any,
    ) -> Span:
        """Open a span on track ``(pid, tid)``; close it to record it."""
        track = (pid, tid)
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1] if stack else None
        span = Span(
            name=name,
            category=category,
            pid=pid,
            tid=tid,
            start=self._now(),
            args=dict(args),
            parent=parent,
            tracer=self,
        )
        stack.append(span)
        return span

    def add_span(
        self,
        name: str,
        start: float,
        duration: float,
        category: str = "",
        pid: str = "main",
        tid: int = 0,
        **args: Any,
    ) -> Span:
        """Record an already-measured span (no nesting bookkeeping)."""
        if duration < 0:
            raise ReproError(f"negative span duration {duration} for {name!r}")
        span = Span(name, category, pid, tid, float(start), dict(args))
        span.end = float(start) + float(duration)
        self.spans.append(span)
        return span

    def _finish(self, span: Span, end: Optional[float]) -> None:
        span.end = self._now() if end is None else float(end)
        stack = self._stacks.get((span.pid, span.tid))
        if stack and span in stack:
            # Closing out of order force-closes anything nested deeper.
            while stack:
                top = stack.pop()
                if top is span:
                    break
                if top.end is None:
                    top.end = span.end
                    self.spans.append(top)
        self.spans.append(span)

    def current(self, pid: str = "main", tid: int = 0) -> Optional[Span]:
        """The innermost open span on a track, if any."""
        stack = self._stacks.get((pid, tid))
        return stack[-1] if stack else None

    # -- markers and counters ---------------------------------------------
    def instant(
        self,
        name: str,
        category: str = "",
        pid: str = "main",
        tid: int = 0,
        **args: Any,
    ) -> InstantEvent:
        event = InstantEvent(name, self._now(), pid, tid, category, dict(args))
        self.instants.append(event)
        return event

    def counter(
        self,
        name: str,
        value: float | dict[str, float],
        pid: str = "counters",
        time: Optional[float] = None,
    ) -> CounterSample:
        """Record a counter-track sample (rendered as an area chart)."""
        values = {"value": float(value)} if not isinstance(value, dict) else {
            k: float(v) for k, v in value.items()
        }
        sample = CounterSample(
            name=name,
            time=self._now() if time is None else float(time),
            values=values,
            pid=pid,
        )
        self.counters.append(sample)
        return sample

    # -- queries ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.spans)

    def finished_spans(self, category: Optional[str] = None) -> list[Span]:
        if category is None:
            return list(self.spans)
        return [s for s in self.spans if s.category == category]

    def categories(self) -> list[str]:
        """Distinct span categories in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.category, None)
        return list(seen)
