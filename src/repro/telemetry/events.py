"""Event records: the raw material of every analysis in the paper.

Each component records an :class:`EventRecord` per iteration, data
transport operation, and initialization span. Table 2 counts them, Table 3
summarises their durations, Fig 2 renders them as a timeline, and Figs 3–6
turn the transport events into throughput.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Optional

from repro.errors import EmptyLogError, ReproError


class EventKind(str, Enum):
    """What a span of component time was spent on."""

    INIT = "init"
    COMPUTE = "compute"
    WRITE = "write"
    READ = "read"
    POLL = "poll"
    TRAIN = "train"
    FAULT = "fault"
    OTHER = "other"


# Kinds that are data-transport operations (Table 2's "data transport").
TRANSPORT_KINDS = frozenset({EventKind.WRITE, EventKind.READ})


@dataclass(frozen=True)
class EventRecord:
    """One span of activity on one component/rank."""

    component: str
    kind: EventKind
    start: float
    duration: float
    rank: int = 0
    nbytes: float = 0.0
    key: str = ""
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ReproError(f"negative duration {self.duration} for {self.component}")
        if self.nbytes < 0:
            raise ReproError(f"negative nbytes {self.nbytes} for {self.component}")

    @property
    def end(self) -> float:
        """start + duration."""
        return self.start + self.duration

    @property
    def throughput(self) -> float:
        """Bytes/s for transport events (0 for instantaneous/empty events)."""
        if self.duration <= 0:
            return 0.0
        return self.nbytes / self.duration


class EventLog:
    """An append-only collection of event records with query helpers."""

    def __init__(self, records: Optional[Iterable[EventRecord]] = None) -> None:
        self._records: list[EventRecord] = list(records or [])

    def record(self, record: EventRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def add(
        self,
        component: str,
        kind: EventKind,
        start: float,
        duration: float,
        **kwargs,
    ) -> EventRecord:
        """Construct, append, and return a record."""
        rec = EventRecord(component=component, kind=kind, start=start, duration=duration, **kwargs)
        self.record(rec)
        return rec

    def extend(self, other: "EventLog") -> None:
        """Append every record from another log."""
        self._records.extend(other._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def __getitem__(self, idx):
        return self._records[idx]

    # -- queries ------------------------------------------------------------
    def filter(
        self,
        component: Optional[str] = None,
        kind: Optional[EventKind] = None,
        kinds: Optional[Iterable[EventKind]] = None,
        rank: Optional[int] = None,
    ) -> "EventLog":
        """A new log containing only the matching records."""
        if kind is not None and kinds is not None:
            raise ReproError("pass either kind or kinds, not both")
        wanted = None if kinds is None else frozenset(kinds)
        out = [
            r
            for r in self._records
            if (component is None or r.component == component)
            and (kind is None or r.kind == kind)
            and (wanted is None or r.kind in wanted)
            and (rank is None or r.rank == rank)
        ]
        return EventLog(out)

    def components(self) -> list[str]:
        """Component names in first-seen order."""
        seen: dict[str, None] = {}
        for r in self._records:
            seen.setdefault(r.component, None)
        return list(seen)

    def count(self, **kwargs) -> int:
        """Number of records matching the filter arguments."""
        return len(self.filter(**kwargs))

    def durations(self) -> list[float]:
        """Every record's duration, in log order.

        An empty log yields ``[]`` (the documented sentinel) — summary
        statistics over no events are simply empty, unlike time-window
        queries which have no meaningful answer (see :meth:`span`).
        """
        return [r.duration for r in self._records]

    def total_bytes(self) -> float:
        """Sum of nbytes over all records."""
        return sum(r.nbytes for r in self._records)

    def span(self) -> tuple[float, float]:
        """(earliest start, latest end) over all records.

        Raises :class:`~repro.errors.EmptyLogError` on an empty log:
        there is no meaningful time window, and silently returning
        ``(0.0, 0.0)`` used to hide filters that matched nothing.
        """
        if not self._records:
            raise EmptyLogError(
                "span() on an empty event log — no records means no time window "
                "(check component/kind filters)"
            )
        return (
            min(r.start for r in self._records),
            max(r.end for r in self._records),
        )

    def makespan(self) -> float:
        """Latest end minus earliest start (raises on an empty log)."""
        if not self._records:
            raise EmptyLogError(
                "makespan() on an empty event log — no records means no time "
                "window (check component/kind filters)"
            )
        start, end = self.span()
        return end - start

    # -- (de)serialisation ----------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize as one JSON object per line."""
        lines = []
        for r in self._records:
            d = asdict(r)
            d["kind"] = r.kind.value
            lines.append(json.dumps(d, sort_keys=True))
        return "\n".join(lines)

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Parse a log from :meth:`to_jsonl` output (blank lines skipped)."""
        log = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            d = json.loads(line)
            d["kind"] = EventKind(d["kind"])
            log.record(EventRecord(**d))
        return log

    def save(self, path) -> None:
        """Write the JSONL form to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "EventLog":
        """Read a log saved with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())
