"""Clock abstractions so components run identically on wall-clock or
virtual time.

Real-mode mini-apps pace themselves with :class:`RealClock` (monotonic
time + sleep); tests use :class:`VirtualClock` to run instantly; sim-mode
components do not use a Clock at all (they yield DES timeouts).
"""

from __future__ import annotations

import time

from repro.errors import SimulationError


class Clock:
    """Interface: a monotonic ``now()`` plus a ``sleep()``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        raise NotImplementedError


class RealClock(Clock):
    """Wall-clock time."""

    def now(self) -> float:
        return time.perf_counter()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """A manually advanced clock: ``sleep`` advances it instantly.

    ``auto_advance`` is added on every ``now()`` call, emulating the cost
    of the work between two clock reads without any real delay.
    """

    def __init__(self, start: float = 0.0, auto_advance: float = 0.0) -> None:
        if auto_advance < 0:
            raise SimulationError("auto_advance must be >= 0")
        self._now = float(start)
        self.auto_advance = float(auto_advance)

    def now(self) -> float:
        self._now += self.auto_advance
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"cannot sleep {seconds}s")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Explicitly move the clock forward."""
        if seconds < 0:
            raise SimulationError(f"cannot advance {seconds}s")
        self._now += seconds


class Stopwatch:
    """Context-manager stopwatch: ``with Stopwatch(clock) as sw: ...``."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or RealClock()
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self.start = self.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self.clock.now() - self.start
