"""Structured logging: one JSONL record per operational event.

The tracer answers "where did the time go"; these logs answer "what did
the fleet *do*, in what order, on which worker". Every record is one
JSON object per line::

    {"ts": 1754500000.123456, "level": "info",
     "component": "sweep.coordinator", "event": "point.done",
     "index": 7, "worker": "host:4242:0"}

Components obtain a :class:`ComponentLogger` via :func:`get_logger` and
emit with ``log.event("point.done", index=7, worker=w)``. Everything
rides on the stdlib :mod:`logging` hierarchy under the ``repro.*``
namespace, so the layer is **inert by default**: without
:func:`configure_logging` no handler is attached (a ``NullHandler``
swallows the records) and the per-call cost is one ``isEnabledFor``
check — observability must observe, never perturb.

``configure_logging(path=..., level=...)`` backs the CLI's
``--log-json PATH`` / ``--log-level LEVEL`` flags: it attaches a
:class:`JsonLineFormatter` handler writing JSONL to a file (or any
stream) and returns the handler so tests and multi-stage runs can
detach it again.
"""

from __future__ import annotations

import io
import json
import logging
import os
import socket
import sys
from typing import Any, Optional

from repro.errors import ReproError

#: Root of the structured-logging namespace in the stdlib hierarchy.
ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` names -> stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

# Without any configured handler the stdlib "lastResort" handler would
# print WARNING+ records to stderr, perturbing output that regression
# tests diff byte-for-byte. A NullHandler on the namespace root keeps
# unconfigured logging perfectly silent while still propagating to any
# root handlers an embedding application installs.
logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


class JsonLineFormatter(logging.Formatter):
    """Formats one record as one compact JSON object (no newline)."""

    def format(self, record: logging.LogRecord) -> str:
        name = record.name
        if name.startswith(ROOT_LOGGER + "."):
            name = name[len(ROOT_LOGGER) + 1 :]
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "component": name,
            "event": record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                payload.setdefault(str(key), _json_safe(value))
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True)


class ComponentLogger:
    """Thin wrapper: ``event(name, **fields)`` -> one structured record.

    ``fields`` must be JSON-able (non-JSON values are ``repr()``-ed at
    format time, and only if a handler is actually listening).
    """

    __slots__ = ("component", "_logger")

    def __init__(self, component: str) -> None:
        self.component = component
        self._logger = logging.getLogger(f"{ROOT_LOGGER}.{component}")

    @property
    def enabled(self) -> bool:
        """Whether anything would actually record an info-level event."""
        return self._logger.isEnabledFor(logging.INFO)

    def event(self, event: str, *, level: int = logging.INFO, **fields: Any) -> None:
        if self._logger.isEnabledFor(level):
            self._logger.log(level, event, extra={"fields": fields})

    def debug(self, event: str, **fields: Any) -> None:
        self.event(event, level=logging.DEBUG, **fields)

    def info(self, event: str, **fields: Any) -> None:
        self.event(event, level=logging.INFO, **fields)

    def warning(self, event: str, **fields: Any) -> None:
        self.event(event, level=logging.WARNING, **fields)

    def error(self, event: str, **fields: Any) -> None:
        self.event(event, level=logging.ERROR, **fields)


def get_logger(component: str) -> ComponentLogger:
    """The structured logger for one component (e.g. ``sweep.worker``)."""
    if not component:
        raise ReproError("component name must be non-empty")
    return ComponentLogger(component)


def resolve_level(level: int | str) -> int:
    """``"info"``/``"INFO"``/``logging.INFO`` -> a stdlib level int."""
    if isinstance(level, int):
        return level
    name = str(level).lower()
    if name not in LEVELS:
        raise ReproError(
            f"unknown log level {level!r}; choose from {sorted(LEVELS)}"
        )
    return LEVELS[name]


def configure_logging(
    path: Optional[str | os.PathLike] = None,
    level: int | str = "info",
    stream: Optional[io.TextIOBase] = None,
) -> logging.Handler:
    """Attach a JSONL handler to the ``repro`` namespace; returns it.

    Exactly one of ``path`` (append-mode file, the ``--log-json`` case)
    or ``stream`` may be given; with neither, records go to stderr.
    Detach with :func:`remove_handler` (multi-stage runs, tests).
    """
    if path is not None and stream is not None:
        raise ReproError("configure_logging takes a path or a stream, not both")
    if path is not None:
        handler: logging.Handler = logging.FileHandler(
            os.fspath(path), mode="a", encoding="utf-8"
        )
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLineFormatter())
    resolved = resolve_level(level)
    handler.setLevel(resolved)
    root = logging.getLogger(ROOT_LOGGER)
    root.addHandler(handler)
    # The namespace level gates isEnabledFor(): keep it at the most
    # verbose attached handler so cheap early-outs stay correct.
    current = root.level or logging.WARNING
    if root.level == logging.NOTSET or resolved < current:
        root.setLevel(resolved)
    return handler


def remove_handler(handler: logging.Handler) -> None:
    """Detach (and close) a handler from :func:`configure_logging`."""
    logging.getLogger(ROOT_LOGGER).removeHandler(handler)
    handler.close()


def host_identity() -> str:
    """``hostname:pid`` of this process — the fleet-trace track name."""
    return f"{socket.gethostname()}:{os.getpid()}"


__all__ = [
    "ComponentLogger",
    "JsonLineFormatter",
    "LEVELS",
    "configure_logging",
    "get_logger",
    "host_identity",
    "remove_handler",
    "resolve_level",
]
