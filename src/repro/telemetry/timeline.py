"""Execution timelines (Fig 2): build per-component lanes from an event
log and render them as text.

Fig 2 of the paper shows, for the original workflow and the mini-app,
one lane per component where computation spans fill the lane, data
transfers appear as thin marks, and initialization is shaded. We render
the same information with characters::

    sim   |IIII####W###########W#########...|
    train |IIIIIII====R=====R======R=====...|

``#``/``=`` compute (simulation / training), ``W``/``R`` transfer marks,
``I`` initialization, space idle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError
from repro.telemetry.events import EventKind, EventLog, EventRecord

_LANE_CHARS = {
    EventKind.INIT: "I",
    EventKind.COMPUTE: "#",
    EventKind.TRAIN: "=",
    EventKind.WRITE: "W",
    EventKind.READ: "R",
    EventKind.POLL: ".",
    EventKind.OTHER: "+",
}

# Transfer marks overwrite compute fill; polls never overwrite anything.
_PRIORITY = {
    EventKind.POLL: 0,
    EventKind.OTHER: 1,
    EventKind.INIT: 2,
    EventKind.COMPUTE: 3,
    EventKind.TRAIN: 3,
    EventKind.WRITE: 4,
    EventKind.READ: 4,
}


@dataclass
class Lane:
    """One component's row in the timeline."""

    component: str
    records: list[EventRecord]


class Timeline:
    """A set of lanes over a common time window."""

    def __init__(self, lanes: list[Lane], start: float, end: float) -> None:
        if end < start:
            raise ReproError(f"timeline end {end} before start {start}")
        self.lanes = lanes
        self.start = start
        self.end = end

    @property
    def duration(self) -> float:
        return self.end - self.start

    @classmethod
    def from_log(
        cls,
        log: EventLog,
        components: Optional[list[str]] = None,
        window: Optional[tuple[float, float]] = None,
    ) -> "Timeline":
        components = components or log.components()
        if window is None:
            if len(log) == 0:
                raise ReproError(
                    "cannot infer a timeline window from an empty event log; "
                    "pass window=(start, end) explicitly"
                )
            window = log.span()
        start, end = window
        lanes = []
        for comp in components:
            records = [
                r
                for r in log.filter(component=comp)
                if r.end >= start and r.start <= end
            ]
            lanes.append(Lane(component=comp, records=records))
        return cls(lanes, start, end)

    # -- rendering ------------------------------------------------------------
    def render(self, width: int = 100) -> str:
        """Render all lanes as fixed-width character rows."""
        if width <= 0:
            raise ReproError(f"width must be positive, got {width}")
        label_width = max((len(lane.component) for lane in self.lanes), default=0)
        rows = [self._render_lane(lane, width, label_width) for lane in self.lanes]
        axis = self._render_axis(width, label_width)
        legend = (
            " " * (label_width + 1)
            + "I=init  #=sim compute  ==train compute  W=write  R=read"
        )
        return "\n".join(rows + [axis, legend])

    def _render_lane(self, lane: Lane, width: int, label_width: int) -> str:
        cells = [" "] * width
        priority = [-1] * width
        span = self.duration or 1.0
        for rec in sorted(lane.records, key=lambda r: r.start):
            kind_priority = _PRIORITY[rec.kind]
            char = _LANE_CHARS[rec.kind]
            lo = int((max(rec.start, self.start) - self.start) / span * width)
            hi = int((min(rec.end, self.end) - self.start) / span * width)
            hi = max(hi, lo + 1)  # every event is at least one cell wide
            for i in range(lo, min(hi, width)):
                if kind_priority >= priority[i]:
                    cells[i] = char
                    priority[i] = kind_priority
        return f"{lane.component:<{label_width}} |{''.join(cells)}|"

    def _render_axis(self, width: int, label_width: int) -> str:
        # Relative time: the window's origin reads as 0 even when the
        # underlying clock is an arbitrary monotonic counter.
        left = "0.00s"
        right = f"{self.duration:.2f}s"
        middle = " " * max(0, width - len(left) - len(right))
        return " " * (label_width + 2) + left + middle + right

    # -- comparison (original vs mini-app, Fig 2) ------------------------------
    @staticmethod
    def render_comparison(
        original: "Timeline", miniapp: "Timeline", width: int = 100
    ) -> str:
        """Stack two timelines with headers, as in Fig 2."""
        out = ["--- original ---", original.render(width), "", "--- mini-app ---", miniapp.render(width)]
        return "\n".join(out)

    # -- fidelity metric --------------------------------------------------------
    def occupancy(self, component: str, kind: EventKind, bins: int = 50) -> list[float]:
        """Fraction of each time bin covered by events of ``kind``.

        Used to compare two timelines quantitatively: similar workflows
        produce similar occupancy vectors.
        """
        if bins <= 0:
            raise ReproError(f"bins must be positive, got {bins}")
        lane = next((l for l in self.lanes if l.component == component), None)
        if lane is None:
            raise ReproError(f"no lane for component {component!r}")
        span = self.duration or 1.0
        bin_width = span / bins
        occupancy = [0.0] * bins
        for rec in lane.records:
            if rec.kind is not kind:
                continue
            lo = max(rec.start, self.start)
            hi = min(rec.end, self.end)
            if hi <= lo:
                continue
            first = int((lo - self.start) / bin_width)
            last = min(int((hi - self.start) / bin_width), bins - 1)
            for b in range(first, last + 1):
                b_start = self.start + b * bin_width
                b_end = b_start + bin_width
                overlap = min(hi, b_end) - max(lo, b_start)
                if overlap > 0:
                    occupancy[b] += overlap / bin_width
        return [min(1.0, o) for o in occupancy]
