"""Flight recorder: a bounded ring of recent events, dumped postmortem.

Structured logs stream everything to a file *if* one was configured; the
flight recorder is the always-on complement — a fixed-size in-memory
ring buffer of the last ``capacity`` protocol events that costs one
deque append per event and is only ever written out when something goes
wrong. Both the sweep coordinator and the worker agent keep one, and
dump it to a postmortem JSON file on **poison** (a point was
quarantined), **crash** (an unhandled exception is about to take the
process down), or **SIGTERM drain** — the black box that explains the
last seconds before the incident.

Dump schema::

    {"component": "coordinator", "reason": "poison",
     "dumped_at": 1754500000.5, "capacity": 512, "recorded": 3817,
     "dropped": 3305,
     "events": [{"ts": ..., "event": "claim", "worker": ..., ...}, ...]}

``recorded`` counts everything ever offered; ``dropped`` is how many
fell off the ring — so a reader knows whether the window is complete.
The recorder is thread-safe (the worker's heartbeat thread and main
loop both record into one ring).
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Optional

from repro.errors import ReproError

#: Default ring capacity: enough to cover several lease cycles of a
#: busy fleet without ever mattering for memory.
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Fixed-capacity event ring with a JSON postmortem dump."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        component: str = "",
        clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ReproError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.component = component
        self.clock = clock
        self.recorded = 0
        self._ring: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()

    def record(self, event: str, **fields: Any) -> None:
        """Append one event; O(1), oldest entry falls off past capacity."""
        entry = {"ts": self.clock(), "event": event}
        entry.update(fields)
        with self._lock:
            self.recorded += 1
            self._ring.append(entry)

    def events(self) -> list[dict[str, Any]]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events that have already fallen off the ring."""
        with self._lock:
            return self.recorded - len(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def payload(self, reason: str) -> dict[str, Any]:
        """The dump document (also what :meth:`dump` writes)."""
        with self._lock:
            events = list(self._ring)
            recorded = self.recorded
        return {
            "component": self.component,
            "reason": reason,
            "dumped_at": self.clock(),
            "capacity": self.capacity,
            "recorded": recorded,
            "dropped": recorded - len(events),
            "events": events,
        }

    def dump(self, path: str | os.PathLike, reason: str) -> Path:
        """Write the postmortem JSON file; returns its path.

        Writes are atomic (tmp + rename) so a dump racing a second
        signal never leaves a torn file; repeated dumps overwrite —
        the *last* postmortem is the one that matters.
        """
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        document = self.payload(reason)
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(
            json.dumps(document, indent=2, sort_keys=True, default=repr) + "\n",
            encoding="utf-8",
        )
        tmp.replace(target)
        return target


def maybe_dump(
    recorder: Optional[FlightRecorder],
    path: Optional[str | os.PathLike],
    reason: str,
) -> Optional[Path]:
    """Dump iff both a recorder and a destination exist; never raises.

    Postmortem writing runs on failure paths (poison, crash handlers,
    signal drains) where a second exception would mask the first — an
    unwritable dump is reported on stderr and swallowed.
    """
    if recorder is None or path is None:
        return None
    try:
        return recorder.dump(path, reason)
    except OSError as exc:  # pragma: no cover - depends on fs failure
        import sys

        print(f"flight recorder dump to {path} failed: {exc}", file=sys.stderr)
        return None


__all__ = ["DEFAULT_CAPACITY", "FlightRecorder", "maybe_dump"]
